#!/usr/bin/env python
"""The paper's design-space exploration: which bit width to deploy?

Sweeps uniform quantisation from 2 to 8 bits for both attacks, printing
accuracy against hardware cost, and applies the paper's selection rule
("4-bit uniform quantisation achieved best performance ... chosen for
deployment").

Run:  python examples/bitwidth_dse.py        (takes a few minutes)
      python examples/bitwidth_dse.py --fast (coarser sweep, ~1 min)
"""

import sys

from repro.dse.bitwidth import run_bitwidth_sweep, select_deployment_point
from repro.utils.tables import Table


def main() -> None:
    fast = "--fast" in sys.argv
    bit_widths = (2, 4, 8) if fast else (2, 3, 4, 6, 8)
    duration = 8.0 if fast else 14.0
    epochs = 6 if fast else 10

    print(f"sweeping bit widths {bit_widths} (duration={duration}s, epochs={epochs})")
    points = run_bitwidth_sweep(
        bit_widths=bit_widths, duration=duration, epochs=epochs, seed=2023
    )
    selected = select_deployment_point(points)

    table = Table(
        ["W/A bits", "DoS F1", "Fuzzy F1", "LUT", "DSP", "max util %", "deploy"],
        title="Quantisation DSE (paper selects 4-bit)",
    )
    for point in points:
        table.add_row(
            [
                point.bits,
                f"{point.metrics['dos']['f1']:.2f}",
                f"{point.metrics['fuzzy']['f1']:.2f}",
                f"{point.resources.lut:,.0f}",
                f"{point.resources.dsp:.0f}",
                f"{point.max_utilization_pct:.2f}",
                "<==" if point.bits == selected.bits else "",
            ]
        )
    print()
    print(table.render())
    print(
        f"\nselected: {selected.bits}-bit "
        f"(narrowest within 0.25 F1 points of the best mean F1)"
    )


if __name__ == "__main__":
    main()
