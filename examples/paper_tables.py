#!/usr/bin/env python
"""Regenerate every table, figure and in-text metric of the paper.

One command produces the full experiment report (Tables I & II, the
Fig.-1 system demo, latency/throughput/energy/resource claims, the
bit-width DSE and the folding sweep) — the same harness the benchmark
suite drives, printed to stdout and saved as markdown.

Run:  python examples/paper_tables.py          (full, several minutes)
      python examples/paper_tables.py --fast   (small budgets, ~1 min)
"""

import sys
from pathlib import Path

from repro.experiments.context import ExperimentSettings
from repro.experiments.runner import report_markdown, run_all


def main() -> None:
    fast = "--fast" in sys.argv
    settings = (
        ExperimentSettings(duration=6.0, epochs=5, seed=2023)
        if fast
        else ExperimentSettings(duration=16.0, epochs=10, seed=2023)
    )
    report = run_all(
        settings,
        include_dse=not fast,
        include_baselines=not fast,
        include_campaigns=not fast,
    )
    for key in sorted(report):
        print(f"\n{'=' * 70}\n{key}\n{'=' * 70}")
        print(report[key])
    out = Path("/tmp/repro-experiment-report.md")
    out.write_text(report_markdown(report), encoding="utf-8")
    print(f"\nfull report written to {out}")


if __name__ == "__main__":
    main()
