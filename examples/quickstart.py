#!/usr/bin/env python
"""Quickstart: train, compile and deploy a CAN intrusion detector.

Reproduces the paper's core loop in ~30 seconds on a laptop CPU:

1. generate a labelled DoS capture (synthetic Car-Hacking traffic);
2. quantisation-aware train the 4-bit MLP detector;
3. compile it to a bit-exact FPGA accelerator IP (FINN-substitute);
4. deploy it on the modelled Zynq ECU and measure the paper's numbers.

Run:  python examples/quickstart.py
"""

from repro.datasets.features import BitFeatureEncoder
from repro.finn.ipgen import compile_model
from repro.soc.device import ZCU104
from repro.soc.ecu import IDSEnabledECU
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig


def main() -> None:
    # 1 + 2: capture and quantisation-aware training (defaults: 4-bit
    # weights/activations, 79-bit whole-frame input, 79-64-64-32-2 MLP).
    print("== training the 4-bit DoS detector ==")
    result = train_ids_model(
        "dos",
        duration=10.0,  # seconds of bus traffic to synthesise
        train_config=TrainConfig(epochs=8, seed=0, verbose=False),
        seed=42,
    )
    print(result.summary())

    # 3: FINN-style compilation -> streamlined integer dataflow IP,
    # verified bit-exact against the trained model.
    print("\n== compiling to an accelerator IP ==")
    ip = compile_model(result.model, name="dos_ids", target_fps=1e6, clock_mhz=100)
    print(ip.summary())
    utilisation = ZCU104.max_utilization(ip.resources)
    print(f"ZCU104 max utilisation: {utilisation:.2f}% (paper claims <4%)")

    # 4: deploy on the modelled ECU and process fresh traffic.
    print("\n== deploying on the Zynq ECU model ==")
    from repro.datasets.carhacking import generate_capture

    fresh = generate_capture("dos", duration=4.0, seed=7)
    ecu = IDSEnabledECU(ip, BitFeatureEncoder(), name="quickstart-ecu", seed=1)
    report = ecu.process_capture(fresh.records)
    print(report.summary())
    print(
        f"\npaper's operating point: 0.12 ms / >8300 msg/s / 2.09 W / 0.25 mJ -- "
        f"measured: {1e3 * report.mean_latency_s:.3f} ms / "
        f"{report.inverse_latency_fps:,.0f} msg/s / {report.mean_power_w:.2f} W / "
        f"{1e3 * report.energy_per_inference_j:.3f} mJ"
    )

    # 5: the same traffic as a live stream: frames arrive at their
    # capture timestamps, the bounded RX FIFO applies real backpressure
    # (drop-oldest under overload), and inference runs chunk by chunk
    # through the vectorised encoder.
    print("\n== streaming the capture through the RX FIFO ==")
    streaming_ecu = IDSEnabledECU(ip, BitFeatureEncoder(), name="streaming-ecu", seed=1)
    stream_report = streaming_ecu.process_stream(fresh.records, chunk_size=4096)
    print(stream_report.summary())


if __name__ == "__main__":
    main()
