#!/usr/bin/env python
"""Fleet-scale campaign service: simulate a whole vehicle population.

``repro.fleet`` turns the per-vehicle campaign/gateway stack into a
population simulator: a :class:`FleetSpec` describes thousands of
vehicles (mixed topologies, scenarios, deployments, staggered attack
onsets) and ``run_fleet`` shards them across a worker pool, folding
every vehicle into streaming mergeable counters — peak memory stays
bounded by one shard however large the fleet.  This example

1. samples a 120-vehicle heterogeneous fleet from the scenario
   registry and runs it end to end,
2. prints the aggregate (detection rates, drop rates, conservative
   latency quantiles, per-scenario / per-deployment rollups),
3. re-runs a small explicit fleet to show the spec's second mode, and
4. stages a disaster drill composing *both* fault layers: every
   vehicle rides a noisy harness (wire-level bit errors, error frames
   and retransmissions from :mod:`repro.can.faults`) while a
   deterministic chaos plan (scheduler faults: worker raises, crashes,
   hangs from :mod:`repro.fleet.chaos`) interrupts the checkpointed
   run through retry exhaustion — then resumes it to an aggregate
   bit-identical to the uninterrupted noisy run.

Run:  python examples/fleet.py
"""

import tempfile
from pathlib import Path

from repro.can.faults import WireFaultModel
from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.fleet import ChaosPlan, ExecOptions, FleetSpec, VehicleSpec, run_fleet


def main() -> None:
    context = ExperimentContext(ExperimentSettings(duration=6.0, epochs=8, seed=2023))

    print("== sampled fleet: 120 heterogeneous vehicles ==")
    spec = FleetSpec(
        name="demo-city",
        size=120,
        seed=42,
        scenarios=(
            "baseline-dos",
            "baseline-fuzzy",
            "stealth-low-rate",
            "masquerade-rpm",
        ),
        profiles=("full", "mid", "lite"),
        deployments=("per-ip", "shared-ip"),
        duration=0.5,
        onset_jitter=0.1,  # stagger when each vehicle comes under attack
    )
    result = run_fleet(context, spec, ExecOptions(backend="auto"), shard_size=16)
    print(result.summary())
    p99 = result.aggregate.total.latency_quantile_s(0.99)
    if p99 is not None:
        print(f"p99 detection latency <= {1e3 * p99:.1f} ms (conservative bin bound)")

    print("\n== explicit fleet: two hand-picked vehicles ==")
    pair = FleetSpec.explicit(
        (
            VehicleSpec(
                index=0, scenario="baseline-dos", vehicle_seed=7, profile="full"
            ),
            VehicleSpec(
                index=1,
                scenario="masquerade-rpm",
                vehicle_seed=8,
                profile="lite",
                deployment="shared-ip",
                onset_offset=0.2,
            ),
        ),
        name="demo-pair",
    )
    print(run_fleet(context, pair, ExecOptions(max_workers=1)).summary())

    print("\n== disaster drill: wire faults + chaos, checkpoint, resume ==")
    # Two independent fault layers composed: wire faults corrupt the
    # simulated CAN harness inside every vehicle (deterministic per
    # vehicle seed), chaos faults kill the workers simulating them.
    drill = FleetSpec(
        name="demo-drill",
        size=24,
        seed=42,
        scenarios=("baseline-dos", "baseline-fuzzy"),
        duration=0.5,
        wire_faults=WireFaultModel(seed=7, bit_error_rate=1e-4),
    )
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = Path(scratch) / "drill.json"
        # Every faulted shard fails all its attempts: with no retry
        # budget the run degrades and records what it lost.
        chaos = ChaosPlan(seed=9, rate=0.4, attempts_affected=99)
        interrupted = run_fleet(
            context,
            drill,
            ExecOptions(backend="auto", max_retries=0),
            shard_size=4,
            checkpoint=checkpoint,
            chaos=chaos,
        )
        print(f"interrupted: {interrupted.health.summary()}")
        # Resume re-executes only the missing shards; the merged
        # aggregate is bit-identical to an uninterrupted run.
        resumed = run_fleet(
            context,
            drill,
            ExecOptions(backend="auto"),
            shard_size=4,
            checkpoint=checkpoint,
        )
        reference = run_fleet(
            context, drill, ExecOptions(backend="auto"), shard_size=4
        )
        print(f"resumed:     {resumed.health.summary()}")
        print(f"  {resumed.resumed_shards} shard(s) came from the checkpoint")
        total = resumed.aggregate.total
        print(
            f"  wire faults: {total.frames_corrupted} corrupted, "
            f"{total.retransmissions} retransmitted, "
            f"{total.bus_off_events} bus-off"
        )
        print(f"  bit-identical to chaos-free: {resumed.aggregate == reference.aggregate}")


if __name__ == "__main__":
    main()
