#!/usr/bin/env python
"""Fleet-scale campaign service: simulate a whole vehicle population.

``repro.fleet`` turns the per-vehicle campaign/gateway stack into a
population simulator: a :class:`FleetSpec` describes thousands of
vehicles (mixed topologies, scenarios, deployments, staggered attack
onsets) and ``run_fleet`` shards them across a worker pool, folding
every vehicle into streaming mergeable counters — peak memory stays
bounded by one shard however large the fleet.  This example

1. samples a 120-vehicle heterogeneous fleet from the scenario
   registry and runs it end to end,
2. prints the aggregate (detection rates, drop rates, conservative
   latency quantiles, per-scenario / per-deployment rollups), and
3. re-runs a small explicit fleet to show the spec's second mode.

Run:  python examples/fleet.py
"""

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.fleet import ExecOptions, FleetSpec, VehicleSpec, run_fleet


def main() -> None:
    context = ExperimentContext(ExperimentSettings(duration=6.0, epochs=8, seed=2023))

    print("== sampled fleet: 120 heterogeneous vehicles ==")
    spec = FleetSpec(
        name="demo-city",
        size=120,
        seed=42,
        scenarios=(
            "baseline-dos",
            "baseline-fuzzy",
            "stealth-low-rate",
            "masquerade-rpm",
        ),
        profiles=("full", "mid", "lite"),
        deployments=("per-ip", "shared-ip"),
        duration=0.5,
        onset_jitter=0.1,  # stagger when each vehicle comes under attack
    )
    result = run_fleet(context, spec, ExecOptions(backend="auto"), shard_size=16)
    print(result.summary())
    p99 = result.aggregate.total.latency_quantile_s(0.99)
    if p99 is not None:
        print(f"p99 detection latency <= {1e3 * p99:.1f} ms (conservative bin bound)")

    print("\n== explicit fleet: two hand-picked vehicles ==")
    pair = FleetSpec.explicit(
        (
            VehicleSpec(
                index=0, scenario="baseline-dos", vehicle_seed=7, profile="full"
            ),
            VehicleSpec(
                index=1,
                scenario="masquerade-rpm",
                vehicle_seed=8,
                profile="lite",
                deployment="shared-ip",
                onset_offset=0.2,
            ),
        ),
        name="demo-pair",
    )
    print(run_fleet(context, pair, ExecOptions(max_workers=1)).summary())


if __name__ == "__main__":
    main()
