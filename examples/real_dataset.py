#!/usr/bin/env python
"""Using the *real* Car-Hacking dataset (or any capture in its schema).

The library's loaders speak the public dataset's CSV format
(``Timestamp, ID(hex), DLC, DATA0..7, Flag``), so the original files
from the Hacking and Countermeasure Research Lab drop straight in.  In
offline environments this example synthesises a capture, saves it in
the dataset schema, and then runs the whole pipeline *from the CSV* —
exactly the path a user with the real files would take.

Run:  python examples/real_dataset.py [path/to/DoS_dataset.csv]
"""

import sys
from pathlib import Path

from repro.datasets.carhacking import CarHackingCapture, generate_capture
from repro.datasets.stats import capture_summary, id_inventory
from repro.finn.ipgen import compile_model
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig


def obtain_capture() -> Path:
    """Use the CSV given on the command line, or synthesise one."""
    if len(sys.argv) > 1:
        return Path(sys.argv[1])
    path = Path("/tmp/repro-demo-dos.csv")
    print(f"no CSV supplied; synthesising a capture at {path}")
    generate_capture("dos", duration=10.0, seed=5).save_csv(path)
    return path


def main() -> None:
    csv_path = obtain_capture()
    print(f"== loading {csv_path} ==")
    capture = CarHackingCapture.load_csv(csv_path, attack="dos")

    summary = capture_summary(capture.records)
    print(
        f"{summary['total_frames']} frames over {summary['span_seconds']:.1f} s, "
        f"{summary['unique_ids']} identifiers, "
        f"{100 * summary['attack_fraction']:.1f}% attack frames"
    )
    inventory = id_inventory(capture.records)
    busiest = sorted(inventory.items(), key=lambda kv: -kv[1]["count"])[:5]
    print("busiest identifiers:")
    for can_id, info in busiest:
        print(
            f"  0x{can_id:03X}: {info['count']} frames, "
            f"mean period {1e3 * info['mean_period']:.1f} ms"
        )

    print("\n== training from the CSV capture ==")
    result = train_ids_model(
        "dos", capture=capture, train_config=TrainConfig(epochs=8, seed=3), seed=9
    )
    print(result.summary())

    print("\n== compiling ==")
    ip = compile_model(result.model, name="csv_dos_ids")
    print(ip.summary())


if __name__ == "__main__":
    main()
