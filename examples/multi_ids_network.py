#!/usr/bin/env python
"""Fig.-1 scenario: a vehicle network with IDS-enabled ECUs.

Builds the system of the paper's Fig. 1: a CAN bus carrying periodic
powertrain/body traffic plus a malicious node, monitored by IDS-ECUs
that carry *both* detector IPs on one overlay (the paper's multi-model
deployment).  Reports per-burst detection delay, combined resource
cost and power — then scales the deployment up to a multi-channel
gateway where each segment streams live through its own IDS-ECU with
real RX-FIFO backpressure.

Run:  python examples/multi_ids_network.py
"""

import numpy as np

from repro.can.attacks import DoSAttacker, FuzzyAttacker
from repro.can.bus import BusSimulator
from repro.datasets.carhacking import build_vehicle_bus, generate_capture
from repro.datasets.features import BitFeatureEncoder
from repro.finn.ipgen import compile_model
from repro.soc.arbiter import SharedAcceleratorArbiter
from repro.soc.device import ZCU104
from repro.soc.driver import Overlay
from repro.soc.ecu import IDSEnabledECU
from repro.soc.gateway import IDSGateway
from repro.soc.power import PowerModel
from repro.training.metrics import ids_metrics
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig


def train_detector(attack: str) -> tuple:
    result = train_ids_model(
        attack, duration=10.0, train_config=TrainConfig(epochs=8, seed=1), seed=100
    )
    print(f"  {result.summary()}")
    ip = compile_model(result.model, name=f"{attack}_ids", target_fps=1e6)
    return result, ip


def main() -> None:
    print("== training both detectors ==")
    _, dos_ip = train_detector("dos")
    _, fuzzy_ip = train_detector("fuzzy")

    print("\n== multi-model overlay (paper: 'multiple models ... simultaneously') ==")
    overlay = Overlay({"dos_ids": dos_ip, "fuzzy_ids": fuzzy_ip})
    combined = dos_ip.resources + fuzzy_ip.resources
    print(f"combined resources: {combined}")
    print(f"ZCU104 max utilisation: {ZCU104.max_utilization(combined):.2f}%")
    power = PowerModel()
    print(
        f"board power: one IP {power.total_w(dos_ip.resources):.3f} W, "
        f"two IPs {power.total_w(dos_ip.resources) + power.pl_dynamic_w(fuzzy_ip.resources):.3f} W"
    )

    print("\n== scanning bus traffic (malicious node active) ==")
    encoder = BitFeatureEncoder()
    # Deploy on the vehicle the detectors were trained for: a fresh
    # session (new seed) of the same car (vehicle_seed matches training).
    from repro.utils.rng import derive_seed

    vehicle_seed = derive_seed(100, "capture")
    for attack, core in (("dos", overlay.dos_ids), ("fuzzy", overlay.fuzzy_ids)):
        capture = generate_capture(
            attack, duration=6.0, seed=777, vehicle_seed=vehicle_seed, initial_gap=1.0
        )
        features, labels = encoder.encode(capture.records)
        predictions = core.classify_batch(features)
        metrics = ids_metrics(labels, predictions)
        timestamps = np.array([record.timestamp for record in capture.records])
        delays = []
        for start, end in capture.attack_windows:
            in_window = (timestamps >= start) & (timestamps <= end)
            alerts = timestamps[in_window & (predictions == 1)]
            if alerts.size:
                delays.append(1e3 * (alerts.min() - start))
        print(
            f"  {attack:>5}-IDS-ECU: {len(capture.records)} frames scanned, "
            f"F1 {metrics['f1']:.2f}, FNR {metrics['fnr']:.2f}, "
            f"first-alert delay {np.mean(delays):.2f} ms over {len(delays)} bursts"
        )

    print("\n== multi-channel gateway (interleaved streaming, per-channel IPs) ==")

    # Three concurrent segments of the same vehicle: the powertrain bus
    # is being DoS-flooded while the body bus sees a fuzzing campaign;
    # the telematics segment is parked-car quiet (no traffic at all) and
    # must come back as an idle channel, not an error.  Channels advance
    # in virtual-time order, so the flooded powertrain drops its own
    # frames without delaying the body segment's verdicts.
    def build_gateway() -> IDSGateway:
        gateway = IDSGateway("vehicle-gateway")
        powertrain = build_vehicle_bus(vehicle_seed=vehicle_seed)
        powertrain.attach(DoSAttacker([(1.0, 3.0), (5.0, 7.0)], seed=7))
        gateway.attach_channel(
            "powertrain",
            powertrain,
            IDSEnabledECU(dos_ip, BitFeatureEncoder(), name="powertrain-ids", seed=21),
        )
        body = build_vehicle_bus(vehicle_seed=vehicle_seed)
        body.attach(FuzzyAttacker([(2.0, 4.0), (6.0, 8.0)], seed=8))
        gateway.attach_channel(
            "body",
            body,
            IDSEnabledECU(fuzzy_ip, BitFeatureEncoder(), name="body-ids", seed=22),
        )
        gateway.attach_channel(
            "telematics",
            BusSimulator(),  # no sources attached: a quiet segment
            IDSEnabledECU(fuzzy_ip, BitFeatureEncoder(), name="telematics-ids", seed=23),
        )
        return gateway

    print(build_gateway().monitor(duration=8.0).summary())

    print("\n== same gateway, both detectors sharing one accelerator slot ==")
    # The multi-model overlay carries both IPs, but the AXI port serves
    # one inference at a time: model the channels time-multiplexing the
    # accelerator with fixed-priority arbitration (safety-critical
    # powertrain first).  Every channel's drain rate drops, so the DoS
    # flood now also costs the powertrain segment more of its own frames.
    arbiter = SharedAcceleratorArbiter(
        policy="fixed-priority", priorities={"powertrain": 0, "body": 1}
    )
    print(build_gateway().monitor(duration=8.0, arbiter=arbiter).summary())


if __name__ == "__main__":
    main()
