#!/usr/bin/env python
"""Attack-campaign scenarios through the multi-channel IDS gateway.

The campaign framework (``repro.can.campaign``) expresses evaluation
scenarios declaratively: a list of attack phases (attacker kind +
parameters + time window + target channel) compiled onto per-segment
buses.  This example

1. prints the registered scenario catalogue,
2. builds one custom campaign by hand (a staggered masquerade under a
   DoS flood) and walks its per-phase verdicts, and
3. sweeps a handful of registered scenarios through both gateway
   deployments (per-channel IPs vs one shared IP) and prints the
   detection/latency/drop table.

Run:  python examples/attack_campaigns.py
"""

from repro.can.campaign import SCENARIOS, AttackPhase, Campaign
from repro.experiments.campaigns import render_campaign_sweep, run_campaign_sweep
from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.fleet import ExecOptions
from repro.soc.gateway import build_campaign_gateway


def main() -> None:
    print("== registered scenarios ==")
    for name, description in SCENARIOS.describe().items():
        print(f"  {name:24s} {description}")

    context = ExperimentContext(ExperimentSettings(duration=6.0, epochs=8, seed=2023))

    print("\n== custom campaign: masquerade hiding behind a flood ==")
    campaign = Campaign(
        name="demo-masquerade-under-flood",
        duration=3.0,
        channels=("powertrain", "body"),
        phases=(
            AttackPhase("dos", 0.5, 2.0, "powertrain"),
            AttackPhase("masquerade", 0.8, 2.2, "body", {"target_id": 0x316}),
            AttackPhase("spoof", 2.3, 2.9, "body", {"target_id": 0x43F}),
        ),
        description="the loud attack draws the FIFO budget away from the quiet ones",
    )
    print(campaign.summary())
    gateway = build_campaign_gateway(context.ip("dos"), campaign, vehicle_seed=42, ecu_seed=7)
    report = gateway.monitor(duration=campaign.duration, truth=campaign.truth_windows())
    print()
    print(report.summary())

    print("\n== registry sweep (subset), per-IP vs shared-IP ==")
    result = run_campaign_sweep(
        context,
        scenarios=[
            "baseline-dos",
            "burst-dos",
            "ramp-dos",
            "stealth-low-rate",
            "multi-segment-storm",
        ],
        duration=3.0,
        options=ExecOptions(backend="auto"),
    )
    print(render_campaign_sweep(result).render())
    print(f"(executed on the {result.backend!r} backend, {result.engine} engine)")


if __name__ == "__main__":
    main()
