#!/usr/bin/env bash
# Tier-1 test suite plus the library micro-benchmarks.
#
# Leaves the perf trajectory on disk:
#   benchmarks/output/BENCH_encoders.json   — scalar vs. vectorised encoding
#   benchmarks/output/BENCH_gateway.json    — sequential vs. interleaved gateway
#                                             scheduling, per-IP vs. shared-IP rates
#   benchmarks/output/BENCH_campaigns.json  — attack-campaign sweep rates/drops
#   benchmarks/output/BENCH_inference.json  — float graph vs. compiled engine fps,
#                                             serial vs. thread/process sweep walls
#   benchmarks/output/BENCH_bus.json        — event-driven vs. columnar bus
#                                             simulation frame rates
#   benchmarks/output/BENCH_faults.json     — wire-fault layer: clean-path
#                                             overhead and BER-swept rates
#   benchmarks/output/BENCH_datapath.json   — zero-record data path: capture->
#                                             train encode, chunked streaming,
#                                             saturated-flood arbitration
#   benchmarks/output/BENCH_fleet.json      — fleet-scale campaign service:
#                                             vehicles/sec over a sharded
#                                             heterogeneous population
#
# Usage:
#   scripts/bench.sh            full run: tier-1 tests + micro-benchmarks
#   scripts/bench.sh --smoke    CI lane: one iteration over tiny inputs,
#                               archived under benchmarks/output/smoke/ and
#                               checked against the committed trajectory with
#                               scripts/check_bench_regression.py
#
# The paper-table benchmarks (test_bench_table*.py etc.) train at full
# scale and are not part of this quick loop; run them directly when
# regenerating the tables.
set -euo pipefail

# Resolve the repo root from this script's own location (not the CWD,
# which differs between CI runners and local shells).
SCRIPT_DIR="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")" >/dev/null 2>&1 && pwd -P)"
REPO_ROOT="$(dirname -- "$SCRIPT_DIR")"
cd -- "$REPO_ROOT"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        *) echo "usage: $0 [--smoke]" >&2; exit 2 ;;
    esac
done

MICRO_BENCHES=(
    benchmarks/test_bench_encoder.py
    benchmarks/test_bench_bus.py
    benchmarks/test_bench_faults.py
    benchmarks/test_bench_datapath.py
    benchmarks/test_bench_inference.py
    benchmarks/test_bench_gateway.py
    benchmarks/test_bench_campaigns.py
    benchmarks/test_bench_fleet.py
)

if [ "$SMOKE" -eq 1 ]; then
    echo "== micro-benchmarks (smoke: one iteration, tiny inputs) =="
    REPRO_BENCH_SMOKE=1 python -m pytest -q -s "${MICRO_BENCHES[@]}"
    echo "== bench-regression check (committed trajectory vs smoke run) =="
    python scripts/check_bench_regression.py \
        --baseline-dir benchmarks/output --run-dir benchmarks/output/smoke
else
    echo "== tier-1 tests =="
    python -m pytest -x -q tests

    echo "== micro-benchmarks =="
    python -m pytest -q -s "${MICRO_BENCHES[@]}" benchmarks/test_bench_micro.py

    echo "perf trajectory written to benchmarks/output/BENCH_{encoders,bus,faults,datapath,inference,gateway,campaigns,fleet}.json"
fi
