#!/usr/bin/env bash
# Tier-1 test suite plus the library micro-benchmarks.
#
# Leaves the perf trajectory on disk:
#   benchmarks/output/BENCH_encoders.json  — scalar vs. vectorised encoding
#   benchmarks/output/BENCH_gateway.json   — sequential vs. interleaved gateway
#                                            scheduling, per-IP vs. shared-IP rates
#
# The paper-table benchmarks (test_bench_table*.py etc.) train at full
# scale and are not part of this quick loop; run them directly when
# regenerating the tables.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q tests

echo "== micro-benchmarks =="
python -m pytest -q -s benchmarks/test_bench_encoder.py benchmarks/test_bench_micro.py \
    benchmarks/test_bench_gateway.py

echo "perf trajectory written to benchmarks/output/BENCH_encoders.json and BENCH_gateway.json"
