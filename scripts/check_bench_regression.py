#!/usr/bin/env python
"""Guard the committed benchmark trajectory against silent regressions.

Compares the ``BENCH_*.json`` files committed under ``--baseline-dir``
(the perf trajectory the repo claims) against a fresh run's files under
``--run-dir`` (e.g. the ``scripts/bench.sh --smoke`` lane in CI).  For
every file present in both directories it matches numeric leaves by
dotted path and splits them into two classes:

* **gating** — ``fps`` rate metrics.  These are deterministic model /
  pipeline properties (II-gated sustained rates, arbitrated shares),
  identical across machines and input scales, so any drop is a real
  behavioural regression.  The per-file **median** of run/baseline
  ratios must stay above ``1 - threshold`` (default 20%).
* **informational** — ``speedup`` ratios and ``wall``-clock rates
  (e.g. ``BENCH_inference.json``'s ``graph_wall_fps`` /
  ``compiled_wall_fps``, ``BENCH_bus.json``'s ``event_wall_fps`` /
  ``columnar_wall_fps``).  Wall-clock based and noisy (they swing tens
  of percent run-to-run on one machine, more across smoke-scale
  inputs); they are printed for the log but never fail the check.
  ``BENCH_bus.json`` gates on its deterministic ``offered_fps``
  traffic rates instead — a property of the seeded scenario, identical
  across machines.
  Their hard floors live in the benchmarks themselves (``MIN_SPEEDUP``
  asserts), which the smoke lane still executes.  Informational
  markers take precedence, so a wall-clock rate may honestly carry an
  ``fps`` unit without joining the gate; ``BENCH_inference.json``
  still gates on the median of its deterministic fps leaves
  (``core_throughput_fps``, ``ecu_sustained_fps``).

Any file whose gating median falls below the threshold makes the
script exit non-zero.  The check is wired as a *non-blocking* CI step:
it flags drift loudly without turning noise into red builds.

Usage:
    python scripts/check_bench_regression.py \
        [--baseline-dir benchmarks/output] [--run-dir benchmarks/output/smoke] \
        [--threshold 0.2]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: Substrings marking a numeric leaf as a gating rate metric: ``fps``
#: rates are deterministic pipeline properties; ``vehicles_per_sec`` is
#: the fleet lane's throughput, gated per the fleet service's contract
#: (its file also gates on the deterministic ``offered_fps``, so the
#: per-file median tolerates wall-clock sway in the vehicles rate).
GATING_KEY_MARKERS = ("fps", "vehicles_per_sec")

#: Substrings marking a leaf as wall-clock-derived: compared and printed,
#: but never failing the check.  Checked before the gating markers, so
#: a wall-clock rate named ``*_wall_fps`` stays informational.
INFO_KEY_MARKERS = ("speedup", "wall")

#: Substrings marking a leaf as environment-bound (never compared).
SKIP_KEY_MARKERS = ("seconds", "overhead", "required")


def numeric_leaves(node, prefix: str = "") -> dict[str, float]:
    """Flatten a JSON tree to ``{dotted.path: value}`` for numeric leaves."""
    leaves: dict[str, float] = {}
    if isinstance(node, dict):
        items = node.items()
    elif isinstance(node, list):
        items = ((str(index), value) for index, value in enumerate(node))
    else:
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            leaves[prefix] = float(node)
        return leaves
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        leaves.update(numeric_leaves(value, path))
    return leaves


def classify(path: str) -> str | None:
    """``"gating"``, ``"info"`` or None (not compared) for one leaf path."""
    lowered = path.lower()
    if any(marker in lowered for marker in SKIP_KEY_MARKERS):
        return None
    if any(marker in lowered for marker in INFO_KEY_MARKERS):
        return "info"
    if any(marker in lowered for marker in GATING_KEY_MARKERS):
        return "gating"
    return None


def compare_file(baseline_path: Path, run_path: Path, threshold: float) -> bool:
    """Print one file's comparison; return True when it regressed.

    A baseline metric must be positive to anchor a ratio; run-side
    zeros stay in, so a metric that collapsed to 0 reads as a total
    regression rather than silently dropping out of the comparison.
    """
    baseline = numeric_leaves(json.loads(baseline_path.read_text()))
    run = numeric_leaves(json.loads(run_path.read_text()))
    gating_ratios = []
    compared = 0
    for path in sorted(set(baseline) & set(run)):
        kind = classify(path)
        if kind is None or baseline[path] <= 0:
            continue
        compared += 1
        ratio = run[path] / baseline[path]
        if kind == "gating":
            gating_ratios.append(ratio)
        marker = "  !" if kind == "gating" and ratio < 1.0 - threshold else ""
        note = " (informational)" if kind == "info" else ""
        print(
            f"    {path}: committed {baseline[path]:,.1f} -> run {run[path]:,.1f} "
            f"({100.0 * ratio:.0f}%){note}{marker}"
        )
    if not compared:
        print(f"  {baseline_path.name}: no shared metrics to compare, skipping")
        return False
    if not gating_ratios:
        print(f"  {baseline_path.name}: informational metrics only -> ok")
        return False
    median = statistics.median(gating_ratios)
    regressed = median < 1.0 - threshold
    verdict = "REGRESSED" if regressed else "ok"
    print(
        f"  {baseline_path.name}: gating median {100.0 * median:.0f}% of committed "
        f"({len(gating_ratios)} metrics) -> {verdict}"
    )
    return regressed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=Path, default=Path("benchmarks/output"))
    parser.add_argument("--run-dir", type=Path, default=Path("benchmarks/output/smoke"))
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed fractional drop of the per-file gating median (default 0.2)",
    )
    args = parser.parse_args(argv)

    if not args.run_dir.is_dir():
        print(f"run directory {args.run_dir} does not exist; nothing to check")
        return 2
    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no committed BENCH_*.json under {args.baseline_dir}; nothing to check")
        return 2

    print(
        f"bench-regression check: {args.baseline_dir} (committed) vs "
        f"{args.run_dir} (this run), threshold {100.0 * args.threshold:.0f}%"
    )
    failures = 0
    for baseline_path in baselines:
        run_path = args.run_dir / baseline_path.name
        if not run_path.exists():
            print(f"  {baseline_path.name}: not produced by this run, skipping")
            continue
        if compare_file(baseline_path, run_path, args.threshold):
            failures += 1
    if failures:
        print(f"{failures} benchmark file(s) regressed beyond the threshold")
        return 1
    print("benchmark trajectory holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
