#!/usr/bin/env bash
# Static-analysis gate: reprolint (AST invariants) + strict mypy on the
# typed core.  Blocking in CI; run locally before pushing.
#
#   scripts/lint.sh             lint the whole repo
#   scripts/lint.sh --changed   lint only files changed vs main (fast path)
#
# Extra arguments after the mode are passed through to reprolint
# (e.g. `scripts/lint.sh -- --format json`).
set -euo pipefail

cd "$(dirname "$0")/.."

LINT_PATHS=(src tools scripts benchmarks)
CHANGED=0
PASSTHROUGH=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --changed) CHANGED=1; shift ;;
        --) shift; PASSTHROUGH+=("$@"); break ;;
        *) PASSTHROUGH+=("$1"); shift ;;
    esac
done

status=0

if [[ "$CHANGED" -eq 1 ]]; then
    # Fast path: only re-lint files this branch touches.  Project-level
    # rules (A/B coverage) need the full picture, so they still see the
    # whole test tree; per-file rules run on the diff only.
    base=$(git merge-base HEAD main 2>/dev/null || echo main)
    mapfile -t changed_files < <(
        git diff --name-only "$base" -- '*.py' |
            grep -E '^(src|tools|scripts|benchmarks)/' || true
    )
    existing=()
    for f in "${changed_files[@]:-}"; do
        [[ -n "$f" && -f "$f" ]] && existing+=("$f")
    done
    if [[ ${#existing[@]} -eq 0 ]]; then
        echo "lint.sh: no changed python files vs $base — nothing to lint"
    else
        echo "== reprolint (changed files vs $base) =="
        python -m tools.reprolint "${existing[@]}" --tests tests \
            ${PASSTHROUGH[@]+"${PASSTHROUGH[@]}"} || status=$?
    fi
else
    echo "== reprolint =="
    python -m tools.reprolint "${LINT_PATHS[@]}" --tests tests \
        ${PASSTHROUGH[@]+"${PASSTHROUGH[@]}"} || status=$?
fi

echo
echo "== mypy (typed core) =="
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy --config-file mypy.ini || status=$?
else
    echo "mypy not installed — skipping locally (CI runs it as a blocking step;"
    echo "the reprolint typed-core rule covers annotation completeness here)"
fi

exit "$status"
