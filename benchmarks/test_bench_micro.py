"""Microbenchmarks of the hot paths (real pytest-benchmark timing).

These measure the library itself (not the modelled hardware): dataflow
inference throughput, frame encoding, capture generation, compilation
and cycle simulation — the numbers a downstream user cares about when
scaling experiments up.
"""

import numpy as np
import pytest

from repro.can.frame import CANFrame
from repro.datasets.features import BitFeatureEncoder
from repro.finn.cyclesim import CycleSimulator
from repro.finn.ipgen import compile_model


@pytest.fixture(scope="module")
def ip(context):
    return context.ip("dos")


@pytest.fixture(scope="module")
def test_features(context):
    return context.trained("dos").splits.x_test[:1024]


def test_bench_graph_inference_batch(benchmark, ip, test_features):
    """Functional dataflow execution, 1024 frames per call."""
    labels = benchmark(lambda: ip.run(test_features))
    assert labels.shape == (1024,)


def test_bench_frame_encode(benchmark, context):
    """Frame -> 79-bit feature vector encoding rate."""
    records = context.capture("dos").records[:1000]
    encoder = BitFeatureEncoder()
    out = benchmark(lambda: [encoder.encode_frame(r) for r in records])
    assert len(out) == 1000


def test_bench_frame_wire_encoding(benchmark):
    """CAN bit-level wire encoding (CRC + stuffing)."""
    frame = CANFrame(0x316, bytes(range(8)))
    bits = benchmark(frame.bit_length)
    assert bits > 100


def test_bench_compile_model(benchmark, context):
    """Full FINN-substitute compilation (streamline+fold+verify)."""
    model = context.trained("dos").model
    ip = benchmark.pedantic(
        lambda: compile_model(model, name="bench-compile", verify_samples=16),
        rounds=3,
        iterations=1,
    )
    assert ip.verification.exact


def test_bench_cycle_sim(benchmark, ip):
    """Cycle-accurate pipeline simulation, 1000 samples."""
    simulator = CycleSimulator(ip.pipeline, ip.clock_hz)
    report = benchmark(lambda: simulator.simulate(1000))
    assert report.num_samples == 1000


def test_bench_mmio_inference(benchmark, ip):
    """Single-frame inference through the full AXI driver protocol."""
    from repro.soc.accelerator import MemoryMappedAccelerator

    accel = MemoryMappedAccelerator(ip)
    features = np.zeros(79)
    label, trace = benchmark(lambda: accel.infer(features))
    assert trace.total_seconds > 0
