"""Ablation — input encoding choice (DESIGN.md key decision).

The deployed encoder is the 79-bit whole-frame binary encoding; the
compact 10-feature byte encoding is the ablation.  Asserts the design
rationale: bit-level inputs dominate on the harder Fuzzy task (fuzzed
identifiers differ from legitimate ones in individual bits that byte
normalisation smears out), at acceptable hardware cost.
"""

from repro.datasets.features import BitFeatureEncoder, ByteFeatureEncoder
from repro.datasets.splits import train_val_test_split
from repro.finn.ipgen import compile_model
from repro.models.qmlp import QMLPConfig
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.tables import Table


def _train_with_encoder(context, encoder, attack):
    records = context.capture(attack).records
    features, labels = encoder.encode(records)
    splits = train_val_test_split(features, labels, seed=7)
    model_config = QMLPConfig(input_features=features.shape[1], seed=11)
    from repro.models.qmlp import build_qmlp

    model = build_qmlp(model_config)
    trainer = Trainer(TrainConfig(epochs=context.settings.epochs, seed=5))
    trainer.fit(model, splits.x_train, splits.y_train, splits.x_val, splits.y_val)
    metrics = trainer.evaluate(model, splits.x_test, splits.y_test)
    ip = compile_model(model, name=f"ablate-{attack}-{features.shape[1]}f", verify=False)
    return metrics, ip


def test_bench_ablation_input_encoding(benchmark, context, archive):
    def run():
        rows = {}
        for name, encoder in (("bits-79", BitFeatureEncoder()), ("bytes-10", ByteFeatureEncoder())):
            for attack in ("dos", "fuzzy"):
                rows[(name, attack)] = _train_with_encoder(context, encoder, attack)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["Encoding", "Attack", "F1", "FNR", "LUT", "core II (cyc)"],
        title="Ablation: whole-frame bit encoding vs. compact byte encoding",
    )
    for (name, attack), (metrics, ip) in rows.items():
        table.add_row(
            [
                name,
                attack,
                f"{metrics['f1']:.2f}",
                f"{metrics['fnr']:.2f}",
                f"{ip.resources.lut:,.0f}",
                ip.pipeline.initiation_interval,
            ]
        )
    archive("EA-ablation-encoding", table.render())

    # The deployed (bit) encoding wins on the harder Fuzzy task.
    bit_fuzzy = rows[("bits-79", "fuzzy")][0]["f1"]
    byte_fuzzy = rows[("bytes-10", "fuzzy")][0]["f1"]
    assert bit_fuzzy >= byte_fuzzy
    # DoS is separable under either encoding (ID field dominates).
    assert rows[("bytes-10", "dos")][0]["f1"] > 99.0
    # Byte encoding is cheaper in hardware (smaller first layer).
    assert rows[("bytes-10", "dos")][1].resources.lut < rows[("bits-79", "dos")][1].resources.lut
