"""E2 — regenerate Table II (per-message latency comparison).

Shape fidelity asserted: our measured row beats every published row,
and the headline ~4.8x margin over MTH-IDS (the only other per-frame
line-rate system) holds to within the simulator's jitter.
"""

from repro.baselines.published import PUBLISHED_LATENCY
from repro.experiments.table2 import render_table2, run_table2


def test_bench_table2(benchmark, context, archive):
    result = benchmark.pedantic(
        lambda: run_table2(context, eval_frames=8000), rounds=1, iterations=1
    )
    archive("E2-table2", render_table2(result).render())

    # Who wins: ours beats every published latency row.
    for row in PUBLISHED_LATENCY:
        assert result.measured_latency_ms < row.latency_ms, row.model
    # By what factor: the paper reports 4.8x over MTH-IDS (0.574 / 0.12).
    assert 3.5 < result.speedup_vs_mth < 7.0
    # Absolute landing zone: ~0.12 ms.
    assert 0.09 < result.measured_latency_ms < 0.15
