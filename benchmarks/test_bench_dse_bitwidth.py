"""E8 — the bit-width design-space exploration ("4-bit chosen").

Shape fidelity asserted: accuracy saturates by 4 bits while hardware
cost keeps growing with width, so the paper's selection rule lands on
4-bit (or narrower if the synthetic task is easier — never wider).
"""

from repro.experiments.dse_report import render_dse, run_dse


def test_bench_dse_bitwidth(benchmark, context, archive):
    result = benchmark.pedantic(
        lambda: run_dse(context, bit_widths=(2, 3, 4, 6, 8)), rounds=1, iterations=1
    )
    archive("E8-dse-bitwidth", render_dse(result).render())

    points = {point.bits: point for point in result.points}
    # Accuracy: 4-bit is within noise of 8-bit (quantisation is free here)...
    assert points[4].mean_f1 >= points[8].mean_f1 - 0.5
    # ...and the knee exists: some narrow point is no better than 4-bit.
    assert points[2].mean_f1 <= points[4].mean_f1 + 0.25
    # Cost: LUTs grow monotonically in bit width at the same folding.
    assert points[4].resources.lut < points[8].resources.lut
    assert points[2].resources.lut <= points[4].resources.lut
    # Selection: never wider than the paper's 4-bit deployment choice.
    assert result.selected.bits <= 4
    # Every point fits comfortably on the ZCU104.
    assert all(point.max_utilization_pct < 20.0 for point in result.points)
