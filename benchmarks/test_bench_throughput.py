"""E5 — the in-text ">8300 messages per second, near line rate" claim."""

import pytest

from repro.experiments.throughput import render_throughput, run_throughput


def test_bench_throughput(benchmark, context, archive):
    result = benchmark.pedantic(
        lambda: run_throughput(context, eval_frames=8000), rounds=1, iterations=1
    )
    archive("E5-throughput", render_throughput(result).render())

    assert result.meets_paper_claim  # >8300 msg/s
    assert result.near_line_rate_1m  # keeps up with a saturated 1 Mbit/s bus
    # The hardware core has orders-of-magnitude headroom over the bus.
    assert result.hw_core_fps > 100 * result.line_rate_1m_fps
    # Wire bounds are physics: ~3.7k fps at 500 kbit/s, ~7.4k at 1 Mbit/s.
    assert 3_500 < result.line_rate_500k_fps < 4_000
    assert 7_000 < result.line_rate_1m_fps < 8_000
    # Gateway scale-out: sharing one IP over N channels divides the
    # aggregate sustained rate by N (round-robin arbitration).
    assert result.gateway_per_ip_fps == pytest.approx(
        result.gateway_channels * result.gateway_shared_ip_fps
    )
