"""EX — reduced trainable baselines on the same synthetic captures.

Extends Table I with rows that can be regenerated end to end.  Shape
fidelity asserted: every baseline family detects DoS well, the QMLP is
competitive with all reduced baselines, and the tree/CNN families do
best among them (as their full-scale versions do in the literature).
"""

from repro.experiments.baseline_table import render_baseline_table, run_baseline_table


def test_bench_baselines(benchmark, context, archive):
    result = benchmark.pedantic(
        lambda: run_baseline_table(context, max_frames=8000, epochs=5),
        rounds=1,
        iterations=1,
    )
    archive("EX-baselines", render_baseline_table(result).render())

    by_key = {(row.attack, row.name): row.metrics for row in result.rows}
    # DoS is near-trivially detectable for every family.
    for (attack, name), metrics in by_key.items():
        if attack == "dos":
            assert metrics["f1"] > 90.0, (name, metrics)
    # The QMLP is competitive with every reduced baseline on both attacks.
    for attack in ("dos", "fuzzy"):
        qmlp_f1 = result.qmlp[attack]["f1"]
        best_baseline = max(m["f1"] for (a, _), m in by_key.items() if a == attack)
        assert qmlp_f1 >= best_baseline - 1.0, (attack, qmlp_f1, best_baseline)
