"""E1 — regenerate Table I (accuracy metric comparison).

Shape fidelity asserted: both detectors in the high-99s, DoS at least
as good as Fuzzy, small gap to the paper's own QMLP rows.
"""

from repro.experiments.table1 import render_table1, run_table1


def test_bench_table1(benchmark, context, archive):
    result = benchmark.pedantic(lambda: run_table1(context), rounds=1, iterations=1)
    archive("E1-table1", render_table1(result).render())

    dos, fuzzy = result.measured["dos"], result.measured["fuzzy"]
    # Who wins: the QMLP sits with the literature pack (>= 99 across the board).
    assert dos["f1"] >= 99.9, dos
    assert fuzzy["f1"] >= 98.5, fuzzy
    assert dos["f1"] >= fuzzy["f1"]  # Fuzzy is the harder attack (paper: 99.99 vs 99.80)
    assert dos["fnr"] <= 0.1
    assert fuzzy["fnr"] <= 1.5
    # Reproduction gap to the paper's own rows stays small.
    assert abs(result.f1_gap("dos")) < 0.5
    assert abs(result.f1_gap("fuzzy")) < 1.5
