"""Micro-benchmark: the zero-record columnar data path, end to end.

Three lanes, one per layer the CaptureArray interchange refactor
touches, archived to ``benchmarks/output/BENCH_datapath.json``:

* ``capture_to_train`` — synthesis + feature encoding straight off the
  capture columns (``encoder.encode(capture.capture)``), the training
  ingest path that previously round-tripped through record lists;
* ``capture_to_stream`` — the chunked ``ECUStreamSession`` consuming
  array slices (FIFO admission, encode, classify) for a DoS window;
* ``flood_arbitration`` — the batched same-priority run resolver in
  the fastbus contended loop, on the worst case that motivated it: a
  saturated attacker-only bus (release interval shorter than the frame
  wire time) where the whole backlog is one same-id run.  Bit-exactness
  against the per-frame event loop is asserted in-lane.

Metric classes (see ``scripts/check_bench_regression.py``): the
``offered_fps``/``serviced_fps`` leaves are deterministic properties of
the seeded scenarios and gate the regression check; ``*_wall_fps`` and
``speedup`` figures are wall-clock based and informational.
"""

import json
import time

import numpy as np
import pytest
from _bench_lane import OUTPUT_DIR, SMOKE

from repro.can.attacks import DoSAttacker
from repro.can.bus import BusSimulator
from repro.datasets.carhacking import build_vehicle_bus, generate_capture
from repro.datasets.features import BitFeatureEncoder, WindowFeatureEncoder
from repro.finn.ipgen import compile_model
from repro.models.qmlp import QMLPConfig
from repro.soc.ecu import IDSEnabledECU
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig

#: Simulated seconds of bus traffic per lane.
DURATION = 1.0 if SMOKE else 4.0

_SEED = 2023


@pytest.fixture(scope="module")
def datapath_ip():
    result = train_ids_model(
        "dos",
        model_config=QMLPConfig(hidden=(32, 16), weight_bits=4, act_bits=4, seed=7),
        train_config=TrainConfig(epochs=3 if SMOKE else 6, seed=3),
        duration=3.0,
        seed=11,
    )
    return compile_model(result.model, name="bench-datapath-ip", target_fps=1e6)


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _encode_lane(repeats):
    """Capture synthesis -> feature matrix without touching .records."""
    capture = generate_capture(
        "dos", duration=DURATION, seed=_SEED, attack_burst=DURATION / 2
    ).capture
    frames = len(capture)
    bit_s, (X_bit, _) = _best_of(lambda: BitFeatureEncoder().encode(capture), repeats)
    window_s, (X_win, _) = _best_of(
        lambda: WindowFeatureEncoder(window=4).encode(capture), repeats
    )
    assert X_bit.shape == (frames, BitFeatureEncoder().num_features)
    assert X_win.shape[0] == frames
    return {
        "frames": frames,
        "offered_fps": round(frames / DURATION, 1),
        "bit_encode_wall_fps": round(frames / bit_s, 1),
        "window_encode_wall_fps": round(frames / window_s, 1),
    }


def _stream_lane(ip, repeats):
    """Chunked columnar streaming through an IDS-enabled ECU."""
    bus = build_vehicle_bus(vehicle_seed=_SEED)
    bus.attach(
        DoSAttacker([(0.2 * DURATION, 0.8 * DURATION)], interval=0.0003, seed=_SEED)
    )
    capture = bus.capture(DURATION).capture

    def run():
        ecu = IDSEnabledECU(ip, BitFeatureEncoder(), name="bench-datapath-ecu", seed=5)
        session = ecu.open_stream(capture, chunk_size=4096, with_metrics=False)
        while not session.done:
            session.step()
        return session.finish()

    stream_s, report = _best_of(run, repeats)
    serviced = int(len(report.predictions))
    return {
        "frames": len(capture),
        "serviced_frames": serviced,
        "fifo_dropped": report.fifo_dropped,
        "serviced_fps": round(serviced / DURATION, 1),
        "stream_wall_fps": round(serviced / stream_s, 1),
    }


def _saturated_flood_lane(repeats):
    """Attacker-only bus flooded past line rate: one giant same-id run.

    The release interval (0.1 ms) is well under the 127-bit frame wire
    time (0.254 ms at 500 kbit/s), so the backlog only grows and the
    contended loop sees maximal consecutive same-id stretches — the
    case the batched run resolver vectorises wholesale.
    """

    def build_bus():
        bus = BusSimulator()
        bus.attach(DoSAttacker([(0.0, DURATION)], interval=0.0001, seed=_SEED))
        return bus

    event_s, records = _best_of(lambda: build_bus().run(DURATION), repeats)
    columnar_s, result = _best_of(lambda: build_bus().capture(DURATION), repeats)
    capture = result.capture
    assert len(records) == len(capture)
    np.testing.assert_array_equal(
        np.array([r.timestamp for r in records]), capture.timestamps
    )
    frames = len(capture)
    return {
        "frames": frames,
        "offered_fps": round(frames / DURATION, 1),
        "event_wall_fps": round(frames / event_s, 1),
        "columnar_wall_fps": round(frames / columnar_s, 1),
        "speedup": round(event_s / columnar_s, 2),
        "bit_exact": True,
    }


def test_bench_datapath(datapath_ip):
    repeats = 1 if SMOKE else 3
    encode = _encode_lane(repeats)
    stream = _stream_lane(datapath_ip, repeats)
    flood = _saturated_flood_lane(repeats)

    payload = {
        "sim_duration_s": DURATION,
        "capture_to_train": encode,
        "capture_to_stream": stream,
        "flood_arbitration": flood,
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_datapath.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"\ndatapath ({DURATION:g}s window): "
        f"encode {encode['bit_encode_wall_fps']:,.0f} fps bit / "
        f"{encode['window_encode_wall_fps']:,.0f} fps window; "
        f"stream {stream['stream_wall_fps']:,.0f} fps "
        f"({stream['fifo_dropped']} dropped); "
        f"saturated flood {flood['frames']} frames, "
        f"{flood['speedup']:.1f}x over event loop"
    )
