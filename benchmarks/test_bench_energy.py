"""E6 — the in-text power/energy claims (2.09 W, 0.25 mJ, 9.12 J on GPU)."""

from repro.experiments.energy import render_energy, run_energy


def test_bench_energy(benchmark, context, archive):
    result = benchmark.pedantic(
        lambda: run_energy(context, eval_frames=8000), rounds=1, iterations=1
    )
    archive("E6-energy", render_energy(result).render())

    # Operating point: the PMBus measurement lands on the paper's 2.09 W.
    assert abs(result.mean_power_w - result.paper_power_w) < 0.1
    # Energy per inference in the paper's 0.25 mJ envelope.
    assert 0.15 < result.energy_per_inference_mj < 0.35
    # GPU reference reproduces the 9.12 J measurement.
    assert abs(result.gpu_energy_j - result.paper_gpu_energy_j) < 0.01
    # The headline: 4-5 orders of magnitude between GPU and coupled FPGA.
    assert 1e4 < result.gpu_ratio < 1e5
