"""E7 — the in-text "<4 % of resources on the device" claim."""

from repro.experiments.resources_report import render_resources, run_resources


def test_bench_resources(benchmark, context, archive):
    result = benchmark.pedantic(lambda: run_resources(context), rounds=1, iterations=1)
    archive("E7-resources", render_resources(result).render())

    assert result.meets_paper_claim  # max utilisation < 4%
    for kind, percent in result.utilization_pct.items():
        assert percent < 4.0, (kind, percent)
    # Headroom for the multi-model deployment the paper proposes.
    assert result.instances_fit >= 10
    # Sanity on the estimate's composition: compute dominates the wrapper.
    stage_luts = {name: est.lut for name, est in result.per_stage}
    assert stage_luts["fc0_matmul"] > stage_luts["AXI wrapper"] / 2
