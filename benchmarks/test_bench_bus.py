"""Micro-benchmark: event-driven vs columnar bus simulation.

Simulates the same DoS-flooded vehicle window through both engines —
the per-frame event loop (``BusSimulator.run``, the reference) and the
columnar arbitration-replay kernel (``BusSimulator.capture``, the
default since the fastbus PR) — asserts bit-exactness on the flood
traffic, and archives the frame rates to
``benchmarks/output/BENCH_bus.json``.  A second clean-traffic lane
tracks the uncontended (vectorised singleton) path.

Metric classes (see ``scripts/check_bench_regression.py``): the
``offered_fps`` leaves are deterministic traffic rates (a property of
the seeded scenario, identical across machines) and gate the
regression check; the ``*_wall_fps`` rates and ``speedup`` ratios are
wall-clock based and informational.  ``MIN_SPEEDUP`` guards the
structural claim — the kernel must stay decisively faster than the
event loop even on loaded CI runners; the committed JSON carries the
measured figure (the ISSUE's >=10x acceptance reads that file).
"""

import json
import time

import numpy as np
from _bench_lane import OUTPUT_DIR, SMOKE

from repro.can.attacks import DoSAttacker
from repro.datasets.carhacking import build_vehicle_bus

#: Simulated seconds per lane.
DURATION = 1.0 if SMOKE else 4.0

#: Regression floor for the columnar kernel over the event loop.
MIN_SPEEDUP = 2.0 if SMOKE else 5.0

_SEED = 2023


def _flooded_bus():
    bus = build_vehicle_bus(vehicle_seed=_SEED)
    bus.attach(
        DoSAttacker([(0.2 * DURATION, 0.8 * DURATION)], interval=0.0003, seed=_SEED)
    )
    return bus


def _clean_bus():
    return build_vehicle_bus(vehicle_seed=_SEED)


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _lane(build_bus, repeats):
    """Time both engines on fresh same-seeded buses; verify bit-exactness."""
    event_s, records = _best_of(lambda: build_bus().run(DURATION), repeats)
    columnar_s, result = _best_of(lambda: build_bus().capture(DURATION), repeats)
    capture = result.capture
    assert len(records) == len(capture)
    np.testing.assert_array_equal(
        np.array([r.timestamp for r in records]), capture.timestamps
    )
    np.testing.assert_array_equal(
        np.array([r.frame.can_id for r in records]), capture.can_ids
    )
    frames = len(capture)
    return {
        "frames": frames,
        "offered_fps": round(frames / DURATION, 1),
        "event_wall_fps": round(frames / event_s, 1),
        "columnar_wall_fps": round(frames / columnar_s, 1),
        "speedup": round(event_s / columnar_s, 2),
        "bit_exact": True,
    }


def test_bench_bus_engines():
    repeats = 1 if SMOKE else 3
    flood = _lane(_flooded_bus, repeats)
    clean = _lane(_clean_bus, repeats)

    payload = {
        "sim_duration_s": DURATION,
        "min_speedup_required": MIN_SPEEDUP,
        "dos_flood": flood,
        "clean_traffic": clean,
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_bus.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"\nbus engines ({DURATION:g}s window): "
        f"flood {flood['frames']} frames, event {flood['event_wall_fps']:,.0f} fps "
        f"-> columnar {flood['columnar_wall_fps']:,.0f} fps ({flood['speedup']:.1f}x); "
        f"clean {clean['frames']} frames, {clean['speedup']:.1f}x"
    )
    assert flood["speedup"] >= MIN_SPEEDUP, payload
