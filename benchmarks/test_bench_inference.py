"""Micro-benchmark: float dataflow graph vs the compiled integer engine.

Times batch classification of a large feature block through both
functional paths of the same verified IP — the node-by-node float64
``DataflowGraph`` reference and the fused engine behind
``MemoryMappedAccelerator.run_batch`` — asserts bit-exactness and the
speedup floor the streaming pipeline budget relies on, then times the
E11 campaign sweep end to end, serial vs thread-pooled.  Archives
everything to ``benchmarks/output/BENCH_inference.json``.

Metric classes (see ``scripts/check_bench_regression.py``): the
``*_wall_fps`` rates and ``speedup`` ratios are wall-clock based and
informational; the deterministic gating leaves are the model's
``core_throughput_fps`` and the ECU pipeline's ``sustained_fps``, which
must not drift as the engine evolves.

A small detector is trained in-file (as in the gateway benchmark), so
the file runs in about a minute; ``REPRO_BENCH_SMOKE=1`` shrinks the
inputs and writes under ``benchmarks/output/smoke/``.
"""

import json
import time

import numpy as np
import pytest
from _bench_lane import OUTPUT_DIR, SMOKE

from repro.datasets.features import BitFeatureEncoder
from repro.experiments.campaigns import default_sweep_workers, run_campaign_sweep
from repro.fleet import ExecOptions
from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.finn.compiled import engine_cache_info, engine_for
from repro.soc.accelerator import MemoryMappedAccelerator
from repro.soc.ecu import IDSEnabledECU
from repro.utils.rng import new_rng

#: Feature rows pushed through both batch paths.
NUM_FRAMES = 8_192 if SMOKE else 98_304

#: Regression floor for the compiled engine over the float graph.  The
#: full lane measures ~7x on the canonical W4A4 topology (the committed
#: BENCH_inference.json carries the measured figure, and the ISSUE's
#: >=5x acceptance reads that file); this assert also runs in the
#: *blocking* tier-1 CI lane, where loaded shared runners compress
#: BLAS-vs-broadcast wall-clock ratios, so the floor only guards the
#: structural claim — the engine must stay decisively faster than the
#: float graph — not the exact figure.
MIN_SPEEDUP = 1.2 if SMOKE else 2.0

#: Scenario subset for the sweep wall-time comparison (the full
#: catalogue's trajectory lives in BENCH_campaigns.json; this lane
#: isolates the scheduler win on a fixed mixed subset).
SWEEP_SCENARIOS = (
    ["baseline-dos", "multi-segment-storm"]
    if SMOKE
    else [
        "baseline-dos",
        "burst-dos",
        "stealth-low-rate",
        "staggered-cross-segment",
        "overlapping-mixed",
        "multi-segment-storm",
    ]
)
SWEEP_DURATION = 0.6 if SMOKE else 2.0


@pytest.fixture(scope="module")
def bench_context():
    settings = (
        ExperimentSettings(duration=4.0, epochs=2, seed=2023)
        if SMOKE
        else ExperimentSettings(duration=6.0, epochs=8, seed=2023)
    )
    return ExperimentContext(settings)


@pytest.fixture(scope="module")
def bench_ip(bench_context):
    return bench_context.ip("dos")


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_compiled_engine_speedup(bench_ip):
    rng = new_rng(42, "bench-compiled-engine")
    features = rng.random((NUM_FRAMES, bench_ip.export.input_features))
    accel = MemoryMappedAccelerator(bench_ip)
    engine = engine_for(bench_ip)
    repeats = 1 if SMOKE else 3

    graph_s, graph_labels = _best_of(lambda: accel.run_batch(features, compiled=False), repeats)
    compiled_s, compiled_labels = _best_of(lambda: accel.run_batch(features), repeats)
    assert np.array_equal(graph_labels, compiled_labels)
    speedup = graph_s / compiled_s

    ecu = IDSEnabledECU(bench_ip, BitFeatureEncoder(), name="bench-inference-ecu")
    cache = engine_cache_info()
    payload = {
        "frames": NUM_FRAMES,
        "topology": bench_ip.export.topology,
        "batch": {
            "graph_wall_fps": round(NUM_FRAMES / graph_s, 1),
            "compiled_wall_fps": round(NUM_FRAMES / compiled_s, 1),
            "speedup": round(speedup, 2),
            "min_speedup_required": MIN_SPEEDUP,
            "bit_exact": True,
            "engine_chunk": engine.chunk_size,
            "compute_dtypes": engine.compute_dtypes,
            "threshold_kernels": engine.threshold_kernels,
        },
        # Deterministic pipeline rates: these gate the regression check.
        "core_throughput_fps": round(bench_ip.throughput_fps, 1),
        "ecu_sustained_fps": round(ecu.sustained_fps(), 1),
        "engine_cache": {"hits": cache.hits, "misses": cache.misses, "size": cache.size},
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_inference.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"\ninference {NUM_FRAMES} frames: graph {graph_s:.3f}s "
        f"({payload['batch']['graph_wall_fps']:,.0f} fps) -> compiled {compiled_s:.3f}s "
        f"({payload['batch']['compiled_wall_fps']:,.0f} fps), {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, payload["batch"]


def test_bench_campaign_sweep_parallel(bench_context, bench_ip):
    workers = default_sweep_workers(len(SWEEP_SCENARIOS))
    start = time.perf_counter()
    serial = run_campaign_sweep(
        bench_context,
        scenarios=SWEEP_SCENARIOS,
        duration=SWEEP_DURATION,
        options=ExecOptions(backend="thread", max_workers=1),
    )
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_campaign_sweep(
        bench_context,
        scenarios=SWEEP_SCENARIOS,
        duration=SWEEP_DURATION,
        options=ExecOptions(backend="thread", max_workers=workers),
    )
    parallel_s = time.perf_counter() - start
    start = time.perf_counter()
    processed = run_campaign_sweep(
        bench_context,
        scenarios=SWEEP_SCENARIOS,
        duration=SWEEP_DURATION,
        options=ExecOptions(backend="process", max_workers=workers),
    )
    process_s = time.perf_counter() - start

    # Same seeds, same verdicts — the pools only change wall time.
    for other in (parallel, processed):
        assert [(r.scenario, r.mode) for r in serial.runs] == [
            (r.scenario, r.mode) for r in other.runs
        ]
        for serial_run, other_run in zip(serial.runs, other.runs):
            assert serial_run.report.total_frames == other_run.report.total_frames
            assert serial_run.report.total_dropped == other_run.report.total_dropped

    sweep = {
        "scenarios": len(SWEEP_SCENARIOS),
        "campaign_duration_s": SWEEP_DURATION,
        "workers": workers,
        "serial_wall_seconds": round(serial_s, 3),
        "parallel_wall_seconds": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        # backend="process": fresh interpreters per worker (pool
        # initializer ships the pickled IPs once) — the wall includes
        # process spawn + per-process engine compiles, which is why it
        # only wins once per-scenario work dwarfs that fixed cost.
        "process_wall_seconds": round(process_s, 3),
        "process_speedup": round(serial_s / process_s, 2),
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    bench_path = OUTPUT_DIR / "BENCH_inference.json"
    payload = json.loads(bench_path.read_text(encoding="utf-8")) if bench_path.exists() else {}
    payload["campaign_sweep"] = sweep
    bench_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\ncampaign sweep x{len(SWEEP_SCENARIOS)}: serial {serial_s:.2f}s -> "
        f"thread {parallel_s:.2f}s ({sweep['parallel_speedup']:.2f}x) / "
        f"process {process_s:.2f}s ({sweep['process_speedup']:.2f}x, {workers} workers)"
    )
