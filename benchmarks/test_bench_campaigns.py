"""Micro-benchmark: the attack-campaign scenario sweep.

Drives every registered scenario through the campaign gateway in both
deployments (per-channel IPs vs one shared round-robin IP) and archives
wall time, aggregate sustained rates, drop rates and phase-detection
counts to ``benchmarks/output/BENCH_campaigns.json`` — the scenario
framework's perf trajectory from this PR onward.  The rendered sweep
table is archived as ``EC-campaigns.txt``.  Every scenario deploys its
*matching* trained detector (``detector="auto"``; the JSON records the
per-scenario choice), and bus windows run on the columnar arbitration
kernel; ``wall_seconds`` times the sweep itself — the detectors are
trained before the clock starts.

A small detector is trained in-file (as in the gateway benchmark), so
the file runs in around a minute and needs none of the heavyweight
benchmark fixtures.  With ``REPRO_BENCH_SMOKE=1`` (CI smoke lane) the
sweep shrinks to one iteration over tiny inputs and writes under
``benchmarks/output/smoke/`` so the committed trajectory is untouched.
"""

import json
import time

import pytest
from _bench_lane import OUTPUT_DIR, SMOKE

from repro.can.campaign import SCENARIOS
from repro.experiments.campaigns import (
    render_campaign_sweep,
    run_campaign_sweep,
    scenario_detector,
)
from repro.experiments.context import ExperimentContext, ExperimentSettings

#: Campaign length every scenario is rescaled to.
DURATION = 1.0 if SMOKE else 3.0


@pytest.fixture(scope="module")
def sweep_context():
    # Smoke keeps 4 s of capture: the default attack schedule opens its
    # first burst at t=2 s, so anything shorter trains on no attacks.
    settings = (
        ExperimentSettings(duration=4.0, epochs=2, seed=2023)
        if SMOKE
        else ExperimentSettings(duration=6.0, epochs=8, seed=2023)
    )
    return ExperimentContext(settings)


def test_bench_campaign_sweep(sweep_context):
    # Train/compile each scenario-matched detector outside the timed
    # window: wall_seconds tracks the sweep itself, not model training.
    needed = {
        scenario_detector(SCENARIOS.build(name, duration=DURATION))
        for name in SCENARIOS.names()
    }
    for detector in sorted(needed):
        sweep_context.ip(detector)

    start = time.perf_counter()
    result = run_campaign_sweep(sweep_context, duration=DURATION)
    wall_s = time.perf_counter() - start
    table = render_campaign_sweep(result)

    # Structural invariants the sweep must keep as the catalogue grows.
    assert result.health.ok  # every scenario completed
    assert len(result.scenario_names()) >= 10
    assert len(result.runs) == 2 * len(result.scenario_names())
    for run in result.runs:
        assert run.report.total_frames > 0
        # Truth windows attribute every injecting phase to its channel.
        assert len(run.report.phase_outcomes) == len(run.campaign.phases)
    for scenario in result.scenario_names():
        per_ip = result.run(scenario, "per-ip")
        shared = result.run(scenario, "shared-ip")
        # Sharing one IP can only cost capacity, never add it.
        assert (
            shared.report.aggregate_sustained_fps
            <= per_ip.report.aggregate_sustained_fps + 1e-9
        )

    payload = {
        "scenarios": len(result.scenario_names()),
        "campaign_duration_s": DURATION,
        "wall_seconds": round(wall_s, 3),
        # Resolved by ExecOptions at run time ("auto" picks process
        # fan-out on multi-core hosts): record what actually ran.
        "backend": result.backend,
        "engine": result.engine,
        # "auto" = every scenario carries the detector matching its
        # mechanics; the per-scenario map records which one that was.
        "detector": result.detector,
        "detectors": result.detectors(),
        # Resilience configuration and what the run survived ("health"
        # counters carry no gating markers, so they never join the
        # cross-run comparison).
        "timeout_s": result.options.timeout_s if result.options else None,
        "max_retries": result.options.max_retries if result.options else None,
        "strict": result.options.strict if result.options else None,
        "health": result.health.as_record(),
        "sustained_fps": {
            f"{run.scenario}/{run.mode}": round(run.report.aggregate_sustained_fps, 1)
            for run in result.runs
        },
        "drop_rate": {
            f"{run.scenario}/{run.mode}": round(run.report.drop_rate, 4)
            for run in result.runs
        },
        "phases_detected": {
            f"{run.scenario}/{run.mode}": f"{run.phases_detected}/{run.phases_injecting}"
            for run in result.runs
        },
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_campaigns.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    (OUTPUT_DIR / "EC-campaigns.txt").write_text(table.render() + "\n", encoding="utf-8")
    print()
    print(table.render())
    print(
        f"\ncampaign sweep: {len(result.runs)} runs "
        f"({len(result.scenario_names())} scenarios x 2 deployments) in {wall_s:.1f}s"
    )
