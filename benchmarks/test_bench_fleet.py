"""Micro-benchmark: fleet-scale campaign throughput (vehicles/sec).

Samples a heterogeneous fleet (mixed scenarios, topology profiles and
gateway deployments, staggered attack onsets) and runs it end to end
through ``repro.fleet.run_fleet``, timing only the fleet call itself —
detectors train and compile outside the window.  Archives the
trajectory to ``benchmarks/output/BENCH_fleet.json``.

Metric classes (see ``scripts/check_bench_regression.py``):
``vehicles_per_sec`` and the deterministic ``offered_fps`` (frames per
simulated vehicle-second, a property of the seeded population) gate the
regression check; ``wall_seconds`` is environment-bound and skipped.
Per-vehicle simulation cost is duration-proportional, so both lanes use
the same per-vehicle scenario length — the smoke lane only shrinks the
*population*, keeping vehicles/sec comparable across scales.
"""

import json
import time

from _bench_lane import OUTPUT_DIR, SMOKE

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.fleet import ExecOptions, FleetSpec, fleet_detectors, run_fleet

#: Per-vehicle campaign length (seconds of simulated bus time) — the
#: same in both lanes so vehicles/sec stays scale-comparable.
DURATION = 0.4

#: Population size: the full lane simulates a 1000-vehicle fleet.
FLEET_SIZE = 12 if SMOKE else 1000

#: Vehicles per shard task (the memory bound: peak RSS is O(shard)).
SHARD_SIZE = 4 if SMOKE else 50

#: The committed PR 8 throughput on this trajectory's machine — the
#: last bare ``pool.map`` scheduler, before the fault-tolerance layer.
#: The happy path through the submit/wait scheduler (timeouts armed,
#: retries available, zero faults) must stay within a few percent of
#: it; the smoke lane's sub-second run gets a wide noise allowance.
PR8_BASELINE_VPS = 109.51 if SMOKE else 122.95
MAX_OVERHEAD_PCT = 25.0 if SMOKE else 5.0


def test_bench_fleet():
    settings = (
        ExperimentSettings(duration=4.0, epochs=2, seed=2023)
        if SMOKE
        else ExperimentSettings(duration=6.0, epochs=8, seed=2023)
    )
    context = ExperimentContext(settings)
    spec = FleetSpec(
        name="bench-city",
        size=FLEET_SIZE,
        seed=2023,
        scenarios=(
            "baseline-dos",
            "baseline-fuzzy",
            "stealth-low-rate",
            "masquerade-rpm",
        ),
        profiles=("full", "mid", "lite"),
        deployments=("per-ip", "shared-ip"),
        duration=DURATION,
        onset_jitter=0.05,
    )
    # Train/compile every scenario-matched detector outside the timed
    # window: wall_seconds tracks the fleet itself, not model training.
    for detector in sorted(set(fleet_detectors(spec).values())):
        context.ip(detector)

    start = time.perf_counter()
    result = run_fleet(
        context, spec, ExecOptions(backend="auto"), shard_size=SHARD_SIZE
    )
    wall_s = time.perf_counter() - start

    total = result.aggregate.total
    # Structural invariants the fleet must keep as it scales.
    assert result.vehicles == FLEET_SIZE
    assert total.frames_processed + total.frames_dropped == total.frames_offered
    assert total.phases_injecting >= FLEET_SIZE  # every scenario injects
    assert 0.0 < total.detection_rate <= 1.0
    assert sum(s.vehicles for s in result.aggregate.by_scenario.values()) == FLEET_SIZE
    assert result.health.ok and result.health.retries == 0  # happy path

    vehicles_per_sec = FLEET_SIZE / wall_s
    # Fault-tolerance overhead: the scheduler's happy path vs the PR 8
    # bare-map baseline.  Negative means this run was faster.
    overhead_pct = 100.0 * (1.0 - vehicles_per_sec / PR8_BASELINE_VPS)
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"fault-tolerant scheduler happy path costs {overhead_pct:.1f}% "
        f"vs the PR 8 baseline ({PR8_BASELINE_VPS} vehicles/s); "
        f"budget is {MAX_OVERHEAD_PCT}%"
    )

    simulated_s = FLEET_SIZE * DURATION
    payload = {
        "vehicles": FLEET_SIZE,
        "vehicle_duration_s": DURATION,
        "shards": result.shards,
        "workers": result.workers,
        # Resolved by ExecOptions at run time ("auto" picks process
        # fan-out on multi-core hosts): record what actually ran.
        "backend": result.backend,
        "engine": result.engine,
        "wall_seconds": round(wall_s, 3),
        "vehicles_per_sec": round(vehicles_per_sec, 2),
        # Happy-path cost of the fault-tolerance layer ("overhead" keys
        # are excluded from cross-run gating; the hard budget is the
        # assert above).
        "fault_tolerance_overhead_pct": round(overhead_pct, 1),
        # Resilience configuration the run executed under.
        "timeout_s": result.options.timeout_s,
        "max_retries": result.options.max_retries,
        "strict": result.options.strict,
        "checkpointed": result.checkpointed,
        "health": result.health.as_record(),
        # Deterministic traffic rate of the seeded population: frames
        # offered per simulated vehicle-second — this anchors the gate.
        "offered_fps": round(total.frames_offered / simulated_s, 1),
        "frames_offered": total.frames_offered,
        "detection_rate": round(total.detection_rate, 4),
        "drop_rate": round(total.drop_rate, 4),
        "latency_p50_upper_s": total.latency_quantile_s(0.5),
        "latency_p99_upper_s": total.latency_quantile_s(0.99),
        "by_scenario": {
            name: {
                "vehicles": piece.vehicles,
                "detection_rate": round(piece.detection_rate, 4),
                "drop_rate": round(piece.drop_rate, 4),
            }
            for name, piece in result.aggregate.by_scenario.items()
        },
        "by_deployment": {
            name: {
                "vehicles": piece.vehicles,
                "detection_rate": round(piece.detection_rate, 4),
                "drop_rate": round(piece.drop_rate, 4),
            }
            for name, piece in result.aggregate.by_deployment.items()
        },
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"\nfleet {FLEET_SIZE} vehicles x {DURATION}s: {wall_s:.1f}s wall "
        f"({payload['vehicles_per_sec']:.1f} vehicles/s, "
        f"{result.shards} shards, {result.workers} {result.backend} workers), "
        f"detection {100.0 * total.detection_rate:.1f}%, "
        f"drop {100.0 * total.drop_rate:.2f}%"
    )
