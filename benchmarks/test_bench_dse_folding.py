"""E9 — FINN folding optimisation: throughput vs. resource staircase."""

from repro.experiments.foldings import render_foldings, run_foldings


def test_bench_dse_folding(benchmark, context, archive):
    report = benchmark.pedantic(
        lambda: run_foldings(context, targets=(1e4, 1e5, 5e5, 1e6, 5e6, 2e7)),
        rounds=1,
        iterations=1,
    )
    archive("E9-dse-folding", render_foldings(report).render())

    points = report.points
    # Every point meets its throughput target.
    assert all(p.achieved_fps >= p.target_fps for p in points)
    # Initiation interval is non-increasing as targets tighten.
    iis = [p.initiation_interval for p in points]
    assert all(a >= b for a, b in zip(iis, iis[1:]))
    # Resources grow meaningfully across the sweep (the staircase exists).
    assert report.resource_span > 2.0
    # Even the fastest folding fits the device (with margin to spare).
    assert points[-1].max_utilization_pct < 80.0
