"""Micro-benchmark: scalar vs. vectorised capture encoding.

Times the per-frame reference path (``encode_frame`` in a Python loop)
against the columnar ``encode_batch`` kernel on a >=100k-frame capture,
asserts bit-exactness and the >=10x speedup the streaming engine relies
on, and archives the numbers to ``benchmarks/output/BENCH_encoders.json``
so the perf trajectory is tracked from this PR onward.

The capture is synthesised directly (no bus simulation, no training),
so this file runs in seconds and needs none of the heavyweight
benchmark fixtures.
"""

import json
import time

import numpy as np
import pytest
from _bench_lane import OUTPUT_DIR, SMOKE

from repro.can.log import CANLogRecord, CaptureArray
from repro.datasets.features import BitFeatureEncoder, ByteFeatureEncoder, WindowFeatureEncoder
from repro.utils.rng import new_rng

#: Frames in the benchmarked capture (vectorisation speedups need scale
#: to show; the smoke lane trades fidelity for runtime).
NUM_FRAMES = 20_000 if SMOKE else 120_000

#: The acceptance floor for the deployed (bit) encoding; it lands far
#: above it (~100x).  Halved in the smoke lane, where the small capture
#: and one-shot timing leave more noise headroom.
MIN_SPEEDUP = 5.0 if SMOKE else 10.0

#: Regression floor for the other encoders.  The window encoder's
#: pre-vectorisation path already stacked windows with numpy (only the
#: per-frame base encode vectorises), so its ceiling is lower.
MIN_SPEEDUP_OTHERS = 2.0 if SMOKE else 4.0


def _synthetic_records(count: int, seed: int = 0) -> list[CANLogRecord]:
    """A capture-shaped record list without running the bus simulator."""
    rng = new_rng(seed, "bench-encoder-records")
    timestamps = np.cumsum(rng.uniform(1e-4, 5e-4, size=count))
    can_ids = rng.integers(0, 0x7FF + 1, size=count)
    dlcs = rng.integers(0, 9, size=count)
    payload_bytes = rng.integers(0, 256, size=(count, 8), dtype=np.uint8)
    labels = rng.random(count) < 0.3
    return [
        CANLogRecord(
            timestamp=float(timestamps[i]),
            can_id=int(can_ids[i]),
            dlc=int(dlcs[i]),
            data=payload_bytes[i, : int(dlcs[i])].tobytes(),
            label="T" if labels[i] else "R",
        )
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def records_100k():
    return _synthetic_records(NUM_FRAMES)


def _time_once(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _compare(encoder, capture, scalar_fn, floor):
    """Time capture->features through both paths; return the comparison row.

    The columnar capture is built once per capture by design (that cost
    is amortised across every encoder/epoch touching it and is archived
    separately), so the comparison is encode_frame-loop vs encode_batch.
    """
    scalar_s, reference = _time_once(scalar_fn)
    # Best of 3 for the fast path (per-run noise would dominate
    # otherwise); the smoke lane runs one iteration.
    batch_s = float("inf")
    for _ in range(1 if SMOKE else 3):
        elapsed, batch = _time_once(lambda: encoder.encode_batch(capture))
        batch_s = min(batch_s, elapsed)
    exact = bool(np.array_equal(reference, batch))
    return {
        "encoder": type(encoder).__name__,
        "frames": len(capture),
        "scalar_seconds": round(scalar_s, 6),
        "batch_seconds": round(batch_s, 6),
        "speedup": round(scalar_s / batch_s, 2),
        "min_speedup_required": floor,
        "bit_exact": exact,
    }


def test_bench_encoders_vectorised_speedup(records_100k):
    records = records_100k
    build_s, capture = _time_once(lambda: CaptureArray.from_records(records))
    rows = []

    bit = BitFeatureEncoder()
    rows.append(
        _compare(bit, capture, lambda: np.stack([bit.encode_frame(r) for r in records]), MIN_SPEEDUP)
    )

    byte = ByteFeatureEncoder()
    rows.append(
        _compare(
            byte,
            capture,
            lambda: np.stack([byte.encode_frame(r) for r in records]),
            MIN_SPEEDUP_OTHERS,
        )
    )

    # Window encoder: the scalar path is the pre-vectorisation encode()
    # implementation (per-frame base features + numpy window stacking).
    window = WindowFeatureEncoder(window=4)

    def window_scalar():
        base = np.stack([window.base.encode_frame(r) for r in records])
        times = np.array([r.timestamp for r in records])
        gaps = np.clip(np.diff(times, prepend=times[0]) / window.interarrival_scale, 0.0, 1.0)
        base = np.concatenate([base, gaps[:, None]], axis=1)
        count, per_frame = base.shape
        out = np.zeros((count, window.window * per_frame))
        for offset in range(window.window):
            source = base[: count - offset] if offset else base
            out[offset:, (window.window - 1 - offset) * per_frame : (window.window - offset) * per_frame] = source
        return out

    rows.append(_compare(window, capture, window_scalar, MIN_SPEEDUP_OTHERS))

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "frames": len(records),
        "capture_array_build_seconds": round(build_s, 6),
        "encoders": rows,
    }
    (OUTPUT_DIR / "BENCH_encoders.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    for row in rows:
        print(
            f"{row['encoder']}: {row['frames']} frames, "
            f"scalar {row['scalar_seconds']:.3f}s -> batch {row['batch_seconds']:.4f}s "
            f"({row['speedup']:.0f}x, bit_exact={row['bit_exact']})"
        )

    assert all(row["bit_exact"] for row in rows)
    assert all(row["speedup"] >= row["min_speedup_required"] for row in rows), rows
