"""Extension — comprehensive IDS on mixed-attack traffic.

The paper closes by proposing "multiple models ... executed
simultaneously for a comprehensive IDS integration".  This bench runs
that deployment against a capture where DoS and Fuzzy bursts alternate
on the same bus: both IPs co-resident, per-frame verdict = OR of the
detectors.  Asserts that the union covers both attack mechanisms while
each detector alone does not.
"""

import numpy as np

from repro.datasets.carhacking import generate_mixed_capture
from repro.datasets.features import BitFeatureEncoder
from repro.soc.driver import Overlay
from repro.training.metrics import ids_metrics
from repro.utils.rng import derive_seed
from repro.utils.tables import Table


def test_bench_comprehensive_ids(benchmark, context, archive):
    def run():
        # Same master capture seed as the training captures: the mixed
        # capture records the same vehicle the detectors were trained on
        # (the real dataset's situation), under alternating attacks.
        capture = generate_mixed_capture(
            ("dos", "fuzzy"),
            duration=10.0,
            seed=derive_seed(context.settings.seed, "capture"),
            attack_burst=1.5,
            attack_gap=1.0,
            initial_gap=0.5,
        )
        overlay = Overlay({"dos_ids": context.ip("dos"), "fuzzy_ids": context.ip("fuzzy")})
        features, labels = BitFeatureEncoder().encode(capture.records)
        dos_pred = overlay.dos_ids.classify_batch(features)
        fuzzy_pred = overlay.fuzzy_ids.classify_batch(features)
        combined = np.maximum(dos_pred, fuzzy_pred)
        return {
            "capture": capture,
            "dos": ids_metrics(labels, dos_pred),
            "fuzzy": ids_metrics(labels, fuzzy_pred),
            "combined": ids_metrics(labels, combined),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["Verdict source", "Precision", "Recall", "F1", "FNR"],
        title=(
            "Comprehensive IDS on mixed DoS+Fuzzy traffic "
            f"({len(result['capture'])} frames, "
            f"{result['capture'].num_attack} attack frames)"
        ),
    )
    for name in ("dos", "fuzzy", "combined"):
        m = result[name]
        table.add_row(
            [
                {"dos": "DoS IP alone", "fuzzy": "Fuzzy IP alone", "combined": "OR of both IPs"}[name],
                f"{m['precision']:.2f}",
                f"{m['recall']:.2f}",
                f"{m['f1']:.2f}",
                f"{m['fnr']:.2f}",
            ]
        )
    archive("EB-comprehensive", table.render())

    # Single detectors miss the other mechanism's bursts...
    assert result["dos"]["recall"] < 90.0
    # ...the union covers both.
    assert result["combined"]["recall"] > 97.0
    assert result["combined"]["f1"] > 97.0
