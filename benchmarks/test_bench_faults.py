"""Micro-benchmark: the wire-level fault layer's cost on the bus kernel.

Simulates the same seeded vehicle window through the columnar engine
with no fault model, with a zero-rate model (the fault machinery
engaged but drawing nothing), and across a BER sweep — archiving the
frame rates to ``benchmarks/output/BENCH_faults.json``.  The structural
claim gated *in-bench*: routing every capture through the fault-aware
entry points must not tax the clean path — the zero-rate lane's
best-of wall time stays within ``MAX_CLEAN_OVERHEAD_PCT`` of the
no-model lane's, and both produce bit-identical captures.

Metric classes (see ``scripts/check_bench_regression.py``): the
``offered_fps`` leaves are deterministic traffic rates (a property of
the seeded scenario and its BER, identical across machines) and gate
the regression check; ``*_wall_fps`` rates are wall-clock based and
informational; the ``clean_overhead_pct`` leaf matches the checker's
``overhead`` skip marker — its hard floor is the assert below, not a
cross-machine comparison.
"""

import json
import time

import numpy as np
from _bench_lane import OUTPUT_DIR, SMOKE

from repro.can.attacks import DoSAttacker
from repro.can.faults import WireFaultModel
from repro.datasets.carhacking import build_vehicle_bus

#: Simulated seconds per lane.
DURATION = 1.0 if SMOKE else 4.0

#: Clean-path tax ceiling (percent).  Best-of timing makes the full run
#: stable; the one-iteration smoke lane gets slack for scheduler noise.
MAX_CLEAN_OVERHEAD_PCT = 25.0 if SMOKE else 5.0

#: Wire bit-error rates swept by the faulted lanes.
BERS = (1e-5, 1e-4, 1e-3)

_SEED = 2023


def _loaded_bus():
    bus = build_vehicle_bus(vehicle_seed=_SEED)
    bus.attach(
        DoSAttacker([(0.2 * DURATION, 0.8 * DURATION)], interval=0.0005, seed=_SEED)
    )
    return bus


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_fault_layer():
    repeats = 1 if SMOKE else 5

    clean_s, clean = _best_of(lambda: _loaded_bus().capture(DURATION), repeats)
    zero_model = WireFaultModel(seed=_SEED)
    zero_s, zero = _best_of(
        lambda: _loaded_bus().capture(DURATION, faults=zero_model), repeats
    )
    # The zero-rate model must not perturb the simulation by one bit.
    np.testing.assert_array_equal(
        clean.capture.timestamps, zero.capture.timestamps
    )
    np.testing.assert_array_equal(clean.capture.can_ids, zero.capture.can_ids)
    assert not zero.corrupted_mask.any()

    overhead_pct = round(100.0 * (zero_s / clean_s - 1.0), 2)
    frames = len(clean.capture)
    payload = {
        "sim_duration_s": DURATION,
        "max_clean_overhead_pct_required": MAX_CLEAN_OVERHEAD_PCT,
        "clean": {
            "frames": frames,
            "offered_fps": round(frames / DURATION, 1),
            "columnar_wall_fps": round(frames / clean_s, 1),
        },
        "zero_rate_model": {
            "columnar_wall_fps": round(frames / zero_s, 1),
            "clean_overhead_pct": overhead_pct,
            "bit_exact": True,
        },
        "ber_sweep": {},
    }

    for ber in BERS:
        model = WireFaultModel(seed=_SEED, bit_error_rate=ber)
        faulted_s, result = _best_of(
            lambda: _loaded_bus().capture(DURATION, faults=model), repeats
        )
        rows = len(result.capture)
        payload["ber_sweep"][f"ber_{ber:g}"] = {
            "frames": rows,
            "corrupted": int(result.corrupted_mask.sum()),
            "retransmissions": int(
                result.retry_counts[~result.corrupted_mask].sum()
            ),
            "bus_off_events": int(result.bus_off_mask.sum()),
            "offered_fps": round(rows / DURATION, 1),
            "faulted_wall_fps": round(rows / faulted_s, 1),
        }

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_faults.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    worst = payload["ber_sweep"][f"ber_{BERS[-1]:g}"]
    print(
        f"\nfault layer ({DURATION:g}s window): clean "
        f"{payload['clean']['columnar_wall_fps']:,.0f} fps, zero-rate model "
        f"{overhead_pct:+.1f}% wall; BER {BERS[-1]:g} -> {worst['corrupted']} "
        f"corrupted, {worst['faulted_wall_fps']:,.0f} fps"
    )
    assert overhead_pct < MAX_CLEAN_OVERHEAD_PCT, payload
