"""E3 — Fig. 1 functional reproduction: IDS-ECUs scanning the bus.

Asserts the system-level behaviour the figure depicts: IDS-enabled
ECUs observe all traffic, flag the injected frames, and raise the
first alert within milliseconds of each attack burst starting.
"""

from repro.experiments.figure1 import render_figure1, run_figure1


def test_bench_figure1(benchmark, context, archive):
    results = benchmark.pedantic(lambda: run_figure1(context), rounds=1, iterations=1)
    archive("E3-figure1", render_figure1(results).render())

    for attack, result in results.items():
        assert result.num_attack_frames > 0, attack
        assert result.detections > 0, attack
        assert result.metrics["f1"] > 98.5, (attack, result.metrics)
        # First alert lands within the first few frames of each burst.
        assert result.mean_detection_delay_ms < 10.0, attack
