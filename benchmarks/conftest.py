"""Benchmark fixtures.

Every benchmark shares one :class:`ExperimentContext` at *benchmark
scale* (longer captures, full training budget), so the two detectors
train once for the whole run.  Rendered tables are printed and archived
under ``benchmarks/output/`` so a benchmark run leaves the regenerated
paper tables on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.context import ExperimentContext, ExperimentSettings

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Benchmark-scale experiment context (shared across all benches)."""
    return ExperimentContext(ExperimentSettings(duration=16.0, epochs=10, seed=2023))


@pytest.fixture(scope="session")
def archive():
    """Callable writing a rendered table to benchmarks/output/<name>.txt."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _write
