"""Benchmark fixtures.

Every benchmark shares one :class:`ExperimentContext` at *benchmark
scale* (longer captures, full training budget), so the two detectors
train once for the whole run.  Rendered tables are printed and archived
under ``benchmarks/output/`` so a benchmark run leaves the regenerated
paper tables on disk.
"""

from __future__ import annotations

import pytest
from _bench_lane import OUTPUT_DIR

from repro.experiments.context import ExperimentContext, ExperimentSettings


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Benchmark-scale experiment context (shared across all benches)."""
    return ExperimentContext(ExperimentSettings(duration=16.0, epochs=10, seed=2023))


@pytest.fixture(scope="session")
def archive():
    """Callable writing a rendered table to the lane's output/<name>.txt.

    Smoke runs archive under ``output/smoke/`` (see ``_bench_lane``),
    so they can never overwrite the committed trajectory.
    """
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)

    def _write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _write
