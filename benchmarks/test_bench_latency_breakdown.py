"""E4 — the in-text 0.12 ms per-message latency claim, decomposed.

Asserts the architectural shape: total in the paper's envelope, FPGA
compute a small share, OS receive path dominant.
"""

from repro.experiments.latency_report import render_latency_report, run_latency_report


def test_bench_latency_breakdown(benchmark, context, archive):
    report = benchmark.pedantic(
        lambda: run_latency_report(context, samples=50_000), rounds=1, iterations=1
    )
    archive("E4-latency-breakdown", render_latency_report(report).render())

    assert 0.09 < report.mean_ms < 0.15  # paper: 0.12 ms
    assert report.p99_ms > report.p50_ms
    assert report.hw_core_us < 20.0  # the accelerator itself is us-scale
    assert report.breakdown.dominant() == "can_rx_path"
    accel_share = report.breakdown.segments["accelerator"] / report.breakdown.total_seconds
    assert accel_share < 0.25  # software path dominates, as the paper argues
