"""E10 — multi-model deployment ("multiple models simultaneously")."""

from repro.experiments.multimodel import render_multimodel, run_multimodel


def test_bench_multimodel(benchmark, context, archive):
    result = benchmark.pedantic(
        lambda: run_multimodel(context, eval_frames=8000), rounds=1, iterations=1
    )
    archive("E10-multimodel", render_multimodel(result).render())

    # Both detectors remain functional when co-resident.
    assert result.dos_f1 > 99.5
    assert result.fuzzy_f1 > 98.0
    # Two models still use well under the device (paper: each <4%).
    assert result.combined_max_utilization_pct < 8.0
    # "Slightly higher energy consumption": tens of mW, not watts.
    assert 0.0 < result.power_overhead_w < 0.2
