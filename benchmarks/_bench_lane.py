"""Smoke-lane plumbing shared by the smoke-aware micro-benchmarks.

``scripts/bench.sh --smoke`` (the CI lane) exports
``REPRO_BENCH_SMOKE=1``: benchmarks shrink to one iteration over tiny
inputs and archive under ``benchmarks/output/smoke/`` (gitignored), so
the committed trajectory in ``benchmarks/output/`` is never touched by
a smoke run.  Import ``SMOKE`` and ``OUTPUT_DIR`` from here instead of
re-deriving them per file.
"""

import os
from pathlib import Path

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

OUTPUT_DIR = Path(__file__).parent / "output"
if SMOKE:
    OUTPUT_DIR = OUTPUT_DIR / "smoke"
