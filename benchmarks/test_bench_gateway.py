"""Micro-benchmark: the multi-channel gateway scheduler and arbitration.

Times one monitoring run of a 3-channel gateway (one DoS-flooded
segment) under both channel-advance orders — sequential vs interleaved
virtual-time — and both accelerator deployments — one IP per channel vs
one shared IP behind a round-robin arbiter.  Archives wall-times,
aggregate sustained rates and per-channel effective drains to
``benchmarks/output/BENCH_gateway.json`` so the scheduler's perf
trajectory is tracked from this PR onward.

A small detector is trained in-file (a few epochs on a short capture),
so the benchmark runs in tens of seconds and needs none of the
heavyweight benchmark fixtures.
"""

import json
import time

import numpy as np
import pytest
from _bench_lane import OUTPUT_DIR, SMOKE

from repro.finn.ipgen import compile_model
from repro.models.qmlp import QMLPConfig
from repro.soc.arbiter import SharedAcceleratorArbiter
from repro.soc.gateway import build_segment_gateway
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig

CHANNELS = 3
DURATION = 1.0 if SMOKE else 4.0  #: seconds of bus traffic per channel


@pytest.fixture(scope="module")
def gateway_ip():
    result = train_ids_model(
        "dos",
        model_config=QMLPConfig(hidden=(32, 16), weight_bits=4, act_bits=4, seed=7),
        train_config=TrainConfig(epochs=3 if SMOKE else 6, seed=3),
        duration=3.0,
        seed=11,
    )
    return compile_model(result.model, name="bench-gateway-ip", target_fps=1e6)


def _timed_monitor(ip, **kwargs):
    # Fresh 3-channel gateway, channel 0 DoS-flooded for half the window.
    gateway = build_segment_gateway(
        ip,
        channels=CHANNELS,
        flood_window=(DURATION * 0.125, DURATION / 2),
        vehicle_seed=30,
        ecu_seed=40,
        name="bench-gateway",
    )
    start = time.perf_counter()
    report = gateway.monitor(duration=DURATION, with_metrics=False, **kwargs)
    return time.perf_counter() - start, report


def test_bench_gateway_schedules_and_arbitration(gateway_ip):
    sequential_s, sequential = _timed_monitor(gateway_ip, schedule="sequential")
    interleaved_s, interleaved = _timed_monitor(gateway_ip, schedule="interleaved")
    _, shared = _timed_monitor(gateway_ip, arbiter=SharedAcceleratorArbiter())

    # The interleaving is a scheduling change, not a result change.
    for channel in interleaved.channels:
        np.testing.assert_array_equal(
            channel.report.predictions,
            sequential.channel(channel.name).report.predictions,
        )
    # Sharing one IP over 3 channels cuts every drain rate and the aggregate.
    assert shared.aggregate_sustained_fps < interleaved.aggregate_sustained_fps
    for channel in shared.channels:
        assert channel.grant is not None and channel.grant.slot_factor == CHANNELS

    payload = {
        "channels": CHANNELS,
        "duration_s": DURATION,
        "offered_frames": interleaved.total_frames,
        "wall_time": {
            "sequential_seconds": round(sequential_s, 6),
            "interleaved_seconds": round(interleaved_s, 6),
            "interleaved_overhead": round(interleaved_s / sequential_s, 3),
        },
        "sustained_fps": {
            "per_channel_ip_aggregate": round(interleaved.aggregate_sustained_fps, 1),
            "shared_ip_aggregate": round(shared.aggregate_sustained_fps, 1),
            "shared_ip_per_channel": {
                c.name: round(c.effective_drain_fps, 1) for c in shared.channels
            },
        },
        "drops": {
            "per_channel_ip": {c.name: c.dropped for c in interleaved.channels},
            "shared_ip": {c.name: c.dropped for c in shared.channels},
        },
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_gateway.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"\ngateway {CHANNELS}x{DURATION:g}s: sequential {sequential_s:.3f}s, "
        f"interleaved {interleaved_s:.3f}s "
        f"({payload['wall_time']['interleaved_overhead']:.2f}x); "
        f"sustained per-IP {interleaved.aggregate_sustained_fps:,.0f} msg/s "
        f"vs shared-IP {shared.aggregate_sustained_fps:,.0f} msg/s"
    )
