"""Tests for model builders, metrics and the trainer."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.errors import ConfigError, TrainingError
from repro.models.qmlp import QMLPConfig, build_qmlp
from repro.models.reference import build_float_mlp
from repro.models.zoo import ZOO, get_config
from repro.quant.layers import QuantLinear
from repro.training.metrics import ConfusionMatrix, confusion_matrix, ids_metrics
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig, Trainer


class TestQMLPConfig:
    def test_topology(self):
        config = QMLPConfig(input_features=79, hidden=(64, 64, 32), num_classes=2)
        assert config.topology == [79, 64, 64, 32, 2]

    def test_num_weights(self):
        config = QMLPConfig(input_features=4, hidden=(3,), num_classes=2)
        assert config.num_weights == 4 * 3 + 3 * 2

    def test_describe(self):
        assert QMLPConfig().describe() == "W4A4 79-64-64-32-2"

    def test_validation(self):
        with pytest.raises(ConfigError):
            QMLPConfig(hidden=())
        with pytest.raises(ConfigError):
            QMLPConfig(weight_bits=0)
        with pytest.raises(ConfigError):
            QMLPConfig(num_classes=1)

    def test_build_structure(self):
        model = build_qmlp(QMLPConfig(hidden=(16, 8)))
        quant_linears = [m for m in model if isinstance(m, QuantLinear)]
        assert [l.out_features for l in quant_linears] == [16, 8, 2]

    def test_build_deterministic(self, rng):
        x = rng.random((4, 79))
        a = build_qmlp(QMLPConfig(seed=5))(Tensor(x)).data
        b = build_qmlp(QMLPConfig(seed=5))(Tensor(x)).data
        np.testing.assert_array_equal(a, b)

    def test_float_twin_same_topology(self):
        config = QMLPConfig(hidden=(16, 8))
        qmlp = build_qmlp(config)
        fmlp = build_float_mlp(config)
        assert qmlp.num_parameters() == fmlp.num_parameters()

    def test_dropout_inserted(self):
        model = build_qmlp(QMLPConfig(hidden=(8,), dropout=0.2))
        from repro.autograd.layers import Dropout

        assert any(isinstance(m, Dropout) for m in model)


class TestZoo:
    def test_deployed_configs(self):
        assert get_config("dos-4bit").weight_bits == 4
        assert get_config("gpu-reference-8bit").weight_bits == 8

    def test_dse_entries_cover_sweep(self):
        for bits in (2, 3, 4, 6, 8):
            assert get_config(f"dse-dos-{bits}bit").act_bits == bits

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            get_config("nope")

    def test_zoo_configs_valid(self):
        for name, config in ZOO.items():
            assert config.topology[0] == 79, name


class TestMetrics:
    def test_perfect(self):
        m = ids_metrics(np.array([0, 1, 0, 1]), np.array([0, 1, 0, 1]))
        assert m["precision"] == 100.0 and m["recall"] == 100.0 and m["fnr"] == 0.0

    def test_known_confusion(self):
        y_true = np.array([1, 1, 1, 1, 0, 0, 0, 0, 0, 0])
        y_pred = np.array([1, 1, 1, 0, 1, 0, 0, 0, 0, 0])
        cm = confusion_matrix(y_true, y_pred)
        assert (cm.true_positive, cm.false_negative, cm.false_positive, cm.true_negative) == (3, 1, 1, 5)
        assert cm.precision == pytest.approx(0.75)
        assert cm.recall == pytest.approx(0.75)
        assert cm.false_negative_rate == pytest.approx(0.25)

    def test_fnr_is_complement_of_recall(self, rng):
        y_true = rng.integers(0, 2, size=200)
        y_pred = rng.integers(0, 2, size=200)
        cm = confusion_matrix(y_true, y_pred)
        assert cm.recall + cm.false_negative_rate == pytest.approx(1.0)

    def test_f1_harmonic_mean(self):
        cm = ConfusionMatrix(true_negative=10, false_positive=5, false_negative=2, true_positive=8)
        p, r = cm.precision, cm.recall
        assert cm.f1 == pytest.approx(2 * p * r / (p + r))

    def test_degenerate_no_positives(self):
        cm = confusion_matrix(np.zeros(5, dtype=int), np.zeros(5, dtype=int))
        assert cm.precision == 0.0 and cm.recall == 0.0 and cm.f1 == 0.0

    def test_non_binary_rejected(self):
        with pytest.raises(TrainingError):
            confusion_matrix(np.array([0, 2]), np.array([0, 1]))

    def test_shape_mismatch(self):
        with pytest.raises(TrainingError):
            confusion_matrix(np.zeros(3), np.zeros(4))


class TestTrainer:
    def _toy_data(self, rng, n=400):
        X = rng.random((n, 8))
        y = (X[:, 0] + X[:, 1] > 1.0).astype(int)
        return X, y

    def test_loss_decreases(self, rng):
        X, y = self._toy_data(rng)
        model = build_qmlp(QMLPConfig(input_features=8, hidden=(16,), seed=1))
        history = Trainer(TrainConfig(epochs=5, seed=1, early_stopping_patience=None)).fit(model, X, y)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping_restores_best(self, rng):
        X, y = self._toy_data(rng)
        model = build_qmlp(QMLPConfig(input_features=8, hidden=(16,), seed=1))
        trainer = Trainer(TrainConfig(epochs=30, seed=1, early_stopping_patience=2))
        history = trainer.fit(model, X[:300], y[:300], X[300:], y[300:])
        assert history.epochs_run <= 30
        assert history.best_epoch >= 0
        # Restored model reproduces the recorded best validation F1.
        metrics = Trainer.evaluate(model, X[300:], y[300:])
        assert metrics["f1"] == pytest.approx(history.best_val_f1, abs=1e-9)

    def test_missing_class_raises(self, rng):
        X = rng.random((50, 4))
        with pytest.raises(TrainingError):
            Trainer(TrainConfig(epochs=1)).fit(
                build_qmlp(QMLPConfig(input_features=4, hidden=(8,))), X, np.zeros(50, dtype=int)
            )

    def test_predict_batching_consistent(self, rng, trained_dos):
        X = trained_dos.splits.x_test[:300]
        full = Trainer.predict(trained_dos.model, X, batch_size=10_000)
        chunked = Trainer.predict(trained_dos.model, X, batch_size=32)
        np.testing.assert_array_equal(full, chunked)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TrainConfig(optimizer="rmsprop")
        with pytest.raises(ConfigError):
            TrainConfig(epochs=0)


class TestPipeline:
    def test_dos_model_learns(self, trained_dos):
        assert trained_dos.metrics["f1"] > 99.0
        assert trained_dos.metrics["fnr"] < 1.0

    def test_fuzzy_harder_than_dos(self, trained_dos, trained_fuzzy):
        assert trained_fuzzy.metrics["f1"] <= trained_dos.metrics["f1"]

    def test_summary_format(self, trained_dos):
        text = trained_dos.summary()
        assert "dos" in text and "F1" in text

    def test_encoder_mismatch_rejected(self, dos_capture):
        with pytest.raises(ConfigError):
            train_ids_model(
                "dos",
                model_config=QMLPConfig(input_features=10),
                capture=dos_capture,
            )

    def test_attack_free_capture_rejected(self, normal_capture):
        with pytest.raises(ConfigError):
            train_ids_model("dos", capture=normal_capture)
