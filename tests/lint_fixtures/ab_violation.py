"""Fixture: public callable with an engine= switch no test exercises."""


def monitor(duration, engine="columnar"):
    return (duration, engine)
