"""Fixture: module-level RNG construction outside the rng home."""

import numpy as np

rng = np.random.default_rng(1234)
