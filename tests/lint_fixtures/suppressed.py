"""Fixture: a real violation silenced by a justified suppression."""

# reprolint: module-role=kernel

import numpy as np


def make_names(n):
    return np.full(n, "bench")  # reprolint: disable=dtype-discipline -- unicode width inferred from the literal
