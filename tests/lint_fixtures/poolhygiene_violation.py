# reprolint: module-role=pool
"""Fixture: unbounded future waits and executor .map() in a pool module."""

from concurrent.futures import ThreadPoolExecutor


def work(item):
    return item


def fan_out(items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        results = list(pool.map(work, items))  # naked map: no failure story
        future = pool.submit(work, 0)
        results.append(future.result())  # unbounded wait
    return results
