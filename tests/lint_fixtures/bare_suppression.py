"""Fixture: suppression without a justification is itself a violation."""

# reprolint: module-role=kernel

import numpy as np


def make_buffer(n):
    return np.zeros(n)  # reprolint: disable=dtype-discipline
