"""Fixture: lambda submitted to a process pool."""

from concurrent.futures import ProcessPoolExecutor


def sweep(tasks):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(lambda task: task * 2, tasks))
