"""Fixture: wall-clock read inside a sim-role module."""

# reprolint: module-role=sim

import time


def stamp():
    return time.time()
