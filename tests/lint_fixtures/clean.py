"""Fixture: triggers no rule under any role."""

# reprolint: module-role=kernel,columnar,sim,typed-core,pool

from __future__ import annotations

import numpy as np


def make_buffer(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.float64)
