"""Fixture: allocator without explicit dtype in a kernel-role module."""

# reprolint: module-role=kernel

import numpy as np


def make_buffer(n):
    return np.zeros(n)
