"""Fixture: typed-core module with incomplete annotations."""

from __future__ import annotations

# reprolint: module-role=typed-core


def scale(value, factor: float) -> float:
    return value * factor
