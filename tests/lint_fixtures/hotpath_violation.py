"""Fixture: per-frame loop inside a columnar-role module."""

# reprolint: module-role=columnar


def drain(frames):
    total = 0
    for frame in frames:
        total += frame.wire_bits()
    return total


def materialise(capture):
    return capture.records
