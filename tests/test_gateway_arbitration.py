"""Interleaved gateway scheduling and shared-accelerator arbitration.

Pins the contracts the multi-channel scheduler PR introduced:

* the resumable :class:`ECUStreamSession` stepper reproduces
  :meth:`process_stream` exactly, chunk by chunk;
* interleaved ``monitor()`` is prediction-identical per channel to the
  sequential path, and a flood on one segment cannot leak drops or
  delay into another segment;
* a quiet channel yields an idle :class:`ChannelResult` instead of
  aborting the run;
* the shared-IP arbiter reduces every channel's effective drain rate
  deterministically (round-robin and fixed-priority).
"""

import numpy as np
import pytest

from repro.can.bus import BusSimulator
from repro.datasets.carhacking import build_vehicle_bus
from repro.datasets.features import BitFeatureEncoder
from repro.errors import SoCError
from repro.soc.arbiter import ARBITRATION_POLICIES, SharedAcceleratorArbiter
from repro.soc.ecu import IDSEnabledECU
from repro.soc.gateway import IDSGateway, build_segment_gateway


def _ecu(ip, name="ecu", seed=6, encoder=None, fifo_capacity=64):
    return IDSEnabledECU(
        ip, encoder or BitFeatureEncoder(), name=name, seed=seed, fifo_capacity=fifo_capacity
    )


def _three_channel_gateway(ip, flood=True, fifo_capacity=64):
    """powertrain (optionally DoS-flooded) + body + chassis."""
    return build_segment_gateway(
        ip,
        channels=3,
        flood_window=(0.1, 0.9) if flood else None,
        flood_interval=0.0002,
        names=("powertrain", "body", "chassis"),
        vehicle_seed=3,
        ecu_seed=6,
        fifo_capacity=fifo_capacity,
        name="test-gateway",
    )


class TestStreamSession:
    """The resumable stepper behind process_stream."""

    def test_stepping_matches_process_stream(self, dos_ip, dos_capture):
        records = dos_capture.records[:1200]
        whole = _ecu(dos_ip, seed=4).process_stream(records, chunk_size=256)
        session = _ecu(dos_ip, seed=4).open_stream(records, chunk_size=256)
        chunks = []
        while not session.done:
            chunks.append(session.step())
        report = session.finish()
        np.testing.assert_array_equal(report.predictions, whole.predictions)
        assert report.metrics == whole.metrics
        assert [c.num_serviced for c in chunks] == [256, 256, 256, 256, 176]
        # Chunks tile the serviced frames contiguously.
        assert chunks[0].start == 0
        assert all(a.stop == b.start for a, b in zip(chunks, chunks[1:]))
        assert chunks[-1].stop == report.num_processed

    def test_chunk_virtual_times_are_monotonic(self, dos_ip, dos_capture):
        session = _ecu(dos_ip, seed=4, fifo_capacity=16).open_stream(
            dos_capture.records[:2000], chunk_size=128, drain_fps=800.0
        )
        last_completion = 0.0
        while not session.done:
            before = session.next_arrival
            chunk = session.step()
            assert chunk.arrival_time == before
            assert chunk.completion_time >= chunk.arrival_time
            assert chunk.completion_time >= last_completion
            assert chunk.fifo_backlog >= 0
            last_completion = chunk.completion_time
        assert session.next_arrival == float("inf")
        assert session.virtual_time == last_completion

    def test_backlog_visible_under_flood(self, dos_ip, dos_capture):
        """Chunk boundaries see the physically full FIFO during a flood."""
        capacity = 32
        session = _ecu(dos_ip, seed=4, fifo_capacity=capacity).open_stream(
            dos_capture.records[:2000], chunk_size=64, drain_fps=400.0
        )
        backlogs = []
        while not session.done:
            backlogs.append(session.step().fifo_backlog)
        # Occupancy counts flood casualties until drop-oldest evicts
        # them, so mid-flood the buffer reads full (minus the frame
        # whose completion defines the boundary), never over-full.
        assert capacity - 1 <= max(backlogs) <= capacity
        assert backlogs[-1] == 0  # the ECU finishes its backlog
        assert session.fifo_dropped > 0

    def test_finish_requires_completion(self, dos_ip, dos_capture):
        session = _ecu(dos_ip, seed=4).open_stream(dos_capture.records[:500], chunk_size=100)
        session.step()
        with pytest.raises(SoCError):
            session.finish()

    def test_step_after_done_rejected(self, dos_ip, dos_capture):
        session = _ecu(dos_ip, seed=4).open_stream(dos_capture.records[:50])
        session.step()
        with pytest.raises(SoCError):
            session.step()

    def test_session_validates_args(self, dos_ip, dos_capture):
        ecu = _ecu(dos_ip, seed=4)
        with pytest.raises(SoCError):
            ecu.open_stream([])
        with pytest.raises(SoCError):
            ecu.open_stream(dos_capture.records[:10], chunk_size=0)
        with pytest.raises(SoCError):
            ecu.open_stream(dos_capture.records[:10], drain_fps=0.0)

    def test_lookback_context_survives_stepping(self, dos_ip, dos_capture):
        """Each step re-encodes ``lookback`` context rows and discards them."""

        class LookbackBitEncoder(BitFeatureEncoder):
            lookback = 3

        records = dos_capture.records[:600]
        encoder = LookbackBitEncoder()
        whole = _ecu(dos_ip, seed=4, encoder=encoder).process_stream(records, chunk_size=600)
        session = _ecu(dos_ip, seed=4, encoder=encoder).open_stream(records, chunk_size=97)
        while not session.done:
            session.step()
        report = session.finish()
        assert len(report.predictions) == 600  # context rows were discarded
        np.testing.assert_array_equal(report.predictions, whole.predictions)


class TestInterleavedSchedule:
    def test_interleaved_matches_sequential_unloaded(self, dos_ip):
        """Prediction-identical per channel on unloaded traffic."""
        reports = {
            schedule: _three_channel_gateway(dos_ip, flood=False).monitor(
                duration=1.0, chunk_size=128, schedule=schedule
            )
            for schedule in ("interleaved", "sequential")
        }
        for name in ("powertrain", "body", "chassis"):
            interleaved = reports["interleaved"].channel(name).report
            sequential = reports["sequential"].channel(name).report
            np.testing.assert_array_equal(interleaved.predictions, sequential.predictions)
            np.testing.assert_array_equal(interleaved.labels, sequential.labels)
            assert interleaved.fifo_dropped == sequential.fifo_dropped == 0
            assert interleaved.metrics == sequential.metrics

    def test_interleaved_matches_sequential_under_flood(self, dos_ip):
        reports = {
            schedule: _three_channel_gateway(dos_ip, fifo_capacity=16).monitor(
                duration=1.0, chunk_size=128, drain_fps=2000.0, schedule=schedule
            )
            for schedule in ("interleaved", "sequential")
        }
        for name in ("powertrain", "body", "chassis"):
            interleaved = reports["interleaved"].channel(name).report
            sequential = reports["sequential"].channel(name).report
            assert interleaved.fifo_dropped == sequential.fifo_dropped
            np.testing.assert_array_equal(interleaved.predictions, sequential.predictions)

    def test_flood_does_not_leak_across_segments(self, dos_ip):
        """The flooded segment drops its own frames; others are untouched."""
        flooded_run = _three_channel_gateway(dos_ip, fifo_capacity=16).monitor(
            duration=1.0, drain_fps=2000.0
        )
        calm_run = _three_channel_gateway(dos_ip, flood=False, fifo_capacity=16).monitor(
            duration=1.0, drain_fps=2000.0
        )
        assert flooded_run.channel("powertrain").dropped > 0
        for name in ("body", "chassis"):
            with_flood = flooded_run.channel(name).report
            without = calm_run.channel(name).report
            # Zero drops, and bit-identical verdicts and latency: the
            # flood next door changes nothing on this segment.
            assert with_flood.fifo_dropped == 0
            np.testing.assert_array_equal(with_flood.predictions, without.predictions)
            np.testing.assert_array_equal(with_flood.latency_samples, without.latency_samples)

    def test_schedule_validated(self, dos_ip):
        gateway = _three_channel_gateway(dos_ip)
        with pytest.raises(SoCError):
            gateway.monitor(duration=1.0, schedule="random")

    def test_report_names_schedule(self, dos_ip):
        report = _three_channel_gateway(dos_ip, flood=False).monitor(duration=0.5)
        assert report.schedule == "interleaved"
        assert "interleaved" in report.summary()
        assert report.arbitration_policy is None


class TestQuietChannel:
    def test_quiet_channel_yields_idle_result(self, dos_ip):
        gateway = IDSGateway("quiet-gateway")
        gateway.attach_channel(
            "body", build_vehicle_bus(vehicle_seed=4), _ecu(dos_ip, "body-ids", 7)
        )
        gateway.attach_channel("telematics", BusSimulator(), _ecu(dos_ip, "telematics-ids", 8))
        report = gateway.monitor(duration=1.0)
        idle = report.channel("telematics")
        assert idle.idle
        assert idle.num_frames == 0 and idle.dropped == 0 and idle.num_alerts == 0
        assert idle.bus_load == 0.0
        assert "idle" in report.summary()
        # Aggregates count only the live segment.
        live = report.channel("body")
        assert report.total_frames == live.num_frames > 0
        assert report.aggregate_sustained_fps == live.report.throughput_fps

    def test_all_quiet_gateway_still_reports(self, dos_ip):
        gateway = IDSGateway("parked-gateway")
        gateway.attach_channel("a", BusSimulator(), _ecu(dos_ip, "a-ids", 1))
        gateway.attach_channel("b", BusSimulator(), _ecu(dos_ip, "b-ids", 2))
        report = gateway.monitor(duration=1.0)
        assert all(c.idle for c in report.channels)
        assert report.total_frames == 0 and report.drop_rate == 0.0

    def test_unknown_channel_lookup_rejected(self, dos_ip):
        gateway = IDSGateway()
        gateway.attach_channel(
            "body", build_vehicle_bus(vehicle_seed=4), _ecu(dos_ip, "body-ids", 7)
        )
        with pytest.raises(SoCError):
            gateway.monitor(duration=0.5).channel("powertrain")


class TestArbiter:
    def test_round_robin_divides_slots_equally(self):
        arbiter = SharedAcceleratorArbiter()
        grants = arbiter.plan({"a": 9000.0, "b": 9000.0, "c": 9000.0})
        for grant in grants.values():
            assert grant.slot_factor == 3
            assert grant.effective_drain_fps == pytest.approx(3000.0)
            assert grant.wait_slots == 2
            assert grant.slowdown == pytest.approx(3.0)

    def test_round_robin_heterogeneous_bases(self):
        grants = SharedAcceleratorArbiter().plan({"fast": 12000.0, "slow": 6000.0})
        assert grants["fast"].effective_drain_fps == pytest.approx(6000.0)
        assert grants["slow"].effective_drain_fps == pytest.approx(3000.0)

    def test_fixed_priority_ranks_and_blocking(self):
        arbiter = SharedAcceleratorArbiter(
            policy="fixed-priority", priorities={"pt": 0, "body": 1, "tel": 2}
        )
        grants = arbiter.plan({"pt": 9000.0, "body": 9000.0, "tel": 9000.0})
        # Raw worst-case factors (2, 3, 3) would grant 7/6 of a slot per
        # slot, so they are scaled by 7/6; the priority ordering holds
        # and every channel is strictly slower than running alone.
        assert grants["pt"].slot_factor == pytest.approx(7.0 / 3.0)
        assert grants["body"].slot_factor == pytest.approx(3.5)
        assert grants["tel"].slot_factor == pytest.approx(3.5)
        assert grants["pt"].effective_drain_fps > grants["body"].effective_drain_fps
        assert all(g.effective_drain_fps < 9000.0 for g in grants.values())

    @pytest.mark.parametrize("policy", ARBITRATION_POLICIES)
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_granted_shares_never_oversubscribe_the_core(self, policy, count):
        """Sum of slot shares <= 1: one inference per service slot, total."""
        priorities = {f"c{i}": i for i in range(count)}
        arbiter = SharedAcceleratorArbiter(policy=policy, priorities=priorities)
        grants = arbiter.plan({f"c{i}": 9000.0 for i in range(count)})
        assert sum(1.0 / g.slot_factor for g in grants.values()) <= 1.0 + 1e-9

    def test_fixed_priority_unlisted_channels_rank_last(self):
        arbiter = SharedAcceleratorArbiter(policy="fixed-priority", priorities={"pt": 0})
        grants = arbiter.plan({"body": 1000.0, "pt": 1000.0, "tel": 1000.0})
        assert grants["pt"].rank == 0
        assert grants["body"].rank == 1  # plan order breaks the tie
        assert grants["tel"].rank == 2

    def test_two_channel_fixed_priority_is_symmetric(self):
        """Rank 0's blocking slot equals rank 1's wait: both get half."""
        grants = SharedAcceleratorArbiter(policy="fixed-priority").plan(
            {"a": 8000.0, "b": 8000.0}
        )
        assert grants["a"].slot_factor == pytest.approx(2.0)
        assert grants["b"].slot_factor == pytest.approx(2.0)

    def test_single_channel_keeps_full_rate(self):
        for policy in ARBITRATION_POLICIES:
            (grant,) = SharedAcceleratorArbiter(policy=policy).plan({"solo": 5000.0}).values()
            assert grant.slot_factor == 1
            assert grant.effective_drain_fps == pytest.approx(5000.0)

    def test_slot_overhead_slows_every_channel(self):
        base = {"a": 10000.0, "b": 10000.0}
        free = SharedAcceleratorArbiter().plan(base)
        taxed = SharedAcceleratorArbiter(slot_overhead_s=50e-6).plan(base)
        for name in base:
            assert taxed[name].effective_drain_fps < free[name].effective_drain_fps

    def test_validation(self):
        with pytest.raises(SoCError):
            SharedAcceleratorArbiter(policy="lottery")
        with pytest.raises(SoCError):
            SharedAcceleratorArbiter(slot_overhead_s=-1.0)
        with pytest.raises(SoCError):
            SharedAcceleratorArbiter().plan({})
        with pytest.raises(SoCError):
            SharedAcceleratorArbiter().plan({"a": 0.0})


class TestSharedIPGateway:
    def test_shared_ip_reduces_every_drain_deterministically(self, dos_ip):
        """The acceptance scenario: flooded 3-channel gateway, per-IP vs shared."""
        per_ip = _three_channel_gateway(dos_ip).monitor(duration=1.0)
        shared = _three_channel_gateway(dos_ip).monitor(
            duration=1.0, arbiter=SharedAcceleratorArbiter()
        )
        assert shared.arbitration_policy == "round-robin"
        for name in ("powertrain", "body", "chassis"):
            alone = per_ip.channel(name)
            arbitrated = shared.channel(name)
            assert arbitrated.grant is not None and arbitrated.grant.slot_factor == 3
            assert arbitrated.effective_drain_fps == pytest.approx(
                alone.effective_drain_fps / 3.0
            )
            assert arbitrated.report.throughput_fps == pytest.approx(
                arbitrated.effective_drain_fps
            )
        assert shared.aggregate_sustained_fps == pytest.approx(
            per_ip.aggregate_sustained_fps / 3.0
        )
        assert "shared IP" in shared.summary()

    def test_shared_ip_run_is_reproducible(self, dos_ip):
        reports = [
            _three_channel_gateway(dos_ip).monitor(
                duration=1.0, arbiter=SharedAcceleratorArbiter()
            )
            for _ in range(2)
        ]
        for name in ("powertrain", "body", "chassis"):
            first, second = (r.channel(name) for r in reports)
            assert first.dropped == second.dropped
            np.testing.assert_array_equal(first.report.predictions, second.report.predictions)

    def test_quiet_channel_excluded_from_arbitration(self, dos_ip):
        """Idle segments claim no accelerator slots."""
        gateway = IDSGateway("mixed-gateway")
        gateway.attach_channel(
            "body", build_vehicle_bus(vehicle_seed=4), _ecu(dos_ip, "body-ids", 7)
        )
        gateway.attach_channel(
            "chassis", build_vehicle_bus(vehicle_seed=5), _ecu(dos_ip, "chassis-ids", 8)
        )
        gateway.attach_channel("telematics", BusSimulator(), _ecu(dos_ip, "telematics-ids", 9))
        report = gateway.monitor(duration=1.0, arbiter=SharedAcceleratorArbiter())
        assert report.channel("telematics").idle
        assert report.channel("telematics").grant is None
        # Two live channels -> each granted half, not a third.
        assert report.channel("body").grant.slot_factor == 2
        assert report.channel("chassis").grant.slot_factor == 2


class TestE5GatewayRows:
    def test_throughput_result_renders_both_configurations(self, experiment_context):
        from repro.experiments.throughput import render_throughput, run_throughput

        result = run_throughput(
            experiment_context, eval_frames=600, gateway_channels=3, gateway_duration=0.5
        )
        assert result.gateway_channels == 3
        assert result.gateway_per_ip_fps > result.gateway_shared_ip_fps > 0
        assert result.gateway_per_ip_fps == pytest.approx(
            3 * result.gateway_shared_ip_fps
        )
        assert len(result.gateway_shared_ip_channel_fps) == 3
        text = render_throughput(result).render()
        assert "per-channel IPs" in text
        assert "shared IP" in text

    def test_gateway_rows_can_be_skipped(self, experiment_context):
        from repro.experiments.throughput import render_throughput, run_throughput

        result = run_throughput(experiment_context, eval_frames=600, gateway_channels=0)
        assert result.gateway_per_ip_fps == result.gateway_shared_ip_fps == 0.0
        assert "shared IP" not in render_throughput(result).render()
