"""End-to-end integration tests: the full paper pipeline in miniature.

These tests chain every subsystem: bus simulation -> capture -> QAT
training -> FINN compilation -> bit-exact verification -> SoC
deployment -> paper-style measurements.
"""

import numpy as np
import pytest

from repro.datasets.carhacking import CarHackingCapture, generate_capture
from repro.datasets.features import BitFeatureEncoder
from repro.finn.ipgen import compile_model
from repro.models.qmlp import QMLPConfig
from repro.soc.device import ZCU104
from repro.soc.driver import Overlay
from repro.soc.ecu import IDSEnabledECU
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig, Trainer


class TestFullPipeline:
    def test_train_compile_deploy_detect(self, trained_dos, dos_ip, dos_capture):
        """The complete DoS path reproduces the paper's claims in miniature."""
        # 1. Accuracy (Table I shape): near-perfect DoS detection.
        assert trained_dos.metrics["f1"] > 99.0
        # 2. Hardware bit-exactness: IP == trained model on the test set.
        X = trained_dos.splits.x_test
        np.testing.assert_array_equal(dos_ip.run(X), Trainer.predict(trained_dos.model, X))
        # 3. Resources (<4% claim).
        assert ZCU104.max_utilization(dos_ip.resources) < 4.0
        # 4. Deployment: ECU on fresh traffic.
        fresh = generate_capture(
            "dos", duration=1.5, seed=777, initial_gap=0.2, attack_burst=1.0, attack_gap=0.5
        )
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=1)
        report = ecu.process_capture(fresh.records)
        assert report.metrics["f1"] > 98.0
        assert report.mean_latency_s < 0.2e-3
        assert report.energy_per_inference_j < 0.5e-3

    def test_generalisation_across_seeds(self, dos_ip):
        """The detector trained on seed A detects attacks from seed B traffic."""
        other = generate_capture(
            "dos", duration=1.5, seed=4242, initial_gap=0.2, attack_burst=1.0, attack_gap=0.5
        )
        features, labels = BitFeatureEncoder().encode(other.records)
        predictions = dos_ip.run(features)
        from repro.training.metrics import ids_metrics

        assert ids_metrics(labels, predictions)["f1"] > 98.0

    def test_csv_roundtrip_through_training(self, tmp_path):
        """Captures persisted in the dataset CSV schema train identically."""
        capture = generate_capture(
            "dos", duration=1.5, seed=99, initial_gap=0.2, attack_burst=1.0, attack_gap=0.5
        )
        path = capture.save_csv(tmp_path / "dos.csv")
        loaded = CarHackingCapture.load_csv(path, attack="dos")
        config = QMLPConfig(hidden=(16,), seed=1)
        a = train_ids_model("dos", model_config=config, capture=capture,
                            train_config=TrainConfig(epochs=4, seed=2), seed=5)
        b = train_ids_model("dos", model_config=config, capture=loaded,
                            train_config=TrainConfig(epochs=4, seed=2), seed=5)
        # Timestamps differ at microsecond rounding but features do not.
        assert a.metrics == b.metrics

    def test_multi_ids_overlay_end_to_end(self, trained_dos, trained_fuzzy):
        """Fig. 1 deployment: both detectors co-resident, both functional."""
        dos_ip = compile_model(trained_dos.model, name="dos-core", verify=False)
        fuzzy_ip = compile_model(trained_fuzzy.model, name="fuzzy-core", verify=False)
        combined = dos_ip.resources + fuzzy_ip.resources
        assert ZCU104.max_utilization(combined) < 10.0
        overlay = Overlay({"dos_ids": dos_ip, "fuzzy_ids": fuzzy_ip})
        encoder = BitFeatureEncoder()
        fuzzy_records = generate_capture(
            "fuzzy", duration=1.0, seed=55, initial_gap=0.1, attack_burst=0.8, attack_gap=0.5
        ).records
        features, labels = encoder.encode(fuzzy_records)
        predictions = overlay.fuzzy_ids.classify_batch(features)
        from repro.training.metrics import ids_metrics

        assert ids_metrics(labels, predictions)["recall"] > 90.0

    def test_bitwidth_affects_resources_not_exactness(self, dos_capture):
        """Any bit width compiles bit-exactly; resources grow with bits."""
        luts = {}
        for bits in (2, 8):
            result = train_ids_model(
                "dos",
                model_config=QMLPConfig(hidden=(16,), weight_bits=bits, act_bits=bits, seed=3),
                train_config=TrainConfig(epochs=3, seed=3),
                capture=dos_capture,
                seed=13,
            )
            ip = compile_model(result.model, name=f"ids-{bits}bit")
            assert ip.verification.exact
            luts[bits] = ip.resources.lut
        assert luts[8] > luts[2]

    def test_float_scale_mode_compiles_with_tolerance(self, dos_capture):
        """Non-po2 scales verify within tolerance instead of exactly."""
        result = train_ids_model(
            "dos",
            model_config=QMLPConfig(hidden=(16,), scale_mode="float", seed=3),
            train_config=TrainConfig(epochs=3, seed=3),
            capture=dos_capture,
            seed=13,
        )
        ip = compile_model(result.model, name="float-scale-ids")
        assert ip.verification is not None
        assert ip.verification.label_agreement == 1.0
