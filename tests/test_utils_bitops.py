"""Unit + property tests for repro.utils.bitops."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.utils.bitops import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    count_stuff_bits,
    destuff_bits,
    int_to_bits,
    popcount,
    stuff_bits,
)


class TestIntBits:
    def test_msb_first(self):
        assert int_to_bits(0b1011, 4).tolist() == [1, 0, 1, 1]

    def test_leading_zeros(self):
        assert int_to_bits(1, 8).tolist() == [0] * 7 + [1]

    def test_zero(self):
        assert int_to_bits(0, 3).tolist() == [0, 0, 0]

    def test_value_too_large(self):
        with pytest.raises(ConfigError):
            int_to_bits(16, 4)

    def test_negative_value(self):
        with pytest.raises(ConfigError):
            int_to_bits(-1, 4)

    def test_bad_width(self):
        with pytest.raises(ConfigError):
            int_to_bits(0, 0)

    def test_bits_to_int_inverse(self):
        assert bits_to_int([1, 0, 1, 1]) == 0b1011

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ConfigError):
            bits_to_int([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**29 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 29)) == value


class TestByteBits:
    def test_bytes_to_bits(self):
        assert bytes_to_bits([0xA5])[:8].tolist() == [1, 0, 1, 0, 0, 1, 0, 1]

    def test_empty(self):
        assert bytes_to_bits([]).size == 0

    def test_value_range_checked(self):
        with pytest.raises(ConfigError):
            bytes_to_bits([256])

    def test_bits_to_bytes_requires_multiple_of_8(self):
        with pytest.raises(ConfigError):
            bits_to_bytes([1, 0, 1])

    @given(st.binary(min_size=0, max_size=16))
    def test_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestPopcount:
    @pytest.mark.parametrize("value,expected", [(0, 0), (1, 1), (0xFF, 8), (0b1010, 2)])
    def test_known(self, value, expected):
        assert popcount(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            popcount(-1)


class TestStuffing:
    def test_five_zeros_get_stuffed(self):
        assert stuff_bits([0, 0, 0, 0, 0]).tolist() == [0, 0, 0, 0, 0, 1]

    def test_five_ones_get_stuffed(self):
        assert stuff_bits([1, 1, 1, 1, 1]).tolist() == [1, 1, 1, 1, 1, 0]

    def test_alternating_untouched(self):
        bits = [0, 1] * 10
        assert stuff_bits(bits).tolist() == bits

    def test_stuff_bit_counts_towards_next_run(self):
        # 0x00 byte + more zeros: stuff bit (1) resets the zero run.
        out = stuff_bits([0] * 10)
        assert out.tolist() == [0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1]

    def test_count_stuff_bits(self):
        assert count_stuff_bits([0] * 10) == 2
        assert count_stuff_bits([0, 1] * 5) == 0

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=200))
    def test_roundtrip(self, bits):
        stuffed = stuff_bits(bits)
        assert destuff_bits(stuffed).tolist() == bits

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200))
    def test_no_six_bit_runs_after_stuffing(self, bits):
        stuffed = stuff_bits(bits).tolist()
        run = 1
        for a, b in zip(stuffed, stuffed[1:]):
            run = run + 1 if a == b else 1
            assert run <= 5
