"""Regression tests for the vectorised streaming engine.

Pins the three contracts the streaming PR introduced:

* FIFO drop accounting reflects frames actually lost to overflow (the
  batched path drains what it fills; no phantom drops);
* ``encode_batch`` is bit-exact with the per-frame reference encoders;
* ``process_stream`` is prediction-identical to ``process_capture`` on
  drop-free traffic, and drops the oldest frames under floods.
"""

import numpy as np
import pytest

from repro.can.attacks import DoSAttacker
from repro.can.log import CaptureArray
from repro.datasets.carhacking import build_vehicle_bus
from repro.datasets.features import BitFeatureEncoder, ByteFeatureEncoder, WindowFeatureEncoder
from repro.errors import DatasetError, SoCError
from repro.soc.ecu import IDSEnabledECU, simulate_fifo_admission
from repro.soc.gateway import IDSGateway


class TestCaptureArray:
    def test_round_trip(self, dos_capture):
        records = dos_capture.records[:500]
        capture = CaptureArray.from_records(records)
        assert len(capture) == 500
        assert capture.to_records() == records

    def test_slicing_and_masking(self, dos_capture):
        capture = CaptureArray.from_records(dos_capture.records[:100])
        window = capture[10:20]
        assert len(window) == 10
        assert window.to_records() == dos_capture.records[10:20]
        mask = capture.labels == 1
        attacks = capture[mask]
        assert len(attacks) == int(mask.sum())
        assert bool(np.all(attacks.labels == 1))

    def test_integer_indexing_bounds(self, dos_capture):
        capture = CaptureArray.from_records(dos_capture.records[:5])
        assert capture[2].to_records() == dos_capture.records[2:3]
        assert capture[-1].to_records() == dos_capture.records[4:5]
        with pytest.raises(IndexError):
            capture[5]
        with pytest.raises(IndexError):
            capture[-6]

    def test_concatenate(self, dos_capture):
        capture = CaptureArray.from_records(dos_capture.records[:60])
        joined = CaptureArray.concatenate([capture[:25], capture[25:]])
        assert joined.to_records() == capture.to_records()

    def test_payload_zero_padding(self, dos_capture):
        capture = CaptureArray.from_records(dos_capture.records[:200])
        for row, record in zip(capture.payloads, dos_capture.records[:200]):
            assert bytes(row[: record.dlc]) == record.data
            assert not row[record.dlc :].any()

    def test_shape_validation(self):
        with pytest.raises(DatasetError):
            CaptureArray(
                timestamps=np.zeros(3),
                can_ids=np.zeros(2, dtype=np.int64),
                dlcs=np.zeros(3, dtype=np.int64),
                payloads=np.zeros((3, 8), dtype=np.uint8),
                labels=np.zeros(3, dtype=np.int64),
            )


class TestEncodeBatchParity:
    """The vectorised kernels must be bit-exact with the per-frame path."""

    def _reference(self, encoder, records):
        return np.stack([encoder.encode_frame(r) for r in records])

    def test_bit_encoder(self, dos_capture):
        records = dos_capture.records[:800]
        encoder = BitFeatureEncoder()
        batch = encoder.encode_batch(CaptureArray.from_records(records))
        reference = self._reference(encoder, records)
        assert batch.dtype == reference.dtype
        np.testing.assert_array_equal(batch, reference)

    def test_byte_encoder(self, dos_capture):
        records = dos_capture.records[:800]
        encoder = ByteFeatureEncoder()
        batch = encoder.encode_batch(CaptureArray.from_records(records))
        np.testing.assert_array_equal(batch, self._reference(encoder, records))

    @pytest.mark.parametrize("window,interarrival", [(1, True), (4, True), (4, False), (7, True)])
    def test_window_encoder(self, dos_capture, window, interarrival):
        """Left-padding and inter-arrival features survive vectorisation."""
        records = dos_capture.records[:300]
        encoder = WindowFeatureEncoder(window=window, include_interarrival=interarrival)
        batch = encoder.encode_batch(CaptureArray.from_records(records))
        # Reference: per-frame base features + explicit window stacking.
        base = self._reference(encoder.base, records)
        if interarrival:
            times = np.array([r.timestamp for r in records])
            gaps = np.clip(np.diff(times, prepend=times[0]) / encoder.interarrival_scale, 0.0, 1.0)
            base = np.concatenate([base, gaps[:, None]], axis=1)
        count, per_frame = base.shape
        reference = np.zeros((count, window * per_frame))
        for offset in range(window):
            source = base[: count - offset] if offset else base
            reference[offset:, (window - 1 - offset) * per_frame : (window - offset) * per_frame] = source
        np.testing.assert_array_equal(batch, reference)
        # The first window rows really are left-padded with zeros.
        if window > 1:
            assert not batch[0, : (window - 1) * per_frame].any()

    def test_window_chunking_with_lookback(self, dos_capture):
        """Chunked encoding with lookback context equals whole-capture."""
        capture = CaptureArray.from_records(dos_capture.records[:500])
        encoder = WindowFeatureEncoder(window=4)
        full = encoder.encode_batch(capture)
        pieces = []
        start = 0
        while start < len(capture):
            stop = min(start + 77, len(capture))
            context = min(encoder.lookback, start)
            pieces.append(encoder.encode_batch(capture[start - context : stop])[context:])
            start = stop
        np.testing.assert_array_equal(np.concatenate(pieces), full)

    def test_encode_returns_labels(self, dos_capture):
        X, y = BitFeatureEncoder().encode(dos_capture.records[:200])
        assert X.shape == (200, 79)
        assert y.tolist() == [1 if r.is_attack else 0 for r in dos_capture.records[:200]]

    def test_empty_capture_encodes_empty(self):
        # Zero-frame captures (fully-dropped flood windows) are valid
        # input: every encoder path yields correctly-shaped empties.
        X, y = BitFeatureEncoder().encode([])
        assert X.shape == (0, 79) and y.shape == (0,)
        batch = BitFeatureEncoder().encode_batch(CaptureArray.from_records([]))
        assert batch.shape == (0, 79)


class TestFifoDropAccounting:
    """No phantom drops: the batch path drains the FIFO it fills."""

    @pytest.mark.parametrize("count", [10, 64, 100, 1000])
    def test_process_capture_drop_free(self, dos_ip, dos_capture, count):
        """Below/at/above capacity: every frame serviced, zero drops."""
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4, fifo_capacity=64)
        report = ecu.process_capture(dos_capture.records[:count])
        assert report.fifo_dropped == 0
        assert report.num_frames == count
        assert report.num_processed == count
        assert len(report.predictions) == count
        assert ecu.fifo.pushed == count
        assert ecu.fifo.popped == count
        assert ecu.fifo.dropped == 0

    def test_metrics_cover_all_frames(self, dos_ip, dos_capture):
        """Predictions/metrics are computed over exactly the serviced frames."""
        records = dos_capture.records[:2000]
        report = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4).process_capture(records)
        assert len(report.predictions) == len(report.labels) == 2000
        assert report.metrics is not None

    def test_classify_frame_keeps_per_frame_accounting(self, dos_ip, dos_capture):
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        for record in dos_capture.records[:5]:
            ecu.classify_frame(record)
        assert ecu.fifo.pushed == 5 and ecu.fifo.popped == 5 and ecu.fifo.dropped == 0


class TestFifoAdmission:
    def _naive(self, timestamps, service, capacity):
        """Independent reference: event-by-event drop-oldest queue."""
        kept = [True] * len(timestamps)
        queue, t_free = [], float("-inf")
        for i, t in enumerate(timestamps):
            while queue:
                begin = max(t_free, timestamps[queue[0]])
                if begin >= t:
                    break
                t_free = begin + service
                queue.pop(0)
            if len(queue) >= capacity:
                kept[queue.pop(0)] = False
            queue.append(i)
        return np.array(kept)

    def test_drop_free_when_drain_keeps_up(self):
        timestamps = np.arange(100) * 1.0
        kept, peak, waits = simulate_fifo_admission(timestamps, 0.5, 4)
        assert kept.all() and peak == 1
        assert not waits.any()  # server always idle at arrival: zero queueing

    def test_drop_oldest_under_flood(self):
        # Three simultaneous arrivals into a 2-deep FIFO: the oldest ages out.
        kept, peak, waits = simulate_fifo_admission(np.array([0.0, 0.0, 0.0, 10.0]), 1.0, 2)
        assert kept.tolist() == [False, True, True, True]
        assert peak == 2
        # Frame 1 starts at t=0, frame 2 waits one service slot, frame 3
        # finds the server idle again; dropped frames report zero wait.
        assert waits.tolist() == [0.0, 0.0, 1.0, 0.0]

    def test_backlog_queueing_delay_without_drops(self):
        # A burst of 4 simultaneous arrivals into a roomy FIFO: no drops,
        # but each frame queues one service slot behind the previous.
        kept, peak, waits = simulate_fifo_admission(np.zeros(4), 1.0, 64)
        assert kept.all() and peak == 4
        assert waits.tolist() == [0.0, 1.0, 2.0, 3.0]

    @pytest.mark.parametrize("capacity", [1, 2, 8, 64])
    def test_matches_naive_reference(self, rng, capacity):
        timestamps = np.sort(rng.uniform(0.0, 1.0, size=400))
        service = 1.0 / 600.0  # drain slower than the 400/s offered rate
        kept, _, _ = simulate_fifo_admission(timestamps, service, capacity)
        np.testing.assert_array_equal(kept, self._naive(timestamps.tolist(), service, capacity))

    def test_unsorted_timestamps_rejected(self):
        with pytest.raises(SoCError):
            simulate_fifo_admission(np.array([1.0, 0.5]), 0.1, 4)

    def test_service_time_validated(self):
        with pytest.raises(SoCError):
            simulate_fifo_admission(np.array([0.0]), 0.0, 4)


class TestProcessStream:
    def test_parity_with_process_capture(self, dos_ip, dos_capture):
        """Drop-free streaming predicts exactly what the batch path does."""
        records = dos_capture.records[:1500]
        batch = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4).process_capture(records)
        stream = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4).process_stream(
            records, chunk_size=256
        )
        assert stream.fifo_dropped == 0
        assert stream.num_processed == len(records)
        np.testing.assert_array_equal(stream.predictions, batch.predictions)
        np.testing.assert_array_equal(stream.labels, batch.labels)
        assert stream.metrics == batch.metrics

    def test_chunk_size_irrelevant_to_predictions(self, dos_ip, dos_capture):
        records = dos_capture.records[:700]
        reports = [
            IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4).process_stream(
                records, chunk_size=size
            )
            for size in (64, 701)
        ]
        np.testing.assert_array_equal(reports[0].predictions, reports[1].predictions)

    def test_flood_drops_oldest_and_excludes_them(self, dos_ip, dos_capture):
        """Arrivals above the drain rate overflow the bounded FIFO."""
        records = dos_capture.records[:3000]
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4, fifo_capacity=16)
        report = ecu.process_stream(records, drain_fps=500.0)
        assert report.fifo_dropped > 0
        assert report.num_processed + report.fifo_dropped == report.num_frames
        assert len(report.predictions) == len(report.labels) == report.num_processed
        assert report.max_fifo_occupancy == 16
        assert ecu.fifo.dropped == report.fifo_dropped
        assert ecu.fifo.pushed == report.num_frames
        assert ecu.fifo.popped == report.num_processed

    def test_flood_latency_includes_queueing_delay(self, dos_ip, dos_capture):
        """Under backpressure the reported latency degrades visibly."""
        records = dos_capture.records[:3000]
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4, fifo_capacity=16)
        report = ecu.process_stream(records, drain_fps=500.0)
        nominal = report.latency_breakdown.total_seconds
        # A 16-deep queue at 2 ms/frame adds tens of ms of waiting —
        # orders of magnitude above the ~0.1 ms pipeline latency.
        assert report.mean_latency_s > 10 * nominal
        # Waiting is bounded by the FIFO depth times the service time.
        assert report.p99_latency_s < 16 * (1 / 500.0) + 10 * nominal
        # Energy stays per-inference (queueing burns no compute).
        assert report.energy_per_inference_j < 1e-3

    def test_kept_indices_map_back_to_capture(self, dos_ip, dos_capture):
        records = dos_capture.records[:3000]
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4, fifo_capacity=16)
        report = ecu.process_stream(records, drain_fps=500.0)
        kept = report.kept_indices
        assert kept is not None and len(kept) == report.num_processed
        assert bool(np.all(np.diff(kept) > 0))  # strictly increasing positions
        # The mapping recovers the serviced frames' ground truth exactly.
        expected_labels = np.array([1 if records[i].is_attack else 0 for i in kept])
        np.testing.assert_array_equal(report.labels, expected_labels)

    def test_stream_accepts_capture_array(self, dos_ip, dos_capture):
        capture = CaptureArray.from_records(dos_capture.records[:400])
        report = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4).process_stream(capture)
        assert report.num_processed == 400

    def test_empty_and_bad_args_rejected(self, dos_ip):
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        with pytest.raises(SoCError):
            ecu.process_stream([])
        with pytest.raises(SoCError):
            ecu.process_stream(CaptureArray.from_records([]))

    def test_chunk_and_drain_validated(self, dos_ip, dos_capture):
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        with pytest.raises(SoCError):
            ecu.process_stream(dos_capture.records[:10], chunk_size=0)
        with pytest.raises(SoCError):
            ecu.process_stream(dos_capture.records[:10], drain_fps=-1.0)


class TestThroughputDefinitions:
    def test_sustained_is_ii_gated(self, dos_ip, dos_capture):
        """throughput_fps is the pipeline II bound, not inverse latency."""
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        report = ecu.process_capture(dos_capture.records[:500], with_metrics=False)
        trace = ecu.reference_trace()
        core_ii_s = 1.0 / dos_ip.throughput_fps
        expected = 1.0 / ecu.latency_model.service_interval(trace, core_ii_s)
        assert report.throughput_fps == pytest.approx(expected)
        # The paper's inverse-latency convention is preserved separately.
        assert report.inverse_latency_fps == pytest.approx(1.0 / report.mean_latency_s)
        # Pipelining overlaps stages: sustained rate >= the no-overlap figure.
        nominal = ecu.latency_model.end_to_end(trace).total_seconds
        assert report.throughput_fps >= 1.0 / nominal

    def test_e5_reports_both_conventions(self, experiment_context):
        from repro.experiments.throughput import render_throughput, run_throughput

        result = run_throughput(experiment_context, eval_frames=600)
        assert result.ecu_throughput_fps != result.ecu_inverse_latency_fps
        assert result.hw_core_fps > result.ecu_throughput_fps
        text = render_throughput(result).render()
        assert "1/latency" in text and "sustained" in text


class TestGateway:
    @pytest.fixture()
    def gateway(self, dos_ip):
        gateway = IDSGateway("test-gateway")
        flooded = build_vehicle_bus(vehicle_seed=3)
        flooded.attach(DoSAttacker([(0.2, 0.8)], seed=5))
        gateway.attach_channel(
            "powertrain",
            flooded,
            IDSEnabledECU(dos_ip, BitFeatureEncoder(), name="powertrain-ids", seed=6),
        )
        gateway.attach_channel(
            "body",
            build_vehicle_bus(vehicle_seed=4),
            IDSEnabledECU(dos_ip, BitFeatureEncoder(), name="body-ids", seed=7),
        )
        return gateway

    def test_aggregate_accounting_conserves_frames(self, gateway):
        report = gateway.monitor(duration=1.0)
        assert len(report.channels) == 2
        assert report.total_frames == sum(c.report.num_frames for c in report.channels)
        assert report.total_processed + report.total_dropped == report.total_frames
        assert report.aggregate_offered_fps == pytest.approx(report.total_frames / 1.0)

    def test_flooded_channel_raises_alerts(self, gateway):
        report = gateway.monitor(duration=1.0)
        by_name = {c.name: c for c in report.channels}
        assert len(by_name["powertrain"].report.alerts) > 0
        assert by_name["powertrain"].bus_load > by_name["body"].bus_load
        assert "powertrain" in report.summary()

    def test_duplicate_and_empty_channels_rejected(self, dos_ip):
        gateway = IDSGateway()
        with pytest.raises(SoCError):
            gateway.monitor(duration=1.0)
        bus = build_vehicle_bus(vehicle_seed=1)
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=1)
        gateway.attach_channel("a", bus, ecu)
        with pytest.raises(SoCError):
            gateway.attach_channel("a", bus, ecu)
