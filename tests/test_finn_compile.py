"""Tests for build, streamline, folding, hw mapping, cyclesim, verify, ipgen."""

import numpy as np
import pytest

from repro.errors import CompileError, ResourceError, VerificationError
from repro.finn.build import build_frontend_graph, quantize_input
from repro.finn.cyclesim import CycleSimulator
from repro.finn.folding import FoldingConfig, divisors, fold_for_target, max_parallel_folding
from repro.finn.graph import MatMulIntNode, MultiThresholdNode, PadNode
from repro.finn.hls_layers import MVAU, to_hw_pipeline
from repro.finn.ipgen import RegisterMap, compile_model
from repro.finn.resources import ResourceEstimate, weight_storage
from repro.finn.streamline import streamline
from repro.finn.verify import verify_bit_exact
from repro.quant.export import export_qnn


@pytest.fixture(scope="module")
def export(trained_dos_module):
    return export_qnn(trained_dos_module.model)


@pytest.fixture(scope="module")
def trained_dos_module(request):
    return request.getfixturevalue("trained_dos")


class TestFrontend:
    def test_frontend_matches_export(self, export, rng):
        graph = build_frontend_graph(export, with_argmax=False)
        x = rng.random((64, export.input_features))
        np.testing.assert_array_equal(
            graph.execute(quantize_input(export, x)), export.execute_float(x)
        )

    def test_argmax_head(self, export, rng):
        graph = build_frontend_graph(export, with_argmax=True)
        x = rng.random((16, export.input_features))
        labels = graph.execute(quantize_input(export, x)).reshape(-1)
        expected = export.execute_float(x).argmax(axis=1)
        np.testing.assert_array_equal(labels, expected)

    def test_quantize_input_integral(self, export, rng):
        x_int = quantize_input(export, rng.random((8, export.input_features)))
        np.testing.assert_array_equal(x_int, np.round(x_int))
        assert x_int.min() >= 0


class TestStreamline:
    def test_streamlined_matches_frontend(self, export, rng):
        frontend = build_frontend_graph(export)
        hw = streamline(frontend)
        x_int = quantize_input(export, rng.random((64, export.input_features)))
        np.testing.assert_array_equal(hw.execute(x_int), frontend.execute(x_int))

    def test_threshold_nodes_created(self, export):
        hw = streamline(build_frontend_graph(export))
        thresholds = hw.nodes_of_type(MultiThresholdNode)
        assert len(thresholds) == len(export.layers) - 1

    def test_padding_inserted_for_prime_width(self, export):
        hw = streamline(build_frontend_graph(export), pad_multiple=8)
        pads = hw.nodes_of_type(PadNode)
        assert len(pads) == 1  # 79 -> 80
        first_matmul = hw.nodes_of_type(MatMulIntNode)[0]
        assert first_matmul.in_features == 80
        assert first_matmul.weight_int[:, 79:].sum() == 0  # zero columns

    def test_no_padding_when_multiple_is_one(self, export):
        hw = streamline(build_frontend_graph(export), pad_multiple=1)
        assert not hw.nodes_of_type(PadNode)

    def test_verify_streamlined_bit_exact(self, export, rng):
        hw = streamline(build_frontend_graph(export))
        report = verify_bit_exact(export, hw, rng.random((128, export.input_features)))
        assert report.exact
        assert report.label_agreement == 1.0


class TestFolding:
    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(79) == [1, 79]

    def test_divisors_validates(self):
        with pytest.raises(CompileError):
            divisors(0)

    def test_fold_meets_budget(self, export):
        hw = streamline(build_frontend_graph(export))
        folding = fold_for_target(hw, target_fps=1e6, clock_hz=100e6)
        matmuls = hw.nodes_of_type(MatMulIntNode)
        assert folding.max_cycles(matmuls) <= 100

    def test_tighter_target_needs_more_lanes(self, export):
        hw = streamlined = streamline(build_frontend_graph(export))
        slow = fold_for_target(hw, target_fps=1e4, clock_hz=100e6)
        fast = fold_for_target(hw, target_fps=1e6, clock_hz=100e6)
        cost = lambda f: sum(p * s for p, s in zip(f.pe, f.simd))
        assert cost(fast) > cost(slow)

    def test_max_parallel_single_cycle(self, export):
        hw = streamline(build_frontend_graph(export))
        folding = max_parallel_folding(hw)
        assert folding.max_cycles(hw.nodes_of_type(MatMulIntNode)) == 1

    def test_impossible_target_raises(self, export):
        hw = streamline(build_frontend_graph(export))
        with pytest.raises(ResourceError):
            fold_for_target(hw, target_fps=2e8, clock_hz=100e6)

    def test_invalid_folding_rejected(self, export):
        hw = streamline(build_frontend_graph(export))
        matmuls = hw.nodes_of_type(MatMulIntNode)
        bad = FoldingConfig(pe=[3] * len(matmuls), simd=[7] * len(matmuls))
        with pytest.raises(CompileError):
            bad.cycles(matmuls)


class TestMVAU:
    def test_cycles_formula(self):
        mvau = MVAU("m", 64, 32, pe=4, simd=8, weight_bits=4, input_bits=4, acc_bits=16, act_bits=4, threshold_steps=15)
        assert mvau.initiation_interval == (32 // 4) * (64 // 8)

    def test_divisibility_enforced(self):
        with pytest.raises(CompileError):
            MVAU("m", 64, 30, pe=4, simd=8, weight_bits=4, input_bits=4, acc_bits=16, act_bits=4)

    def test_resources_scale_with_lanes(self):
        small = MVAU("s", 64, 32, 2, 4, 4, 4, 16, 4, 15).resources()
        big = MVAU("b", 64, 32, 8, 16, 4, 4, 16, 4, 15).resources()
        assert big.lut > small.lut

    def test_dsp_for_wide_operands(self):
        wide = MVAU("w", 64, 32, 4, 4, 8, 8, 20, 8, 255)
        assert wide.resources().dsp == 16

    def test_lut_for_narrow_operands(self):
        narrow = MVAU("n", 64, 32, 4, 4, 4, 4, 16, 4, 15)
        assert narrow.resources().dsp == 0

    def test_weight_storage_mapping(self):
        lutram, bram = weight_storage(1024)
        assert lutram > 0 and bram == 0
        lutram, bram = weight_storage(200_000)
        assert lutram == 0 and bram > 0


class TestHWPipelineAndSim:
    def test_pipeline_structure(self, export):
        hw = streamline(build_frontend_graph(export))
        folding = fold_for_target(hw, 1e6, 100e6)
        pipeline = to_hw_pipeline(hw, folding)
        mvaus = [s for s in pipeline.stages if isinstance(s, MVAU)]
        assert len(mvaus) == len(export.layers)
        assert len(pipeline.fifos) == len(pipeline.stages) - 1

    def test_ii_is_max_stage(self, export):
        hw = streamline(build_frontend_graph(export))
        pipeline = to_hw_pipeline(hw, fold_for_target(hw, 1e6, 100e6))
        assert pipeline.initiation_interval == max(s.initiation_interval for s in pipeline.stages)

    def test_sim_latency_close_to_static(self, export):
        hw = streamline(build_frontend_graph(export))
        pipeline = to_hw_pipeline(hw, fold_for_target(hw, 1e6, 100e6))
        report = CycleSimulator(pipeline, 100e6).simulate(20)
        assert report.latency_cycles <= pipeline.latency_cycles
        assert report.latency_cycles >= sum(s.latency_cycles for s in pipeline.stages) - len(pipeline.fifos) - 1

    def test_steady_state_throughput(self, export):
        hw = streamline(build_frontend_graph(export))
        pipeline = to_hw_pipeline(hw, fold_for_target(hw, 1e6, 100e6))
        report = CycleSimulator(pipeline, 100e6).simulate(200)
        # Back-to-back samples: total time ~= N * II (+ pipeline fill).
        assert report.total_cycles == pytest.approx(200 * report.steady_ii, rel=0.1)

    def test_spaced_arrivals_respected(self, export):
        hw = streamline(build_frontend_graph(export))
        pipeline = to_hw_pipeline(hw, fold_for_target(hw, 1e6, 100e6))
        arrivals = np.arange(10) * 10_000  # one every 100 us at 100 MHz
        report = CycleSimulator(pipeline, 100e6).simulate(10, arrival_cycles=arrivals)
        assert report.total_cycles >= arrivals[-1]

    def test_fifo_sizing(self, export):
        hw = streamline(build_frontend_graph(export))
        pipeline = to_hw_pipeline(hw, fold_for_target(hw, 1e6, 100e6))
        sim = CycleSimulator(pipeline, 100e6)
        sim.size_fifos()
        assert all(f.depth >= 2 for f in pipeline.fifos)


class TestCompileModel:
    def test_compile_verifies(self, dos_ip):
        assert dos_ip.verification is not None
        assert dos_ip.verification.exact

    def test_run_matches_trainer_predictions(self, dos_ip, trained_dos):
        from repro.training.trainer import Trainer

        X = trained_dos.splits.x_test[:500]
        np.testing.assert_array_equal(dos_ip.run(X), Trainer.predict(trained_dos.model, X))

    def test_logits_match_model(self, dos_ip, trained_dos, rng):
        from repro.autograd.tensor import Tensor

        X = rng.random((32, 79))
        trained_dos.model.eval()
        np.testing.assert_array_equal(dos_ip.logits(X), trained_dos.model(Tensor(X)).data)

    def test_throughput_meets_target(self, dos_ip):
        assert dos_ip.throughput_fps >= dos_ip.metadata["target_fps"]

    def test_latency_microseconds_scale(self, dos_ip):
        assert dos_ip.latency_seconds < 50e-6  # hw core is us-scale

    def test_register_map(self, dos_ip):
        rm = dos_ip.register_map
        assert rm.input_words == (79 * 8 + 31) // 32
        assert rm.span >= rm.INPUT_BASE + 4 * rm.input_words

    def test_register_map_for_input(self):
        rm = RegisterMap.for_input(4, 1)
        assert rm.input_words == 1

    def test_to_dict(self, dos_ip):
        import json

        assert json.dumps(dos_ip.to_dict())

    def test_summary_text(self, dos_ip):
        text = dos_ip.summary()
        assert "folding" in text and "resources" in text


class TestVerifyFailure:
    def test_corrupted_graph_detected(self, trained_dos, rng):
        export = export_qnn(trained_dos.model)
        hw = streamline(build_frontend_graph(export))
        matmul = hw.nodes_of_type(MatMulIntNode)[0]
        matmul.weight_int[0, 0] += 64  # corrupt one weight hard
        with pytest.raises(VerificationError):
            verify_bit_exact(export, hw, rng.random((64, export.input_features)))
