"""Bit-exactness and caching tests for the compiled inference engine.

The engine (:mod:`repro.finn.compiled`) is the default batch path of
the whole SoC layer, so its contract is absolute: for every streamlined
graph it must reproduce ``DataflowGraph.execute`` bit for bit — across
weight/activation bit widths, both quantiser scale modes, every
threshold kernel, every exact compute dtype and every batch shape
(including batch=1 and the chunked-stream path).  The sweep below
builds synthetic exports directly (no training) so the full width grid
stays cheap; the deployed-model tests ride the shared trained fixture.
"""

import numpy as np
import pytest

from repro.errors import CompileError, VerificationError
from repro.finn.build import build_frontend_graph, quantize_input
from repro.finn.compiled import (
    STEPPED_KERNEL_MAX_STEPS,
    compile_engine,
    engine_cache_info,
    engine_for,
)
from repro.finn.graph import MultiThresholdNode
from repro.finn.streamline import streamline
from repro.quant.export import ActQuantExport, LayerExport, QNNExport
from repro.soc.accelerator import MemoryMappedAccelerator

#: (in, hidden..., classes) used by the synthetic sweep; the prime-ish
#: input width forces a PadNode (pad_multiple=8), so pad folding is
#: exercised everywhere.
WIDTHS = (10, 9, 5, 3)


def synthetic_export(
    rng: np.random.Generator,
    weight_bits: int,
    act_bits: int,
    scale_mode: str,
    widths=WIDTHS,
    input_bits: int = 6,
) -> QNNExport:
    """A random but structurally valid QNN export (no training needed)."""

    def scale(lo: int = -5, hi: int = 2) -> float:
        if scale_mode == "po2":
            return float(2.0 ** rng.integers(lo, hi))
        return float(rng.uniform(0.02, 0.4))

    wmax = max(2 ** (weight_bits - 1) - 1, 1)
    layers = []
    for position in range(len(widths) - 1):
        in_features, out_features = widths[position], widths[position + 1]
        last = position == len(widths) - 2
        layers.append(
            LayerExport(
                name=f"fc{position}",
                weight_int=rng.integers(-wmax, wmax + 1, (out_features, in_features)).astype(np.int64),
                weight_scale=np.asarray(scale()),
                bias=rng.normal(0.0, 0.5, out_features),
                weight_bits=weight_bits,
                activation=None
                if last
                else ActQuantExport(bit_width=act_bits, signed=False, narrow_range=False, scale=scale(-4, 2)),
            )
        )
    return QNNExport(
        input_quant=ActQuantExport(bit_width=input_bits, signed=False, narrow_range=False, scale=scale()),
        layers=layers,
    )


def random_features(rng: np.random.Generator, export: QNNExport, batch: int) -> np.ndarray:
    """Raw features spanning the quantiser's range, clip regions included."""
    span = export.input_quant.scale * export.input_quant.num_levels
    return rng.uniform(-0.25 * span, 1.25 * span, (batch, export.layers[0].in_features))


class TestBitExactnessSweep:
    """Engine vs graph across the bit-width grid, both scale modes."""

    @pytest.mark.parametrize("scale_mode", ["po2", "float"])
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_labels_and_logits_match_graph(self, bits, scale_mode):
        rng = np.random.default_rng(1000 * bits + (scale_mode == "float"))
        export = synthetic_export(rng, weight_bits=bits, act_bits=bits, scale_mode=scale_mode)
        graph = streamline(build_frontend_graph(export))
        engine = compile_engine(graph, input_quant=export.input_quant)
        logits_graph = streamline(build_frontend_graph(export, with_argmax=False))
        logits_engine = compile_engine(logits_graph, input_quant=export.input_quant)

        for batch in (1, 2, 33):
            x_int = quantize_input(export, random_features(rng, export, batch))
            expected = graph.execute(x_int).reshape(-1).astype(np.int64)
            np.testing.assert_array_equal(engine.run_quantized(x_int), expected)
            np.testing.assert_array_equal(
                logits_engine.logits_quantized(x_int), logits_graph.execute(x_int)
            )

    @pytest.mark.parametrize("kernel", ["stepped", "searchsorted"])
    def test_both_threshold_kernels_exact(self, kernel):
        rng = np.random.default_rng(7)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="po2")
        graph = streamline(build_frontend_graph(export))
        engine = compile_engine(graph, input_quant=export.input_quant, threshold_kernel=kernel)
        assert set(engine.threshold_kernels) == {kernel}
        x_int = quantize_input(export, random_features(rng, export, 64))
        np.testing.assert_array_equal(
            engine.run_quantized(x_int), graph.execute(x_int).reshape(-1)
        )

    def test_kernel_auto_crossover(self):
        rng = np.random.default_rng(8)
        narrow = synthetic_export(rng, weight_bits=2, act_bits=4, scale_mode="po2")
        wide = synthetic_export(rng, weight_bits=2, act_bits=8, scale_mode="po2")
        narrow_engine = compile_engine(streamline(build_frontend_graph(narrow)))
        wide_engine = compile_engine(streamline(build_frontend_graph(wide)))
        assert 2**4 - 1 <= STEPPED_KERNEL_MAX_STEPS < 2**8 - 1
        assert set(narrow_engine.threshold_kernels) == {"stepped"}
        assert set(wide_engine.threshold_kernels) == {"searchsorted"}

    @pytest.mark.parametrize("dtype", ["float64", "int64"])
    def test_wider_compute_dtypes_exact(self, dtype):
        """Force the wider exact paths a small net never needs naturally."""
        rng = np.random.default_rng(9)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="float")
        graph = streamline(build_frontend_graph(export))
        engine = compile_engine(graph, input_quant=export.input_quant, compute_dtype=dtype)
        assert set(engine.compute_dtypes) == {dtype}
        x_int = quantize_input(export, random_features(rng, export, 50))
        np.testing.assert_array_equal(
            engine.run_quantized(x_int), graph.execute(x_int).reshape(-1)
        )

    def test_chunked_stream_path_matches_whole_batch(self):
        rng = np.random.default_rng(10)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="po2")
        graph = streamline(build_frontend_graph(export))
        whole = compile_engine(graph, input_quant=export.input_quant, chunk_size=4096)
        chunked = compile_engine(graph, input_quant=export.input_quant, chunk_size=7)
        features = random_features(rng, export, 61)  # not a chunk multiple
        np.testing.assert_array_equal(chunked.predict(features), whole.predict(features))
        np.testing.assert_array_equal(
            whole.predict(features), graph.execute(quantize_input(export, features)).reshape(-1)
        )

    @pytest.mark.parametrize("kernel", ["stepped", "searchsorted"])
    def test_nan_inputs_match_graph(self, kernel):
        """Garbage in, *identical* garbage out: NaN rows follow the
        graph's IEEE semantics (``NaN >= t`` is False -> 0 steps) on
        both threshold kernels."""
        rng = np.random.default_rng(16)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="po2")
        graph = streamline(build_frontend_graph(export))
        engine = compile_engine(graph, input_quant=export.input_quant, threshold_kernel=kernel)
        x_int = quantize_input(export, random_features(rng, export, 8))
        x_int[2, :] = np.nan
        x_int[5, 0] = np.nan
        np.testing.assert_array_equal(
            engine.run_quantized(x_int), graph.execute(x_int).reshape(-1)
        )

    def test_int64_path_rejects_nan(self):
        """The integer lane cannot cast NaN exactly, so it refuses it
        (the float lanes reproduce the graph's NaN semantics instead)."""
        from repro.errors import ShapeError

        rng = np.random.default_rng(19)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="po2")
        graph = streamline(build_frontend_graph(export))
        engine = compile_engine(graph, input_quant=export.input_quant, compute_dtype="int64")
        x_int = quantize_input(export, random_features(rng, export, 4))
        x_int[1, 0] = np.nan
        with pytest.raises(ShapeError, match="non-finite"):
            engine.run_quantized(x_int)
        raw = random_features(rng, export, 4)
        raw[2, 1] = np.nan
        with pytest.raises(ShapeError, match="non-finite"):
            engine.predict(raw)

    def test_canonical_weights_are_compact_integers(self):
        rng = np.random.default_rng(17)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="po2")
        graph = streamline(build_frontend_graph(export))
        engine = compile_engine(graph, input_quant=export.input_quant)
        for weight, width_in, width_out in zip(engine.canonical_weights, WIDTHS, WIDTHS[1:]):
            assert weight.dtype == np.int8  # 4-bit weights pack into int8
            assert weight.shape == (width_out, width_in)  # pads sliced off

    def test_extreme_integer_inputs(self):
        """Quantiser rails (all-min / all-max inputs) stay exact."""
        rng = np.random.default_rng(11)
        export = synthetic_export(rng, weight_bits=8, act_bits=8, scale_mode="float")
        graph = streamline(build_frontend_graph(export))
        engine = compile_engine(graph, input_quant=export.input_quant)
        levels = 2 ** export.input_quant.bit_width - 1
        rails = np.array(
            [np.zeros(WIDTHS[0]), np.full(WIDTHS[0], levels), np.arange(WIDTHS[0]) % (levels + 1)],
            dtype=np.float64,
        )
        np.testing.assert_array_equal(
            engine.run_quantized(rails), graph.execute(rails).reshape(-1)
        )


class TestCompileValidation:
    def test_frontend_graph_rejected(self):
        rng = np.random.default_rng(12)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="po2")
        with pytest.raises(CompileError, match="streamline"):
            compile_engine(build_frontend_graph(export))

    def test_too_narrow_forced_dtype_rejected(self):
        # 8-bit weights against 16-bit inputs push |acc| past 2**24,
        # so float32 SGEMM can no longer be exact and must be refused.
        rng = np.random.default_rng(13)
        export = synthetic_export(rng, weight_bits=8, act_bits=4, scale_mode="float", input_bits=16)
        graph = streamline(build_frontend_graph(export))
        with pytest.raises(CompileError, match="exactly"):
            compile_engine(graph, compute_dtype="float32")

    def test_out_of_domain_quantized_inputs_rejected(self):
        """Compiled thresholds are clipped to in-range accumulator
        bounds, so out-of-domain integers must raise, not silently
        diverge from the graph."""
        from repro.errors import ShapeError

        rng = np.random.default_rng(18)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="po2")
        graph = streamline(build_frontend_graph(export))
        engine = compile_engine(graph, input_quant=export.input_quant)
        high = graph.input_info.dtype.max
        with pytest.raises(ShapeError, match="input domain"):
            engine.run_quantized(np.full((1, WIDTHS[0]), high + 1, dtype=np.float64))
        with pytest.raises(ShapeError, match="input domain"):
            engine.logits_quantized(np.full((1, WIDTHS[0]), -1.0))

    def test_invalid_options_rejected(self):
        rng = np.random.default_rng(14)
        graph = streamline(
            build_frontend_graph(synthetic_export(rng, 4, 4, "po2"))
        )
        with pytest.raises(CompileError):
            compile_engine(graph, chunk_size=0)
        with pytest.raises(CompileError):
            compile_engine(graph, threshold_kernel="binary")
        with pytest.raises(CompileError):
            compile_engine(graph, compute_dtype="int8")

    def test_self_check_catches_corruption(self):
        rng = np.random.default_rng(15)
        export = synthetic_export(rng, weight_bits=4, act_bits=4, scale_mode="po2")
        graph = streamline(build_frontend_graph(export, with_argmax=False))
        engine = compile_engine(graph, input_quant=export.input_quant)
        # Corrupt the *graph* after compilation: the engine's frozen
        # plan (clipped threshold copies) no longer matches, so the
        # self-check that guards every compile must flag the divergence.
        threshold = graph.nodes_of_type(MultiThresholdNode)[0]
        threshold.thresholds[:, :] = threshold.thresholds + 10_000
        with pytest.raises(VerificationError, match="diverges"):
            from repro.finn.compiled import _self_check

            _self_check(engine, graph, samples=32, name="corrupted")


class TestDeployedModel:
    """The acceptance gate: the shipped W4A4 detector, end to end."""

    def test_engine_matches_ip_run(self, dos_ip, rng):
        engine = engine_for(dos_ip)
        features = rng.random((513, dos_ip.export.input_features))
        np.testing.assert_array_equal(engine.predict(features), dos_ip.run(features))

    def test_engine_matches_graph_on_capture_features(self, dos_ip, trained_dos):
        engine = engine_for(dos_ip)
        X = trained_dos.splits.x_test[:2000]
        np.testing.assert_array_equal(engine.predict(X), dos_ip.run(X))

    def test_logits_match(self, dos_ip, rng):
        engine = engine_for(dos_ip)
        features = rng.random((64, dos_ip.export.input_features))
        np.testing.assert_array_equal(engine.logits(features), dos_ip.logits(features))

    def test_run_batch_default_path_is_compiled_and_exact(self, dos_ip, rng):
        accel = MemoryMappedAccelerator(dos_ip)
        features = rng.random((256, dos_ip.export.input_features))
        np.testing.assert_array_equal(
            accel.run_batch(features), accel.run_batch(features, compiled=False)
        )

    def test_engine_cached_per_export(self, dos_ip):
        before = engine_cache_info()
        first = engine_for(dos_ip)
        second = engine_for(dos_ip)
        third = MemoryMappedAccelerator(dos_ip), engine_for(dos_ip)
        assert first is second is third[1]
        after = engine_cache_info()
        assert after.hits >= before.hits + 2
        assert after.size >= 1

    def test_summary_describes_pipeline(self, dos_ip):
        text = engine_for(dos_ip).summary()
        assert "CompiledEngine" in text and "chunk=" in text
