"""Tests for published tables and the reduced baseline implementations."""

import numpy as np
import pytest

from repro.baselines.common import evaluate_baseline, id_grid_windows
from repro.baselines.dcnn import DCNNBaseline, build_dcnn
from repro.baselines.mth import DecisionTree, MTHBaseline, RandomForest
from repro.baselines.published import (
    PAPER_QMLP_ACCURACY,
    PAPER_QMLP_LATENCY,
    PUBLISHED_ACCURACY,
    PUBLISHED_LATENCY,
)
from repro.baselines.recurrent import GRUBaseline, GRUCell, LSTMBaseline, LSTMCell
from repro.baselines.tcan import TCANBaseline
from repro.datasets.features import BitFeatureEncoder, WindowFeatureEncoder
from repro.errors import DatasetError, TrainingError


class TestPublishedTables:
    def test_table1_five_models_per_attack(self):
        for attack in ("dos", "fuzzy"):
            rows = [r for r in PUBLISHED_ACCURACY if r.attack == attack]
            assert {r.model for r in rows} == {"DCNN", "MLIDS", "NovelADS", "TCAN-IDS", "GRU"}

    def test_paper_qmlp_rows_match_paper(self):
        dos = PAPER_QMLP_ACCURACY["dos"]
        assert (dos.precision, dos.recall, dos.f1, dos.fnr) == (99.99, 99.99, 99.99, 0.01)
        fuzzy = PAPER_QMLP_ACCURACY["fuzzy"]
        assert (fuzzy.precision, fuzzy.recall, fuzzy.f1, fuzzy.fnr) == (99.68, 99.93, 99.80, 0.07)

    def test_table2_rows_and_platforms(self):
        models = {r.model: r for r in PUBLISHED_LATENCY}
        assert models["MTH-IDS"].latency_ms == 0.574
        assert models["MTH-IDS"].platform == "Raspberry Pi 3"
        assert models["GRU"].frames == "5000 CAN frames"

    def test_per_frame_normalisation(self):
        gru = next(r for r in PUBLISHED_LATENCY if r.model == "GRU")
        assert gru.per_frame_ms == pytest.approx(890.0 / 5000)
        mth = next(r for r in PUBLISHED_LATENCY if r.model == "MTH-IDS")
        assert mth.per_frame_ms == pytest.approx(0.574)

    def test_paper_latency_headline(self):
        assert PAPER_QMLP_LATENCY.latency_ms == 0.12
        mth = next(r for r in PUBLISHED_LATENCY if r.model == "MTH-IDS")
        assert mth.latency_ms / PAPER_QMLP_LATENCY.latency_ms == pytest.approx(4.78, abs=0.05)


def _separable(rng, n=600, f=10):
    X = rng.random((n, f))
    y = (X[:, 0] > 0.5).astype(int)
    return X, y


class TestDecisionTree:
    def test_learns_threshold_rule(self, rng):
        X, y = _separable(rng)
        tree = DecisionTree(max_depth=3)
        tree.fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.99

    def test_depth_cap_respected(self, rng):
        X = rng.random((400, 5))
        y = rng.integers(0, 2, size=400)
        tree = DecisionTree(max_depth=3)
        tree.fit(X, y)
        assert tree.depth() <= 3

    def test_pure_node_becomes_leaf(self):
        X = np.array([[0.0], [1.0]])
        tree = DecisionTree()
        tree.fit(X, np.array([1, 1]))
        assert tree.depth() == 0

    def test_predict_before_fit(self):
        with pytest.raises(TrainingError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_probabilities_sum_to_one(self, rng):
        X, y = _separable(rng)
        tree = DecisionTree(max_depth=4)
        tree.fit(X, y)
        probs = tree.predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_deterministic(self, rng):
        X, y = _separable(rng)
        t1, t2 = DecisionTree(seed=3), DecisionTree(seed=3)
        t1.fit(X, y)
        t2.fit(X, y)
        np.testing.assert_array_equal(t1.predict(X), t2.predict(X))

    def test_bad_shapes_rejected(self):
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.zeros(5), np.zeros(5))


class TestForestAndMTH:
    def test_forest_learns(self, rng):
        X, y = _separable(rng)
        forest = RandomForest(n_estimators=5, max_depth=4, seed=1)
        forest.fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.98

    def test_mth_ensemble_learns(self, rng):
        X, y = _separable(rng)
        mth = MTHBaseline(seed=1)
        mth.fit(X, y)
        assert (mth.predict(X) == y).mean() > 0.98

    def test_mth_predict_before_fit(self):
        with pytest.raises(TrainingError):
            MTHBaseline().predict(np.zeros((1, 2)))

    def test_mth_on_dos_bits(self, dos_capture):
        X, y = BitFeatureEncoder().encode(dos_capture.records[:3000])
        result = evaluate_baseline(MTHBaseline(seed=1), X, y, "dos", seed=1)
        assert result.metrics["f1"] > 99.0  # DoS is separable on the ID bits


class TestIdGridWindows:
    def test_shapes_and_labels(self, dos_capture):
        X, y = id_grid_windows(dos_capture.records[:200], window=29)
        assert X.shape == (172, 1, 32, 16)
        assert set(np.unique(X)) <= {0.0, 1.0}
        assert set(np.unique(y)) <= {0, 1}

    def test_block_label_any_attack(self, dos_capture):
        records = dos_capture.records[:200]
        X, y = id_grid_windows(records, window=29)
        flags = np.array([r.is_attack for r in records])
        for i in range(len(y)):
            assert y[i] == int(flags[i : i + 29].any())

    def test_too_few_frames(self, dos_capture):
        with pytest.raises(DatasetError):
            id_grid_windows(dos_capture.records[:10], window=29)

    def test_pad_too_small(self, dos_capture):
        with pytest.raises(DatasetError):
            id_grid_windows(dos_capture.records[:100], window=29, pad_to=(16, 16))


class TestNeuralBaselines:
    def test_dcnn_structure(self):
        model = build_dcnn((32, 16), seed=1)
        from repro.autograd.tensor import Tensor

        out = model(Tensor(np.zeros((2, 1, 32, 16))))
        assert out.shape == (2, 2)

    def test_dcnn_learns_dos_grids(self, dos_capture):
        X, y = id_grid_windows(dos_capture.records[:1500], window=29)
        result = evaluate_baseline(DCNNBaseline(epochs=2, seed=1), X, y, "dos", seed=1)
        assert result.metrics["f1"] > 95.0

    def test_gru_cell_shapes(self, rng):
        from repro.autograd.tensor import Tensor

        cell = GRUCell(8, 16, seed=1)
        h = cell(Tensor(rng.random((4, 8))), Tensor(np.zeros((4, 16))))
        assert h.shape == (4, 16)
        assert np.abs(h.data).max() <= 1.0  # tanh/sigmoid bounded

    def test_lstm_cell_shapes(self, rng):
        from repro.autograd.tensor import Tensor

        cell = LSTMCell(8, 16, seed=1)
        h, c = cell(Tensor(rng.random((4, 8))), Tensor(np.zeros((4, 16))), Tensor(np.zeros((4, 16))))
        assert h.shape == (4, 16) and c.shape == (4, 16)

    @pytest.mark.parametrize("baseline_cls", [GRUBaseline, LSTMBaseline, TCANBaseline])
    def test_sequence_baselines_learn_dos(self, baseline_cls, dos_capture):
        enc = WindowFeatureEncoder(BitFeatureEncoder(), window=3)
        X, y = enc.encode_sequences(dos_capture.records[:2500])
        baseline = baseline_cls(input_size=X.shape[2], epochs=4, seed=1)
        result = evaluate_baseline(baseline, X, y, "dos", seed=1)
        assert result.metrics["f1"] > 88.0

    def test_baseline_result_summary(self, dos_capture):
        X, y = BitFeatureEncoder().encode(dos_capture.records[:1000])
        result = evaluate_baseline(MTHBaseline(seed=1), X, y, "dos", seed=1)
        assert "MTH" in result.summary() and "F1" in result.summary()
