"""Spoofing-attack detectors (gear/RPM) — the dataset's other attacks.

The paper deploys DoS and Fuzzy detectors; the Car-Hacking dataset also
contains gear/RPM spoofing captures, and the paper's framework claims
to extend to them ("multiple models ... for a comprehensive IDS
integration").  These tests prove the pipeline covers that extension:
spoofing is the hardest per-frame task (legitimate identifier, only the
payload is wrong), and the QMLP still learns it from payload bits.
"""

import numpy as np
import pytest

from repro.datasets.carhacking import generate_capture
from repro.datasets.features import BitFeatureEncoder
from repro.finn.ipgen import compile_model
from repro.models.qmlp import QMLPConfig
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig


@pytest.fixture(scope="module", params=["rpm", "gear"])
def spoof_result(request):
    capture = generate_capture(
        request.param, duration=4.0, seed=500,
        initial_gap=0.2, attack_burst=1.2, attack_gap=0.8,
    )
    return train_ids_model(
        request.param,
        model_config=QMLPConfig(hidden=(32, 16), seed=5),
        train_config=TrainConfig(epochs=8, seed=5),
        capture=capture,
        seed=17,
    )


class TestSpoofingDetectors:
    def test_detector_learns_spoofing(self, spoof_result):
        # Spoofed frames reuse a legitimate identifier; detection relies
        # on payload structure alone, so the bar is lower than DoS/Fuzzy.
        assert spoof_result.metrics["f1"] > 97.0
        assert spoof_result.metrics["fnr"] < 3.0

    def test_spoofing_harder_than_dos(self, spoof_result, trained_dos):
        assert spoof_result.metrics["f1"] <= trained_dos.metrics["f1"] + 1e-9

    def test_spoof_detector_compiles_bit_exact(self, spoof_result):
        ip = compile_model(spoof_result.model, name=f"{spoof_result.attack}-ids")
        assert ip.verification is not None and ip.verification.exact

    def test_only_target_id_attacked(self, spoof_result):
        target = 0x316 if spoof_result.attack == "rpm" else 0x43F
        attack_ids = {r.can_id for r in spoof_result.capture.records if r.is_attack}
        assert attack_ids == {target}

    def test_detector_flags_spoofed_payloads_not_id(self, spoof_result):
        """On the target identifier alone, the model separates real vs forged."""
        target = 0x316 if spoof_result.attack == "rpm" else 0x43F
        records = [r for r in spoof_result.capture.records if r.can_id == target]
        features, labels = BitFeatureEncoder().encode(records)
        from repro.training.trainer import Trainer

        predictions = Trainer.predict(spoof_result.model, features)
        # Same identifier for every frame: any separation is payload based.
        accuracy = float((predictions == labels).mean())
        assert accuracy > 0.95
