"""Tests for the extension features: mixed captures and checkpoints."""

import numpy as np
import pytest

from repro.datasets.carhacking import generate_mixed_capture
from repro.datasets.features import BitFeatureEncoder
from repro.errors import ConfigError, DatasetError
from repro.finn.ipgen import compile_model
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.metrics import ids_metrics
from repro.training.trainer import Trainer
from repro.utils.serialization import from_json_file, to_json_file


class TestMixedCapture:
    @pytest.fixture(scope="class")
    def mixed(self):
        return generate_mixed_capture(
            ("dos", "fuzzy"), duration=4.0, seed=1234,
            attack_burst=0.8, attack_gap=0.6, initial_gap=0.3,
        )

    def test_both_attack_types_present(self, mixed):
        attack_ids = {r.can_id for r in mixed.records if r.is_attack}
        assert 0x000 in attack_ids  # DoS bursts
        assert len(attack_ids) > 50  # fuzzy bursts randomise ids

    def test_windows_alternate_attackers(self, mixed):
        """Every window contains exactly one attack mechanism."""
        for index, (start, end) in enumerate(mixed.attack_windows):
            ids = {
                r.can_id
                for r in mixed.records
                if r.is_attack and start <= r.timestamp <= end
            }
            if not ids:
                continue
            if index % 2 == 0:  # dos windows
                assert ids == {0x000}
            else:  # fuzzy windows
                assert ids != {0x000}

    def test_attack_label(self, mixed):
        assert mixed.attack == "dos+fuzzy"

    def test_validation(self):
        with pytest.raises(DatasetError):
            generate_mixed_capture(("dos", "nope"), duration=1.0)
        with pytest.raises(DatasetError):
            generate_mixed_capture((), duration=1.0)

    def test_comprehensive_ids_coverage(self, mixed, trained_dos, trained_fuzzy):
        """Paper's 'comprehensive IDS': OR of both detectors covers both attacks."""
        features, labels = BitFeatureEncoder().encode(mixed.records)
        dos_pred = Trainer.predict(trained_dos.model, features)
        fuzzy_pred = Trainer.predict(trained_fuzzy.model, features)
        combined = np.maximum(dos_pred, fuzzy_pred)
        metrics = ids_metrics(labels, combined)
        assert metrics["recall"] > 95.0
        # Each single detector misses the other attack's bursts.
        dos_only = ids_metrics(labels, dos_pred)
        assert dos_only["recall"] < metrics["recall"]


class TestCheckpoint:
    def test_roundtrip_predictions_identical(self, trained_dos, tiny_model_config, tmp_path):
        path = save_checkpoint(
            trained_dos.model, tiny_model_config, tmp_path / "dos.json",
            attack="dos", metrics=trained_dos.metrics,
        )
        model, config, provenance = load_checkpoint(path)
        assert config == tiny_model_config
        assert provenance["attack"] == "dos"
        assert provenance["metrics"]["f1"] == trained_dos.metrics["f1"]
        X = trained_dos.splits.x_test[:400]
        np.testing.assert_array_equal(
            Trainer.predict(model, X), Trainer.predict(trained_dos.model, X)
        )

    def test_compiled_ip_identical_after_reload(self, trained_dos, tiny_model_config, tmp_path, rng):
        path = save_checkpoint(trained_dos.model, tiny_model_config, tmp_path / "dos.json")
        model, _, _ = load_checkpoint(path)
        ip_original = compile_model(trained_dos.model, name="orig", verify=False)
        ip_reloaded = compile_model(model, name="reload", verify=False)
        X = rng.random((64, 79))
        np.testing.assert_array_equal(ip_original.run(X), ip_reloaded.run(X))
        assert ip_original.resources.lut == ip_reloaded.resources.lut

    def test_version_check(self, trained_dos, tiny_model_config, tmp_path):
        path = save_checkpoint(trained_dos.model, tiny_model_config, tmp_path / "dos.json")
        payload = from_json_file(path)
        payload["format_version"] = 999
        to_json_file(payload, path)
        with pytest.raises(ConfigError):
            load_checkpoint(path)
