"""Tests for the accelerator wrapper, latency/power models, ECU, overlay."""

import numpy as np
import pytest

from repro.datasets.features import BitFeatureEncoder
from repro.errors import ConfigError, SoCError
from repro.soc.accelerator import MemoryMappedAccelerator
from repro.soc.axi import AXILiteBus
from repro.soc.driver import Overlay
from repro.soc.ecu import IDSEnabledECU
from repro.soc.latency import DEFAULT_SEGMENTS, LatencyModel
from repro.soc.platforms import A6000, PLATFORMS, ZYNQ_ULTRASCALE
from repro.soc.power import PMBusSampler, PowerModel, energy_per_inference


class TestMemoryMappedAccelerator:
    def test_infer_matches_functional(self, dos_ip, trained_dos):
        accel = MemoryMappedAccelerator(dos_ip)
        features = trained_dos.splits.x_test[0]
        label, trace = accel.infer(features)
        assert label == int(dos_ip.run(features[None, :])[0])

    def test_trace_accounts_transactions(self, dos_ip):
        accel = MemoryMappedAccelerator(dos_ip)
        _, trace = accel.infer(np.zeros(79))
        assert trace.mmio_writes == dos_ip.register_map.input_words + 1  # inputs + start
        assert trace.mmio_reads >= 2  # polls + result
        assert trace.total_seconds > trace.compute_seconds

    def test_trace_is_data_independent(self, dos_ip, rng):
        accel = MemoryMappedAccelerator(dos_ip)
        _, t1 = accel.infer(rng.random(79))
        _, t2 = accel.infer(rng.random(79))
        assert t1.total_seconds == pytest.approx(t2.total_seconds, rel=1e-9)

    def test_batch_infer_rejected(self, dos_ip):
        accel = MemoryMappedAccelerator(dos_ip)
        with pytest.raises(SoCError):
            accel.infer(np.zeros((2, 79)))

    def test_shared_bus_two_ips(self, dos_ip):
        bus = AXILiteBus()
        a = MemoryMappedAccelerator(dos_ip, bus=bus, base_address=0xA000_0000)
        b = MemoryMappedAccelerator(dos_ip, bus=bus, base_address=0xA001_0000)
        a.infer(np.zeros(79))
        b.infer(np.zeros(79))
        assert bus.transactions > 2 * dos_ip.register_map.input_words


class TestLatencyModel:
    def test_nominal_near_paper(self, dos_ip):
        trace = MemoryMappedAccelerator(dos_ip).reference_trace()
        breakdown = LatencyModel().end_to_end(trace)
        assert 0.08e-3 < breakdown.total_seconds < 0.15e-3  # ~0.12 ms envelope

    def test_dominant_segment_is_software(self, dos_ip):
        trace = MemoryMappedAccelerator(dos_ip).reference_trace()
        breakdown = LatencyModel().end_to_end(trace)
        assert breakdown.dominant() == "can_rx_path"

    def test_segments_sum(self, dos_ip):
        trace = MemoryMappedAccelerator(dos_ip).reference_trace()
        breakdown = LatencyModel().end_to_end(trace)
        assert breakdown.total_seconds == pytest.approx(sum(breakdown.segments.values()))

    def test_jitter_right_skewed(self, dos_ip, rng):
        trace = MemoryMappedAccelerator(dos_ip).reference_trace()
        model = LatencyModel()
        draws = model.sample(trace, 5000, rng)
        nominal = model.end_to_end(trace).total_seconds
        assert np.percentile(draws, 99) > nominal
        assert draws.min() > 0.5 * nominal

    def test_sample_count_validated(self, dos_ip, rng):
        trace = MemoryMappedAccelerator(dos_ip).reference_trace()
        with pytest.raises(SoCError):
            LatencyModel().sample(trace, 0, rng)

    def test_throughput_inverse_of_latency(self, dos_ip):
        trace = MemoryMappedAccelerator(dos_ip).reference_trace()
        model = LatencyModel()
        assert model.throughput_fps(trace) == pytest.approx(
            1.0 / model.end_to_end(trace).total_seconds
        )

    def test_default_segments_documented(self):
        assert set(DEFAULT_SEGMENTS) == {
            "can_rx_path", "task_dispatch", "fifo_copy", "feature_encode", "decision",
        }


class TestPowerModel:
    def test_calibrated_operating_point(self, dos_ip):
        power = PowerModel().total_w(dos_ip.resources, dos_ip.clock_hz)
        assert 1.9 < power < 2.2  # the paper's 2.09 W envelope

    def test_dynamic_power_scales_with_design(self, dos_ip):
        model = PowerModel()
        one = model.total_w(dos_ip.resources, dos_ip.clock_hz, instances=1)
        two = model.total_w(dos_ip.resources, dos_ip.clock_hz, instances=2)
        assert two > one
        assert two - one == pytest.approx(model.pl_dynamic_w(dos_ip.resources, dos_ip.clock_hz))

    def test_dynamic_power_scales_with_clock(self, dos_ip):
        model = PowerModel()
        assert model.pl_dynamic_w(dos_ip.resources, 200e6) == pytest.approx(
            2 * model.pl_dynamic_w(dos_ip.resources, 100e6)
        )

    def test_energy_per_inference_matches_paper_formula(self):
        assert energy_per_inference(2.09, 0.12e-3) == pytest.approx(0.2508e-3)

    def test_energy_validation(self):
        with pytest.raises(SoCError):
            energy_per_inference(0.0, 1.0)

    def test_pmbus_measurement_noise(self, dos_ip, rng):
        sampler = PMBusSampler()
        report = sampler.measure(1.0, rng, resources=dos_ip.resources, clock_hz=dos_ip.clock_hz)
        truth = PowerModel().total_w(dos_ip.resources, dos_ip.clock_hz)
        assert report.mean_w == pytest.approx(truth, rel=0.02)
        assert report.std_w > 0
        assert report.num_samples == 200

    def test_pmbus_duration_validated(self, rng):
        with pytest.raises(SoCError):
            PMBusSampler().measure(0.0, rng)


class TestPlatforms:
    def test_a6000_energy_is_papers(self):
        assert A6000.energy_per_inference() == pytest.approx(9.12)

    def test_zynq_energy_is_papers(self):
        assert ZYNQ_ULTRASCALE.energy_per_inference() == pytest.approx(0.25e-3, rel=0.01)

    def test_energy_requires_latency(self):
        from repro.soc.platforms import GTX_TITAN_X

        with pytest.raises(ConfigError):
            GTX_TITAN_X.energy_per_inference()
        assert GTX_TITAN_X.energy_per_inference(0.275) == pytest.approx(0.275 * 250)

    def test_registry_covers_table2_platforms(self):
        names = {p.name for p in PLATFORMS.values()}
        for expected in ("Jetson Xavier NX", "Tesla K80", "Raspberry Pi 3"):
            assert expected in names


class TestECU:
    def test_process_capture_report(self, dos_ip, dos_capture):
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        report = ecu.process_capture(dos_capture.records[:2000])
        assert report.num_frames == 2000
        assert report.metrics["f1"] > 99.0
        assert 0.05e-3 < report.mean_latency_s < 0.2e-3
        assert 1.9 < report.mean_power_w < 2.3
        assert report.energy_per_inference_j < 1e-3

    def test_alerts_are_attack_indices(self, dos_ip, dos_capture):
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        report = ecu.process_capture(dos_capture.records[:2000])
        assert set(report.alerts) == set(np.flatnonzero(report.predictions == 1).tolist())

    def test_classify_single_frame(self, dos_ip, dos_capture):
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        label, breakdown = ecu.classify_frame(dos_capture.records[0])
        assert label in (0, 1)
        assert breakdown.total_seconds > 0

    def test_empty_capture_rejected(self, dos_ip):
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder())
        with pytest.raises(SoCError):
            ecu.process_capture([])

    def test_summary_text(self, dos_ip, dos_capture):
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        report = ecu.process_capture(dos_capture.records[:500])
        text = report.summary()
        assert "latency" in text and "energy" in text


class TestOverlay:
    def test_ip_lookup_and_classify(self, dos_ip, dos_capture):
        overlay = Overlay({"dos_ids": dos_ip})
        features = BitFeatureEncoder().encode_frame(dos_capture.records[0])
        assert overlay.dos_ids.classify(features) in (0, 1)

    def test_ip_dict_metadata(self, dos_ip):
        overlay = Overlay({"dos_ids": dos_ip})
        meta = overlay.ip_dict["dos_ids"]
        assert meta["type"] == "finn-ids-accelerator"
        assert meta["phys_addr"] == 0xA000_0000

    def test_unknown_ip_attribute(self, dos_ip):
        overlay = Overlay({"dos_ids": dos_ip})
        with pytest.raises(AttributeError):
            overlay.fuzzy_ids

    def test_invalid_name_rejected(self, dos_ip):
        with pytest.raises(SoCError):
            Overlay({"not an identifier": dos_ip})

    def test_empty_overlay_rejected(self):
        with pytest.raises(SoCError):
            Overlay({})

    def test_two_ips_distinct_addresses(self, dos_ip):
        overlay = Overlay({"a": dos_ip, "b": dos_ip})
        assert overlay.ip_dict["a"]["phys_addr"] != overlay.ip_dict["b"]["phys_addr"]
