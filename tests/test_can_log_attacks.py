"""Tests for capture records, CSV I/O and the remaining attack types."""

import numpy as np
import pytest

from repro.can.attacks import ReplayAttacker, SpoofingAttacker
from repro.can.frame import CANFrame
from repro.can.log import (
    CANLogRecord,
    read_car_hacking_csv,
    write_car_hacking_csv,
)
from repro.errors import CANError, DatasetError


class TestCANLogRecord:
    def test_label_validated(self):
        with pytest.raises(DatasetError):
            CANLogRecord(0.0, 0x1, 1, b"\x00", "X")

    def test_dlc_consistency(self):
        with pytest.raises(DatasetError):
            CANLogRecord(0.0, 0x1, 2, b"\x00", "R")

    def test_is_attack(self):
        assert CANLogRecord(0.0, 0x1, 0, b"", "T").is_attack
        assert not CANLogRecord(0.0, 0x1, 0, b"", "R").is_attack

    def test_to_frame(self):
        record = CANLogRecord(0.0, 0x316, 8, bytes(range(8)), "R")
        frame = record.to_frame()
        assert frame.can_id == 0x316 and frame.data == bytes(range(8))


class TestCSVIO:
    def _records(self):
        return [
            CANLogRecord(0.000123, 0x316, 8, bytes(range(8)), "R"),
            CANLogRecord(0.000456, 0x000, 8, bytes(8), "T"),
            CANLogRecord(0.000789, 0x43F, 2, b"\x01\x02", "R"),  # short DLC
        ]

    def test_roundtrip_fields(self, tmp_path):
        path = write_car_hacking_csv(self._records(), tmp_path / "cap.csv")
        loaded = read_car_hacking_csv(path)
        assert len(loaded) == 3
        for original, read in zip(self._records(), loaded):
            assert read.can_id == original.can_id
            assert read.data == original.data
            assert read.label == original.label
            assert read.timestamp == pytest.approx(original.timestamp, abs=1e-6)

    def test_variable_dlc_column_count(self, tmp_path):
        path = write_car_hacking_csv(self._records(), tmp_path / "cap.csv")
        rows = path.read_text().strip().splitlines()
        assert len(rows[0].split(",")) == 3 + 8 + 1
        assert len(rows[2].split(",")) == 3 + 2 + 1

    def test_header_row_skipped(self, tmp_path):
        path = tmp_path / "with_header.csv"
        path.write_text("Timestamp,ID,DLC,DATA0,Flag\n1.5,0316,1,aa,R\n")
        (record,) = read_car_hacking_csv(path)
        assert record.can_id == 0x316 and record.data == b"\xaa"

    def test_malformed_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,0316,2,aa,R\n")  # dlc says 2, only one byte
        with pytest.raises(DatasetError, match="bad.csv:1"):
            read_car_hacking_csv(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            read_car_hacking_csv(tmp_path / "nope.csv")

    def test_limit(self, tmp_path):
        path = write_car_hacking_csv(self._records(), tmp_path / "cap.csv")
        assert len(read_car_hacking_csv(path, limit=2)) == 2


class TestSpoofReplay:
    def test_spoofing_targets_one_id(self):
        attacker = SpoofingAttacker(windows=[(0.0, 0.1)], target_id=0x316, seed=1)
        frames = list(attacker.frames(0.1))
        assert frames and all(s.frame.can_id == 0x316 for s in frames)
        assert all(s.label == "T" for s in frames)

    def test_replay_preserves_pacing(self):
        capture = [CANFrame(0x100, bytes(2)), CANFrame(0x200, bytes(2))]
        attacker = ReplayAttacker(capture, offsets=[0.0, 0.005], window=(1.0, 2.0))
        frames = list(attacker.frames(10.0))
        assert [s.release_time for s in frames] == [1.0, 1.005]

    def test_replay_respects_window_end(self):
        capture = [CANFrame(0x100)] * 3
        attacker = ReplayAttacker(capture, offsets=[0.0, 0.5, 5.0], window=(0.0, 1.0))
        assert len(list(attacker.frames(10.0))) == 2

    def test_replay_length_mismatch(self):
        with pytest.raises(CANError):
            ReplayAttacker([CANFrame(0x1)], offsets=[0.0, 1.0], window=(0.0, 1.0))

    def test_replay_accepts_bare_pair_and_windows_alias(self):
        capture = [CANFrame(0x100, bytes(2))]
        legacy = ReplayAttacker(capture, offsets=[0.0], window=(1.0, 2.0))
        bare = ReplayAttacker(capture, offsets=[0.0], windows=(1.0, 2.0))
        listed = ReplayAttacker(capture, offsets=[0.0], windows=[(1.0, 2.0)])
        for attacker in (legacy, bare, listed):
            assert attacker.window == (1.0, 2.0)
            assert [s.release_time for s in attacker.frames(10.0)] == [1.0]
