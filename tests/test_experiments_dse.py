"""Tests for the experiment harnesses and the DSE sweeps (small scale)."""

import numpy as np
import pytest

from repro.dse.bitwidth import BitwidthPoint, select_deployment_point
from repro.dse.foldingsweep import run_folding_sweep
from repro.errors import ConfigError
from repro.experiments.dse_report import DSEResult, render_dse
from repro.experiments.energy import render_energy, run_energy
from repro.experiments.figure1 import render_figure1, run_figure1
from repro.experiments.foldings import render_foldings, run_foldings
from repro.experiments.latency_report import render_latency_report, run_latency_report
from repro.experiments.multimodel import render_multimodel, run_multimodel
from repro.experiments.resources_report import render_resources, run_resources
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.throughput import render_throughput, run_throughput
from repro.quant.export import export_qnn


class TestTable1:
    def test_measured_metrics_high(self, experiment_context):
        result = run_table1(experiment_context)
        assert result.measured["dos"]["f1"] > 99.0
        assert result.measured["fuzzy"]["f1"] > 95.0

    def test_f1_gap_small(self, experiment_context):
        result = run_table1(experiment_context)
        assert abs(result.f1_gap("dos")) < 1.5

    def test_render_contains_all_models(self, experiment_context):
        text = render_table1(run_table1(experiment_context)).render()
        for model in ("DCNN", "MLIDS", "NovelADS", "TCAN-IDS", "GRU", "4-bit-QMLP"):
            assert model in text


class TestTable2:
    def test_measured_latency_envelope(self, experiment_context):
        result = run_table2(experiment_context, eval_frames=800)
        assert 0.05 < result.measured_latency_ms < 0.2
        assert result.p99_latency_ms > result.measured_latency_ms

    def test_beats_all_published_rows(self, experiment_context):
        from repro.baselines.published import PUBLISHED_LATENCY

        result = run_table2(experiment_context, eval_frames=800)
        assert all(result.measured_latency_ms < row.latency_ms for row in PUBLISHED_LATENCY)

    def test_speedup_vs_mth_headline(self, experiment_context):
        """The paper's 4.8x claim over MTH-IDS must hold in shape (>3x)."""
        result = run_table2(experiment_context, eval_frames=800)
        assert result.speedup_vs_mth > 3.0

    def test_render(self, experiment_context):
        text = render_table2(run_table2(experiment_context, eval_frames=400)).render()
        assert "MTH-IDS" in text and "measured" in text


class TestSmallExperiments:
    def test_latency_breakdown(self, experiment_context):
        report = run_latency_report(experiment_context, samples=2000)
        assert report.hw_core_us < 50
        assert report.breakdown.dominant() == "can_rx_path"
        assert "can_rx_path" in render_latency_report(report).render()

    def test_throughput_claims(self, experiment_context):
        result = run_throughput(experiment_context, eval_frames=800)
        assert result.near_line_rate_1m
        assert result.meets_paper_claim
        assert result.hw_core_fps > result.ecu_throughput_fps
        assert "line rate" in render_throughput(result).render()

    def test_energy_operating_point(self, experiment_context):
        result = run_energy(experiment_context, eval_frames=800)
        assert 1.9 < result.mean_power_w < 2.3
        assert 0.1 < result.energy_per_inference_mj < 0.5
        assert result.gpu_energy_j == pytest.approx(9.12)
        assert result.gpu_ratio > 1e4
        assert "PMBus" in render_energy(result).render()

    def test_resources_claim(self, experiment_context):
        result = run_resources(experiment_context)
        assert result.meets_paper_claim
        assert result.instances_fit >= 2  # multi-model claim feasible
        total_lut = sum(est.lut for _, est in result.per_stage)
        assert total_lut == pytest.approx(result.total.lut)
        assert "utilisation" in render_resources(result).render()

    def test_figure1_detects_attacks(self, experiment_context):
        results = run_figure1(experiment_context, eval_frames=1500)
        assert results["dos"].detections > 0
        assert results["dos"].metrics["f1"] > 99.0
        assert results["dos"].mean_detection_delay_ms < 50.0
        assert "dos-ids-ecu" in render_figure1(results).render()

    def test_multimodel_overheads(self, experiment_context):
        result = run_multimodel(experiment_context, eval_frames=800)
        assert result.combined_max_utilization_pct < 10.0
        assert 0 < result.power_overhead_w < 0.3  # "slightly higher"
        assert result.dos_f1 > 99.0
        assert "co-resident" in render_multimodel(result).render()


class TestFoldingSweep:
    def test_staircase(self, trained_dos):
        export = export_qnn(trained_dos.model)
        points = run_folding_sweep(export, targets=(1e4, 1e6))
        assert points[0].resources.lut < points[1].resources.lut
        assert points[0].achieved_fps >= 1e4
        assert points[1].achieved_fps >= 1e6

    def test_foldings_report(self, experiment_context):
        report = run_foldings(experiment_context, targets=(1e5, 1e6))
        assert report.resource_span > 1.0
        assert "Folding sweep" in render_foldings(report).render()

    def test_empty_targets_rejected(self, trained_dos):
        with pytest.raises(ConfigError):
            run_folding_sweep(export_qnn(trained_dos.model), targets=())


class TestBitwidthSelection:
    def _point(self, bits, f1):
        point = BitwidthPoint(bits=bits)
        point.metrics = {"dos": {"f1": f1, "fnr": 0.0}, "fuzzy": {"f1": f1, "fnr": 0.0}}
        return point

    def test_narrowest_within_tolerance_wins(self):
        points = [self._point(2, 97.0), self._point(4, 99.9), self._point(8, 100.0)]
        assert select_deployment_point(points, tolerance=0.25).bits == 4

    def test_strict_tolerance_forces_best(self):
        points = [self._point(4, 99.0), self._point(8, 100.0)]
        assert select_deployment_point(points, tolerance=0.01).bits == 8

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            select_deployment_point([])

    def test_render_dse(self):
        points = [self._point(2, 97.0), self._point(4, 99.9)]
        result = DSEResult(points=points, selected=points[1])
        text = render_dse(result).render()
        assert "W4A4" in text and "<==" in text
        assert result.matches_paper
