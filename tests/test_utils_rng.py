"""Tests for deterministic seed derivation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils.rng import SeedSequence, derive_seed, new_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63_bit(self):
        seed = derive_seed(123456789, "component")
        assert 0 <= seed < 2**63

    def test_rejects_non_int(self):
        with pytest.raises(ConfigError):
            derive_seed("not-an-int", "x")  # type: ignore[arg-type]


class TestNewRng:
    def test_same_stream_same_seed(self):
        a = new_rng(7, "data").random(5)
        b = new_rng(7, "data").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        a = new_rng(7, "data").random(5)
        b = new_rng(7, "weights").random(5)
        assert not np.array_equal(a, b)

    def test_plain_seed_without_name(self):
        a = new_rng(7).random(3)
        b = np.random.default_rng(7).random(3)
        assert np.array_equal(a, b)


class TestSeedSequence:
    def test_scoped_streams_differ_from_root(self):
        seeds = SeedSequence(7)
        child = seeds.child("experiment")
        assert seeds.seed("data") != child.seed("data")

    def test_rng_reproducible(self):
        s1 = SeedSequence(9).rng("a").random(4)
        s2 = SeedSequence(9).rng("a").random(4)
        assert np.array_equal(s1, s2)

    def test_nested_children(self):
        root = SeedSequence(1)
        deep = root.child("x").child("y")
        assert deep.seed("z") == SeedSequence(1).child("x").child("y").seed("z")
