"""Tests for table rendering and JSON serialisation helpers."""

import numpy as np
import pytest

from repro.utils.serialization import from_json_file, to_json_file, to_jsonable
from repro.utils.tables import Table, format_percent, format_si


class TestFormatSI:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (0.00012, "s", "120 us"),
            (2.09, "W", "2.09 W"),
            (0, "J", "0 J"),
            (8300.0, "fps", "8.3 kfps"),
            (0.25e-3, "J", "250 uJ"),
        ],
    )
    def test_known_values(self, value, unit, expected):
        assert format_si(value, unit) == expected

    def test_percent(self):
        assert format_percent(0.9999) == "99.99"


class TestTable:
    def test_render_contains_all_cells(self):
        table = Table(["a", "b"], title="T")
        table.add_row(["x", 1.5])
        text = table.render()
        assert "T" in text and "x" in text and "1.5" in text

    def test_row_width_mismatch_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only-one"])

    def test_markdown_shape(self):
        table = Table(["col1", "col2"])
        table.add_row([1, 2])
        lines = table.render_markdown().splitlines()
        assert lines[0].startswith("| col1")
        assert set(lines[1].replace("|", "")) <= {"-"}

    def test_to_dicts(self):
        table = Table(["k", "v"])
        table.add_row(["a", 1])
        assert table.to_dicts() == [{"k": "a", "v": "1"}]

    def test_alignment_consistent(self):
        table = Table(["name", "value"])
        table.add_row(["longer-name", 1])
        table.add_row(["s", 22])
        header, rule, row1, row2 = table.render().splitlines()
        assert len(header) == len(rule) == len(row1) == len(row2)


class TestSerialization:
    def test_numpy_scalars_and_arrays(self):
        data = {"a": np.int64(3), "b": np.float32(1.5), "c": np.arange(3), "d": np.bool_(True)}
        out = to_jsonable(data)
        assert out == {"a": 3, "b": 1.5, "c": [0, 1, 2], "d": True}

    def test_nested_containers(self):
        out = to_jsonable([{"x": (np.float64(2.0),)}])
        assert out == [{"x": [2.0]}]

    def test_file_roundtrip(self, tmp_path):
        payload = {"metrics": {"f1": 99.99}, "topology": [79, 64, 2]}
        path = to_json_file(payload, tmp_path / "sub" / "result.json")
        assert from_json_file(path) == payload
