"""Gradient correctness of the autograd engine (numerical checks)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, concatenate, no_grad, stack
from repro.errors import GradError, ShapeError


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        hi = fn()
        flat_x[i] = original - eps
        lo = fn()
        flat_x[i] = original
        flat_g[i] = (hi - lo) / (2 * eps)
    return grad


def check_unary(op_name, np_fn, shape=(3, 4), positive=False, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.random(shape) + 0.5 if positive else rng.normal(size=shape)
    x = Tensor(data.copy(), requires_grad=True)
    out = getattr(x, op_name)()
    out.sum().backward()
    expected = numerical_grad(lambda: float(np_fn(x.data).sum()), x.data)
    np.testing.assert_allclose(x.grad, expected, atol=1e-5)


class TestElementwiseGrads:
    def test_exp(self):
        check_unary("exp", np.exp)

    def test_log(self):
        check_unary("log", np.log, positive=True)

    def test_tanh(self):
        check_unary("tanh", np.tanh)

    def test_sigmoid(self):
        check_unary("sigmoid", lambda v: 1 / (1 + np.exp(-v)))

    def test_relu(self):
        check_unary("relu", lambda v: np.maximum(v, 0))

    def test_abs(self):
        check_unary("abs", np.abs)

    def test_sqrt(self):
        check_unary("sqrt", np.sqrt, positive=True)


class TestArithmeticGrads:
    def test_add_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_mul_grads(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_div_grad(self, rng):
        a = Tensor(rng.normal(size=(5,)), requires_grad=True)
        b = Tensor(rng.random(5) + 0.5, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1 / b.data)
        np.testing.assert_allclose(b.grad, -a.data / b.data**2)

    def test_pow_grad(self, rng):
        x = Tensor(rng.random(4) + 0.5, requires_grad=True)
        (x**3).sum().backward()
        np.testing.assert_allclose(x.grad, 3 * x.data**2)

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        (1.0 - x).backward()
        np.testing.assert_allclose(x.grad, [-1.0])
        y = Tensor([2.0], requires_grad=True)
        (1.0 / y).backward()
        np.testing.assert_allclose(y.grad, [-0.25])

    def test_matmul_grads(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        expected_a = numerical_grad(lambda: float((a.data @ b.data).sum()), a.data)
        expected_b = numerical_grad(lambda: float((a.data @ b.data).sum()), b.data)
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-5)

    def test_gradient_accumulates_on_reuse(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x + x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * np.ones(3))


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        x.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 5)))

    def test_mean_grad(self, rng):
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 2), 1 / 8))

    def test_max_grad_flows_to_argmax(self):
        x = Tensor([[1.0, 5.0, 3.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose_roundtrip(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        y = x.reshape(3, 4).transpose(1, 0)
        assert y.shape == (4, 3)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 6)))

    def test_getitem_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2, 0, 1, 0, 0])

    def test_concatenate_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((3, 2)))

    def test_stack_grad(self, rng):
        parts = [Tensor(rng.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        stack(parts, axis=0).sum().backward()
        for part in parts:
            np.testing.assert_allclose(part.grad, np.ones(3))


class TestSTE:
    def test_round_ste_identity_grad(self):
        x = Tensor([0.4, 1.6, -2.3], requires_grad=True)
        y = x.round_ste()
        np.testing.assert_allclose(y.data, [0.0, 2.0, -2.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_floor_ste(self):
        x = Tensor([0.9, -0.1], requires_grad=True)
        y = x.floor_ste()
        np.testing.assert_allclose(y.data, [0.0, -1.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(2))

    def test_clamp_ste_passes_grad_outside_range(self):
        x = Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        x.clamp_ste(-1, 1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_clamp_gates_grad(self):
        x = Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        x.clamp(-1, 1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestGraphMechanics:
    def test_backward_on_non_scalar_requires_seed(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(GradError):
            (x * 2).backward()

    def test_backward_without_requires_grad(self):
        with pytest.raises(GradError):
            Tensor([1.0]).backward()

    def test_seed_gradient_shape_checked(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(ShapeError):
            y.backward(np.ones(3))

    def test_no_grad_blocks_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach() * 3
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_item_and_shape_properties(self):
        x = Tensor([[1.0, 2.0]])
        assert x.shape == (1, 2) and x.ndim == 2 and x.size == 2
        assert Tensor([3.5]).item() == 3.5
