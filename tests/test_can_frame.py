"""Tests for the CAN frame codec."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.can.frame import CANFrame, crc15, max_frame_bits
from repro.errors import CANError
from repro.utils.bitops import destuff_bits


class TestCRC15:
    def test_zeros_is_zero(self):
        assert crc15(np.zeros(16, dtype=np.uint8)) == 0

    def test_single_bit_gives_polynomial_tail(self):
        # One trailing 1 shifted through an empty register: crc = poly applied once.
        assert crc15(np.array([1], dtype=np.uint8)) == 0x4599

    def test_detects_single_bit_flips(self, rng):
        bits = rng.integers(0, 2, size=64).astype(np.uint8)
        base = crc15(bits)
        for position in range(0, 64, 7):
            flipped = bits.copy()
            flipped[position] ^= 1
            assert crc15(flipped) != base

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=128))
    def test_crc_in_15_bit_range(self, bits):
        assert 0 <= crc15(np.array(bits, dtype=np.uint8)) < 2**15

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=80))
    def test_property_detects_every_single_bit_flip(self, bits):
        # The CRC-15 guarantee the fault layer's corruption model rests
        # on: ANY single flipped bit changes the checksum — exhaustive
        # over every position of the drawn body, not a sample.
        body = np.array(bits, dtype=np.uint8)
        base = crc15(body)
        for position in range(len(body)):
            flipped = body.copy()
            flipped[position] ^= 1
            assert crc15(flipped) != base

    @given(
        st.lists(st.integers(0, 1), min_size=16, max_size=96),
        st.integers(1, 15),
        st.data(),
    )
    def test_property_detects_bursts_up_to_15_bits(self, bits, burst_len, data):
        # A degree-15 generator with a +1 term detects every burst no
        # longer than 15 bits, whatever the error pattern inside it.
        body = np.array(bits, dtype=np.uint8)
        start = data.draw(st.integers(0, len(body) - burst_len))
        pattern = np.array(
            data.draw(
                st.lists(st.integers(0, 1), min_size=burst_len, max_size=burst_len)
            ),
            dtype=np.uint8,
        )
        pattern[0] = 1
        pattern[-1] = 1  # endpoints flipped: the error genuinely spans burst_len
        corrupted = body.copy()
        corrupted[start : start + burst_len] ^= pattern
        assert crc15(corrupted) != crc15(body)


class TestCANFrameStructure:
    def test_dlc_matches_payload(self):
        assert CANFrame(0x123, bytes(5)).dlc == 5

    def test_id_range_checked_standard(self):
        with pytest.raises(CANError):
            CANFrame(0x800)

    def test_id_range_extended_ok(self):
        frame = CANFrame(0x15555555, bytes(2), extended=True)
        assert frame.extended

    def test_extended_id_range_checked(self):
        with pytest.raises(CANError):
            CANFrame(0x2000_0000, extended=True)

    def test_payload_limit(self):
        with pytest.raises(CANError):
            CANFrame(0x1, bytes(9))

    def test_padded_data(self):
        assert CANFrame(0x1, b"\x42").padded_data() == b"\x42" + bytes(7)

    def test_id_hex_matches_dataset_format(self):
        assert CANFrame(0x316, bytes(8)).id_hex() == "0316"


class TestWireFormat:
    def test_standard_frame_unstuffed_length(self):
        # SOF(1)+ID(11)+RTR/IDE/r0(3)+DLC(4)+data(64)+CRC(15) = 98 bits.
        frame = CANFrame(0x123, bytes(8))
        assert frame.content_bits().size == 98

    def test_extended_frame_longer(self):
        std = CANFrame(0x123, bytes(8)).content_bits().size
        ext = CANFrame(0x123, bytes(8), extended=True).content_bits().size
        assert ext == std + 20

    def test_bit_length_includes_trailer(self):
        frame = CANFrame(0x123, bytes(8))
        assert frame.bit_length(stuffed=False) == 98 + 13

    def test_stuffing_only_adds_bits(self):
        frame = CANFrame(0x000, bytes(8))  # long zero runs, heavy stuffing
        assert frame.bit_length() > frame.bit_length(stuffed=False)

    def test_worst_case_bound_holds(self):
        for dlc in range(9):
            bound = max_frame_bits(dlc)
            frame = CANFrame(0x000, bytes(dlc))
            assert frame.bit_length() <= bound

    def test_duration_at_bitrates(self):
        frame = CANFrame(0x555, bytes(8))  # alternating id, minimal stuffing
        assert frame.duration(1_000_000) == pytest.approx(frame.bit_length() / 1e6)
        assert frame.duration(500_000) == 2 * frame.duration(1_000_000)

    def test_bad_bitrate(self):
        with pytest.raises(CANError):
            CANFrame(0x1).duration(0)

    def test_max_frame_bits_validates_dlc(self):
        with pytest.raises(CANError):
            max_frame_bits(9)

    @given(
        st.integers(min_value=0, max_value=0x7FF),
        st.binary(min_size=0, max_size=8),
    )
    def test_destuffed_wire_bits_equal_content(self, can_id, payload):
        frame = CANFrame(can_id, payload)
        np.testing.assert_array_equal(destuff_bits(frame.wire_bits()), frame.content_bits())

    @given(st.integers(min_value=0, max_value=0x7FF), st.binary(min_size=0, max_size=8))
    def test_line_rate_claim_shape(self, can_id, payload):
        """No 8-byte standard frame beats ~9.6k fps at 1 Mbit/s."""
        frame = CANFrame(can_id, payload)
        fps = 1.0 / frame.duration(1_000_000)
        assert fps <= 1e6 / 47  # minimum possible frame is 47+ bits
