"""reprolint: rule firing, suppression syntax, CLI exit codes, repo gate.

The fixture files under ``tests/lint_fixtures/`` each trigger exactly
one rule (fixtures opt into roles with the ``module-role=`` pragma);
``clean.py`` opts into *every* role and triggers nothing.  The final
test lints the actual repo with the shipped configuration, making lint
cleanliness part of tier-1 by construction.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # tools/ lives at the repo root, not src/
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import run_lint  # noqa: E402
from tools.reprolint.cli import main as reprolint_main  # noqa: E402
from tools.reprolint.core import registered_rules  # noqa: E402
from tools.reprolint.reporters import render_json, render_text  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

VIOLATION_FIXTURES = [
    ("rng_violation.py", "rng-discipline"),
    ("hotpath_violation.py", "hot-path-purity"),
    ("dtype_violation.py", "dtype-discipline"),
    ("pickle_violation.py", "pickle-safety"),
    ("ab_violation.py", "ab-equivalence"),
    ("simtime_violation.py", "sim-time-hygiene"),
    ("typedcore_violation.py", "typed-core"),
    ("poolhygiene_violation.py", "pool-hygiene"),
    ("bare_suppression.py", "bare-suppression"),
]


def lint_fixture(name: str, **kwargs):
    return run_lint([FIXTURES / name], root=REPO_ROOT, **kwargs)


class TestRuleFiring:
    @pytest.mark.parametrize("fixture, rule", VIOLATION_FIXTURES)
    def test_fixture_triggers_exactly_its_rule(self, fixture, rule):
        result = lint_fixture(fixture)
        assert result.violations, f"{fixture} should violate {rule}"
        assert {v.rule for v in result.violations} == {rule}

    def test_clean_fixture_is_clean_under_every_role(self):
        assert lint_fixture("clean.py").clean

    def test_registry_exposes_all_issue_rules(self):
        names = set(registered_rules())
        assert {
            "rng-discipline",
            "hot-path-purity",
            "dtype-discipline",
            "pickle-safety",
            "ab-equivalence",
            "sim-time-hygiene",
            "typed-core",
        } <= names

    def test_violations_carry_location_and_render(self):
        result = lint_fixture("dtype_violation.py")
        violation = result.violations[0]
        assert violation.path.endswith("lint_fixtures/dtype_violation.py")
        assert violation.line > 1
        assert f":{violation.line}: [dtype-discipline]" in violation.render()


class TestSuppressionSyntax:
    def test_justified_suppression_silences_the_rule(self):
        assert lint_fixture("suppressed.py").clean

    def test_bare_suppression_is_flagged_but_still_honoured(self):
        result = lint_fixture("bare_suppression.py")
        # The dtype violation is suppressed; the missing justification
        # is the only thing reported.
        assert {v.rule for v in result.violations} == {"bare-suppression"}

    def test_standalone_comment_covers_next_code_line(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(
            "# reprolint: module-role=kernel\n"
            "import numpy as np\n"
            "# reprolint: disable=dtype-discipline -- fixture checks standalone scope\n"
            "buf = np.zeros(4)\n",
            encoding="utf-8",
        )
        assert run_lint([target], root=tmp_path).clean

    def test_disable_file_covers_the_whole_module(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(
            "# reprolint: module-role=kernel\n"
            "# reprolint: disable-file=dtype-discipline -- fixture checks file scope\n"
            "import numpy as np\n"
            "a = np.zeros(4)\n"
            "b = np.empty(8)\n",
            encoding="utf-8",
        )
        assert run_lint([target], root=tmp_path).clean

    def test_unknown_rule_in_suppression_is_flagged(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(
            "x = 1  # reprolint: disable=no-such-rule -- justified but bogus\n",
            encoding="utf-8",
        )
        result = run_lint([target], root=tmp_path)
        assert [v.rule for v in result.violations] == ["bare-suppression"]
        assert "no-such-rule" in result.violations[0].message

    def test_pragma_inside_docstring_is_inert(self, tmp_path):
        # Quoting the syntax in a docstring must neither suppress nor
        # assign roles — only real comment tokens carry pragmas.
        target = tmp_path / "module.py"
        target.write_text(
            '"""Docs quoting `# reprolint: module-role=kernel` syntax."""\n'
            "import numpy as np\n"
            "buf = np.zeros(4)\n",
            encoding="utf-8",
        )
        assert run_lint([target], root=tmp_path).clean  # no kernel role

    def test_syntax_error_reports_parse_error(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        result = run_lint([target], root=tmp_path)
        assert [v.rule for v in result.violations] == ["parse-error"]


class TestABCoverage:
    def test_forwarded_literals_count_as_coverage(self, tmp_path):
        src = tmp_path / "gateway.py"
        src.write_text(
            "def monitor(duration, engine='columnar'):\n"
            "    return (duration, engine)\n",
            encoding="utf-8",
        )
        test = tmp_path / "test_gateway.py"
        test.write_text(
            "from gateway import monitor\n"
            "def test_engines_agree():\n"
            "    def report_for(engine):\n"
            "        return monitor(1.0, engine=engine)\n"
            "    assert report_for('columnar') == report_for('event')\n",
            encoding="utf-8",
        )
        assert run_lint([src], tests=[test], root=tmp_path).clean

    def test_default_counts_only_for_the_default_side(self, tmp_path):
        src = tmp_path / "gateway.py"
        src.write_text(
            "def monitor(duration, engine='columnar'):\n"
            "    return (duration, engine)\n",
            encoding="utf-8",
        )
        test = tmp_path / "test_gateway.py"
        test.write_text(
            "from gateway import monitor\n"
            "def test_monitor():\n"
            "    assert monitor(1.0)\n",
            encoding="utf-8",
        )
        result = run_lint([src], tests=[test], root=tmp_path)
        assert [v.rule for v in result.violations] == ["ab-equivalence"]
        assert "engine='event'" in result.violations[0].message

    def test_repo_has_no_uncovered_switches(self):
        result = run_lint(
            [REPO_ROOT / "src"],
            tests=[REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
            rules=["ab-equivalence"],
        )
        assert result.clean, render_text(result)


class TestCLI:
    def test_exit_zero_on_clean(self, capsys):
        assert reprolint_main([str(FIXTURES / "clean.py"), "--root", str(REPO_ROOT)]) == 0
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize("fixture, rule", VIOLATION_FIXTURES)
    def test_exit_nonzero_on_each_violation_fixture(self, capsys, fixture, rule):
        code = reprolint_main([str(FIXTURES / fixture), "--root", str(REPO_ROOT)])
        assert code == 1
        assert f"[{rule}]" in capsys.readouterr().out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        code = reprolint_main(
            [str(FIXTURES / "clean.py"), "--rules", "no-such-rule"]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "rng-discipline" in out and "ab-equivalence" in out

    def test_json_report_and_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "report.json"
        code = reprolint_main(
            [
                str(FIXTURES / "dtype_violation.py"),
                "--root",
                str(REPO_ROOT),
                "--format",
                "json",
                "--json-output",
                str(artifact),
            ]
        )
        assert code == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        artifact_payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert stdout_payload == artifact_payload
        assert artifact_payload["summary"]["clean"] is False
        assert artifact_payload["summary"]["by_rule"] == {"dtype-discipline": 1}
        assert artifact_payload["violations"][0]["rule"] == "dtype-discipline"

    def test_json_renderer_on_clean_result(self):
        payload = json.loads(render_json(lint_fixture("clean.py")))
        assert payload["summary"]["clean"] is True
        assert payload["violations"] == []


class TestRepoGate:
    def test_repo_is_clean_under_the_shipped_config(self):
        """The exact gate scripts/lint.sh and CI run — must stay green."""
        result = run_lint(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "tools",
                REPO_ROOT / "scripts",
                REPO_ROOT / "benchmarks",
            ],
            tests=[REPO_ROOT / "tests"],
            root=REPO_ROOT,
        )
        assert result.clean, render_text(result)
