"""The attack-campaign framework: new injectors, compilation, labelling.

Pins the contracts of the scenario-generator PR:

* the new injector mechanics — masquerade suppresses the legitimate
  sender's frames, suspension delays without reordering other IDs,
  burst/ramp DoS profiles stay inside their windows;
* campaign compilation produces per-channel buses whose ground-truth
  labels agree with the phase windows frame-by-frame;
* the scenario registry exposes the canonical catalogue (>= 10
  scenarios) and every entry compiles and runs;
* the gateway's campaign-aware labelling attributes per-channel
  verdicts to phases, and the sweep runner drives scenarios through
  both gateway deployments.
"""

import numpy as np
import pytest

from repro.can.attacks import (
    BurstDoSAttacker,
    MasqueradeAttacker,
    RampDoSAttacker,
    ReplayAttacker,
    SuspensionAttacker,
)
from repro.can.campaign import (
    SCENARIOS,
    AttackPhase,
    Campaign,
    ScenarioRegistry,
    compile_campaign,
)
from repro.can.frame import CANFrame
from repro.can.node import PeriodicSender, counter_payload
from repro.errors import CANError, ConfigError, SoCError
from repro.experiments.campaigns import render_campaign_sweep, run_campaign_sweep
from repro.fleet import ExecOptions
from repro.soc.gateway import build_campaign_gateway


def _victim(can_id=0x316, period=0.010, jitter=0.0, phase=0.0):
    return PeriodicSender(
        can_id, period, payload_model=counter_payload(), jitter=jitter, phase=phase, seed=5
    )


class TestBurstRampProfiles:
    def test_burst_flood_respects_on_off_pulses(self):
        attacker = BurstDoSAttacker(
            [(0.0, 1.0)], burst_on=0.1, burst_off=0.1, interval=0.01
        )
        releases = [s.release_time for s in attacker.frames(10.0)]
        assert releases and all(0.0 <= r < 1.0 for r in releases)
        # Releases fall only inside [0.0,0.1], [0.2,0.3], [0.4,0.5]...
        # (tolerances absorb the accumulated float steps).
        for release in releases:
            position = release % 0.2
            assert position <= 0.1 + 1e-9 or position >= 0.2 - 1e-9
        # Five on-pulses of ~10 frames each.
        assert 50 <= len(releases) <= 55

    def test_burst_flood_clips_at_horizon(self):
        attacker = BurstDoSAttacker([(0.0, 1.0)], burst_on=0.1, burst_off=0.1, interval=0.01)
        releases = [s.release_time for s in attacker.frames(0.25)]
        assert releases and max(releases) < 0.25

    def test_ramp_intervals_shrink_toward_window_end(self):
        attacker = RampDoSAttacker([(0.0, 2.0)], interval_start=0.1, interval_end=0.01)
        releases = np.array([s.release_time for s in attacker.frames(10.0)])
        gaps = np.diff(releases)
        assert np.all(np.diff(gaps) < 1e-12)  # monotonically accelerating
        assert gaps[0] == pytest.approx(0.1, rel=0.01)
        assert gaps[-1] == pytest.approx(0.01, rel=0.15)

    def test_ramp_profile_independent_of_horizon_clipping(self):
        attacker = RampDoSAttacker([(0.0, 2.0)], interval_start=0.1, interval_end=0.01)
        full = [s.release_time for s in attacker.frames(10.0)]
        clipped = [s.release_time for s in attacker.frames(1.0)]
        assert clipped == [r for r in full if r < 1.0]

    def test_validation(self):
        with pytest.raises(CANError):
            BurstDoSAttacker([(0.0, 1.0)], burst_on=0.0)
        with pytest.raises(CANError):
            RampDoSAttacker([(0.0, 1.0)], interval_start=0.0)


class TestSuspension:
    def test_drop_silences_target_inside_window_only(self):
        attacker = SuspensionAttacker(_victim(), [(0.2, 0.4)], mode="drop")
        releases = [s.release_time for s in attacker.frames(0.6)]
        assert all(not (0.2 <= r < 0.4) for r in releases)
        # Frames outside the window pass through unchanged, label "R".
        outside = [s for s in attacker.frames(0.6) if s.release_time < 0.2]
        assert outside and all(s.label == "R" for s in outside)

    def test_delay_shifts_target_frames_and_labels_them(self):
        victim = _victim()
        baseline = {s.release_time for s in _victim().frames(0.6)}
        attacker = SuspensionAttacker(victim, [(0.2, 0.4)], mode="delay", delay=0.005)
        tampered = [s for s in attacker.frames(0.6) if s.label == "T"]
        assert tampered
        baseline_array = np.array(sorted(baseline))
        for scheduled in tampered:
            original = scheduled.release_time - 0.005
            assert np.min(np.abs(baseline_array - original)) < 1e-9
            assert 0.2 - 1e-9 <= original < 0.4

    def test_delay_does_not_reorder_other_ids(self):
        victim = _victim(can_id=0x316)
        bystander_releases = [
            s.release_time for s in _victim(can_id=0x130, phase=0.002).frames(0.6)
        ]
        attacker = SuspensionAttacker(victim, [(0.2, 0.4)], mode="delay", delay=0.005)
        # The wrapper only sees the victim; other senders are untouched
        # by construction.  What must hold is the TrafficSource order
        # contract, so a bus merging both streams keeps bystander order.
        releases = [s.release_time for s in attacker.frames(0.6)]
        assert releases == sorted(releases)
        assert bystander_releases == sorted(bystander_releases)

    def test_validation(self):
        with pytest.raises(CANError):
            SuspensionAttacker(_victim(), [(0.0, 1.0)], mode="nonsense")
        with pytest.raises(CANError):
            SuspensionAttacker(_victim(), [(0.0, 1.0)], mode="delay", delay=0.0)


class TestMasquerade:
    def test_suppresses_legitimate_sender_inside_window(self):
        attacker = MasqueradeAttacker(_victim(), [(0.2, 0.4)], seed=3)
        in_window = [s for s in attacker.frames(0.6) if 0.2 <= s.release_time < 0.4]
        assert in_window
        # Every in-window 0x316 frame is the attacker's, none the victim's.
        assert all(s.label == "T" for s in in_window)

    def test_spoofs_at_victim_cadence(self):
        victim = _victim(period=0.010)
        attacker = MasqueradeAttacker(victim, [(0.2, 0.4)], seed=3)
        injected = [s.release_time for s in attacker.frames(0.6) if s.label == "T"]
        gaps = np.diff(np.array(injected))
        assert np.allclose(gaps, 0.010)

    def test_passes_victim_through_outside_window(self):
        attacker = MasqueradeAttacker(_victim(), [(0.2, 0.4)], seed=3)
        outside = [s for s in attacker.frames(0.6) if not (0.2 <= s.release_time < 0.4)]
        assert outside and all(s.label == "R" for s in outside)
        assert all(s.frame.can_id == 0x316 for s in outside)

    def test_needs_target_and_cadence(self):
        class Opaque:
            def frames(self, until):
                return iter(())

        with pytest.raises(CANError, match="target_id"):
            MasqueradeAttacker(Opaque(), [(0.0, 1.0)])
        with pytest.raises(CANError, match="interval"):
            MasqueradeAttacker(Opaque(), [(0.0, 1.0)], target_id=0x316)


class TestReplayWindowing:
    """The bugfix: replay shares the windowed injectors' semantics."""

    def test_multiple_windows_replay_in_each(self):
        capture = [CANFrame(0x100, bytes(2)), CANFrame(0x200, bytes(2))]
        attacker = ReplayAttacker(
            capture, offsets=[0.0, 0.005], windows=[(1.0, 2.0), (3.0, 4.0)]
        )
        releases = [s.release_time for s in attacker.frames(10.0)]
        assert releases == [1.0, 1.005, 3.0, 3.005]

    def test_horizon_clips_like_other_injectors(self):
        capture = [CANFrame(0x100)] * 3
        attacker = ReplayAttacker(
            capture, offsets=[0.0, 0.5, 0.9], windows=[(0.0, 1.0), (2.0, 3.0)]
        )
        assert len(list(attacker.frames(0.6))) == 2  # 0.0, 0.5 (0.9 clipped)
        assert len(list(attacker.frames(10.0))) == 6

    def test_window_validation_matches_injectors(self):
        with pytest.raises(CANError):
            ReplayAttacker([CANFrame(0x1)], offsets=[0.0], windows=[(1.0, 1.0)])
        with pytest.raises(CANError):
            ReplayAttacker([CANFrame(0x1)], offsets=[0.0])


class TestCampaignModel:
    def test_phase_validation(self):
        with pytest.raises(CANError):
            AttackPhase("warp-core-breach", 0.0, 1.0)
        with pytest.raises(CANError):
            AttackPhase("dos", 1.0, 1.0)
        with pytest.raises(CANError, match="target_id"):
            AttackPhase("masquerade", 0.0, 1.0)

    def test_campaign_managed_params_rejected(self):
        # A user-supplied name would desynchronise source attribution
        # from the truth windows; seed/window are campaign-derived too.
        for bad in ({"name": "my-flood"}, {"seed": 5}, {"windows": [(0.0, 1.0)]}):
            with pytest.raises(CANError, match="campaign-managed"):
                AttackPhase("dos", 0.0, 1.0, params=bad)

    def test_campaign_validation(self):
        phase = AttackPhase("dos", 0.5, 1.5, "powertrain")
        with pytest.raises(CANError, match="unknown channel"):
            Campaign("bad", 2.0, ("body",), (phase,))
        with pytest.raises(CANError, match="duplicate"):
            Campaign("bad", 2.0, ("body", "body"), ())
        with pytest.raises(CANError, match="beyond"):
            Campaign("bad", 0.4, ("powertrain",), (phase,))

    def test_truth_windows_carry_delay_slack(self):
        campaign = Campaign(
            "slack",
            4.0,
            ("powertrain",),
            (
                AttackPhase(
                    "suspension", 1.0, 2.0, "powertrain",
                    {"target_id": 0x316, "mode": "delay", "delay": 0.05},
                ),
                AttackPhase("dos", 2.5, 3.0, "powertrain"),
            ),
        )
        windows = campaign.truth_windows()["powertrain"]
        assert windows[0][2] == pytest.approx(2.05)  # delay slack added
        assert windows[1][2] == pytest.approx(3.0)  # injectors clip inside

    def test_ground_truth_agrees_with_windows_frame_by_frame(self):
        """Every labelled frame of every scenario lies in a phase window."""
        for name in SCENARIOS:
            campaign = SCENARIOS.build(name, duration=1.2)
            buses = compile_campaign(campaign, vehicle_seed=11)
            truth = campaign.truth_windows()
            for channel, bus in buses.items():
                windows = [(start, end) for _, start, end, _ in truth[channel]]
                records = bus.run(campaign.duration)
                assert records, f"{name}/{channel} produced no traffic"
                for record in records:
                    if record.label == "T":
                        assert any(
                            start <= record.queued_at < end for start, end in windows
                        ), f"{name}/{channel}: T frame at {record.queued_at} outside windows"
                # Every injecting phase put evidence on the wire.
                for (_, start, end, injects), phase in zip(
                    truth[channel], campaign.phases_on(channel)
                ):
                    assert injects == phase.injects
                    if injects:
                        assert any(
                            record.label == "T" and start <= record.queued_at < end
                            for record in records
                        ), f"{name}/{channel}: no attack frames in {phase.kind} window"

    def test_suspension_drop_removes_frames_from_the_wire(self):
        campaign = SCENARIOS.build("suspension-drop", duration=1.2)
        buses = compile_campaign(campaign, vehicle_seed=11)
        (channel,) = campaign.channels
        records = buses[channel].run(campaign.duration)
        (start, end) = campaign.phases[0].window
        in_window = [
            r for r in records if r.frame.can_id == 0x43F and start <= r.queued_at < end
        ]
        assert not in_window
        before = [r for r in records if r.frame.can_id == 0x43F and r.queued_at < start]
        assert before  # the sender exists and transmits outside the window

    def test_masquerade_keeps_target_cadence_on_the_wire(self):
        campaign = SCENARIOS.build("masquerade-rpm", duration=1.2)
        buses = compile_campaign(campaign, vehicle_seed=11)
        (channel,) = campaign.channels
        records = buses[channel].run(campaign.duration)
        (start, end) = campaign.phases[0].window
        in_window = [
            r for r in records if r.frame.can_id == 0x316 and start <= r.queued_at < end
        ]
        assert in_window and all(r.label == "T" for r in in_window)


class TestScenarioRegistry:
    def test_catalogue_size_and_descriptions(self):
        assert len(SCENARIOS) >= 10
        descriptions = SCENARIOS.describe()
        assert set(descriptions) == set(SCENARIOS.names())
        assert all(descriptions.values())

    def test_build_rescales_duration(self):
        campaign = SCENARIOS.build("baseline-dos", duration=2.0)
        assert campaign.duration == 2.0
        assert all(phase.end <= 2.0 for phase in campaign.phases)

    def test_unknown_scenario(self):
        with pytest.raises(CANError, match="unknown scenario"):
            SCENARIOS.build("does-not-exist")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register("one", "first")(lambda duration=1.0: None)
        with pytest.raises(CANError, match="already registered"):
            registry.register("one", "again")


class TestCampaignGateway:
    def test_phase_outcomes_attributed_per_channel(self, dos_ip):
        campaign = SCENARIOS.build("staggered-cross-segment", duration=1.6)
        gateway = build_campaign_gateway(dos_ip, campaign, vehicle_seed=3, ecu_seed=6)
        report = gateway.monitor(duration=campaign.duration, truth=campaign.truth_windows())
        assert len(report.phase_outcomes) == len(campaign.phases)
        for outcome in report.phase_outcomes:
            assert outcome.serviced_attack_frames <= outcome.attack_frames
            assert outcome.true_alerts <= outcome.serviced_attack_frames
            if outcome.detection_latency_s is not None:
                # First evidence can complete past the window end under
                # queueing, but never before the phase starts.
                assert 0.0 <= outcome.detection_latency_s < campaign.duration
        # The DoS-trained detector catches the DoS phase...
        dos_outcome = report.channel("powertrain").phase_outcomes[0]
        assert dos_outcome.detected and dos_outcome.window_recall > 0.9
        # ...and the channel capture is exposed for downstream labelling.
        assert report.channel("powertrain").capture is not None

    def test_overlapping_phases_do_not_cross_credit(self, dos_ip):
        """Attack frames attribute to the phase that produced them.

        In overlapping-mixed the DoS and fuzzy windows intersect on
        'powertrain'; window-only attribution would count the flagged
        DoS frames toward the fuzzy phase too (double counting, and a
        phantom fuzzy 'detection' from a detector that never flags
        fuzzy traffic).  Sources disambiguate.
        """
        campaign = SCENARIOS.build("overlapping-mixed", duration=1.6)
        gateway = build_campaign_gateway(dos_ip, campaign, vehicle_seed=3, ecu_seed=6)
        report = gateway.monitor(duration=campaign.duration, truth=campaign.truth_windows())
        outcomes = {o.phase: o for o in report.channel("powertrain").phase_outcomes}
        dos_outcome = outcomes["dos@powertrain#0"]
        fuzzy_outcome = outcomes["fuzzy@powertrain#1"]
        total_attack = int(report.channel("powertrain").capture.labels.sum())
        # Every attack frame belongs to exactly one phase: no double count.
        assert dos_outcome.attack_frames + fuzzy_outcome.attack_frames == total_attack
        assert dos_outcome.detected
        # The fuzzy phase's credit is bounded by its own frames.
        assert fuzzy_outcome.true_alerts <= fuzzy_outcome.serviced_attack_frames

    def test_frameless_phase_never_credits_a_neighbouring_flood(self, dos_ip):
        """A drop-mode suspension overlapping a DoS flood reports zero.

        The drop phase puts no frames on the wire; window-containment
        attribution would hand it the concurrent flood's flagged frames
        and mark an undetectable phase DETECTED.
        """
        campaign = Campaign(
            name="drop-under-flood",
            duration=1.6,
            channels=("powertrain",),
            phases=(
                AttackPhase("dos", 0.3, 1.2, "powertrain"),
                AttackPhase(
                    "suspension", 0.5, 1.0, "powertrain",
                    {"target_id": 0x43F, "mode": "drop"},
                ),
            ),
        )
        gateway = build_campaign_gateway(dos_ip, campaign, vehicle_seed=3, ecu_seed=6)
        report = gateway.monitor(duration=campaign.duration, truth=campaign.truth_windows())
        outcomes = {o.phase: o for o in report.phase_outcomes}
        assert outcomes["dos@powertrain#0"].detected
        drop_outcome = outcomes["suspension@powertrain#1"]
        assert drop_outcome.attack_frames == 0
        assert drop_outcome.true_alerts == 0
        assert not drop_outcome.detected

    def test_truth_is_optional_and_validated(self, dos_ip):
        campaign = SCENARIOS.build("baseline-dos", duration=1.2)
        gateway = build_campaign_gateway(dos_ip, campaign, vehicle_seed=3)
        report = gateway.monitor(duration=campaign.duration)
        assert report.channels[0].phase_outcomes == ()
        with pytest.raises(SoCError, match="unknown channel"):
            gateway.monitor(duration=1.0, truth={"nonexistent": [("p", 0.0, 1.0)]})

    def test_sweep_runs_every_requested_scenario_in_both_modes(self, experiment_context):
        result = run_campaign_sweep(
            experiment_context,
            scenarios=["baseline-dos", "multi-segment-storm"],
            duration=1.0,
        )
        assert [run.mode for run in result.runs] == ["per-ip", "shared-ip"] * 2
        for run in result.runs:
            assert run.report.total_frames > 0
            assert len(run.report.phase_outcomes) == len(run.campaign.phases)
        storm_shared = result.run("multi-segment-storm", "shared-ip")
        storm_per_ip = result.run("multi-segment-storm", "per-ip")
        assert (
            storm_shared.report.aggregate_sustained_fps
            < storm_per_ip.report.aggregate_sustained_fps
        )
        rendered = render_campaign_sweep(result).render()
        assert "multi-segment-storm" in rendered and "shared-ip" in rendered

    def test_parallel_sweep_matches_serial(self, experiment_context):
        """Thread-pooled sweep: same seeds, same verdicts, same order."""
        names = ["baseline-dos", "overlapping-mixed"]
        serial = run_campaign_sweep(
            experiment_context,
            scenarios=names,
            duration=1.0,
            options=ExecOptions(backend="thread", max_workers=1),
        )
        parallel = run_campaign_sweep(
            experiment_context,
            scenarios=names,
            duration=1.0,
            options=ExecOptions(backend="thread", max_workers=2),
        )
        assert [(r.scenario, r.mode) for r in serial.runs] == [
            (r.scenario, r.mode) for r in parallel.runs
        ]
        for serial_run, parallel_run in zip(serial.runs, parallel.runs):
            assert serial_run.report.total_frames == parallel_run.report.total_frames
            assert serial_run.report.total_dropped == parallel_run.report.total_dropped
            assert serial_run.phases_detected == parallel_run.phases_detected
            for left, right in zip(
                serial_run.report.channels, parallel_run.report.channels
            ):
                if left.report is None:
                    assert right.report is None
                    continue
                np.testing.assert_array_equal(
                    left.report.predictions, right.report.predictions
                )

    def test_invalid_worker_count_rejected(self, experiment_context):
        with pytest.raises(ConfigError):
            run_campaign_sweep(
                experiment_context,
                scenarios=["baseline-dos"],
                options=ExecOptions(max_workers=0),
            )
