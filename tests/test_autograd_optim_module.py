"""Tests for optimisers, schedulers and Module mechanics."""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.layers import Linear, ReLU, Sequential
from repro.autograd.module import Module, Parameter
from repro.autograd.optim import (
    SGD,
    Adam,
    CosineAnnealingLR,
    ExponentialLR,
    StepLR,
    clip_grad_norm,
)
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def minimise(optimizer_factory, steps=200):
    p = quadratic_param()
    opt = optimizer_factory([p])
    for _ in range(steps):
        opt.zero_grad()
        ((p - 2.0) ** 2).sum().backward()
        opt.step()
    return float(p.data[0])


class TestOptimizers:
    def test_sgd_minimises_quadratic(self):
        assert minimise(lambda ps: SGD(ps, lr=0.1)) == pytest.approx(2.0, abs=1e-3)

    def test_sgd_momentum(self):
        assert minimise(lambda ps: SGD(ps, lr=0.05, momentum=0.9)) == pytest.approx(2.0, abs=1e-3)

    def test_sgd_nesterov(self):
        assert minimise(lambda ps: SGD(ps, lr=0.05, momentum=0.9, nesterov=True)) == pytest.approx(2.0, abs=1e-3)

    def test_adam_minimises_quadratic(self):
        assert minimise(lambda ps: Adam(ps, lr=0.1)) == pytest.approx(2.0, abs=1e-2)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero task gradient
        opt.step()
        assert abs(p.data[0]) < 1.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ConfigError):
            SGD([quadratic_param()], lr=0.1, nesterov=True)

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigError):
            Adam([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ConfigError):
            SGD([quadratic_param()], lr=0.0)

    def test_step_skips_params_without_grad(self):
        p = quadratic_param()
        Adam([p], lr=0.1).step()  # no grads: must not raise
        assert p.data[0] == 5.0


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.array([3.0, 4.0]))
        p.grad = np.array([3.0, 4.0])
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_when_under(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        clip_grad_norm([p], max_norm=1.0)
        assert p.grad[0] == pytest.approx(0.5)

    def test_handles_no_grads(self):
        assert clip_grad_norm([quadratic_param()], 1.0) == 0.0


class TestSchedulers:
    def test_step_lr(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_cosine_reaches_eta_min(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.01)


class TestModule:
    def test_named_parameters_depth_first(self):
        net = Sequential(Linear(2, 3, seed=1), ReLU(), Linear(3, 1, seed=2))
        names = [name for name, _ in net.named_parameters()]
        assert names == ["layers.0.weight", "layers.0.bias", "layers.2.weight", "layers.2.bias"]

    def test_num_parameters(self):
        net = Sequential(Linear(2, 3, seed=1))
        assert net.num_parameters() == 2 * 3 + 3

    def test_state_dict_roundtrip_changes_output(self, rng):
        net1 = Sequential(Linear(4, 2, seed=1))
        net2 = Sequential(Linear(4, 2, seed=99))
        x = rng.normal(size=(3, 4))
        assert not np.allclose(net1(Tensor(x)).data, net2(Tensor(x)).data)
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net1(Tensor(x)).data, net2(Tensor(x)).data)

    def test_load_state_dict_missing_key(self):
        net = Sequential(Linear(2, 2, seed=1))
        with pytest.raises(ConfigError):
            net.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self):
        net = Sequential(Linear(2, 2, seed=1))
        state = net.state_dict()
        state["layers.0.weight"] = np.zeros((3, 3))
        with pytest.raises(ConfigError):
            net.load_state_dict(state)

    def test_zero_grad_clears_all(self, rng):
        net = Sequential(Linear(2, 2, seed=1))
        net(Tensor(rng.normal(size=(2, 2)))).sum().backward()
        assert net.parameters()[0].grad is not None
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_modules_iterates_tree(self):
        net = Sequential(Linear(2, 2), Sequential(Linear(2, 2)))
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds.count("Linear") == 2
        assert kinds.count("Sequential") == 2


class TestEndToEndLearning:
    def test_mlp_learns_xor(self):
        net = Sequential(Linear(2, 8, seed=3), ReLU(), Linear(8, 2, seed=4))
        opt = Adam(net.parameters(), lr=0.05)
        features = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        labels = np.array([0, 1, 1, 0])
        for _ in range(300):
            opt.zero_grad()
            F.cross_entropy(net(Tensor(features)), labels).backward()
            opt.step()
        assert F.accuracy(net(Tensor(features)), labels) == 1.0
