"""Unit + property tests for quantisers (the Brevitas substitute core)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd.tensor import Tensor
from repro.errors import QuantError
from repro.quant.calibration import EMAObserver, MinMaxObserver, PercentileObserver
from repro.quant.quantizers import (
    ActQuantizer,
    WeightQuantizer,
    int_range,
    po2_scale,
    round_half_up_array,
)


class TestIntRange:
    @pytest.mark.parametrize(
        "bits,signed,narrow,expected",
        [
            (4, True, True, (-7, 7)),
            (4, True, False, (-8, 7)),
            (4, False, False, (0, 15)),
            (8, True, True, (-127, 127)),
            (1, False, False, (0, 1)),
            (1, True, True, (-1, 1)),
        ],
    )
    def test_known_ranges(self, bits, signed, narrow, expected):
        assert int_range(bits, signed, narrow) == expected

    def test_invalid_bits(self):
        with pytest.raises(QuantError):
            int_range(0, True)
        with pytest.raises(QuantError):
            int_range(64, False)


class TestPo2Scale:
    def test_exact_power(self):
        assert po2_scale(7.0, 7) == 1.0

    def test_rounds_up_to_cover(self):
        scale = po2_scale(1.0, 7)
        assert scale == 0.25  # 2^ceil(log2(1/7)) = 2^-2
        assert 1.0 / scale <= 7 + 1e-12

    def test_zero_maxabs(self):
        assert po2_scale(0.0, 7) == 1.0

    @given(st.floats(min_value=1e-6, max_value=1e6), st.integers(min_value=1, max_value=255))
    def test_scale_is_power_of_two_and_covers(self, abs_max, qmax):
        scale = po2_scale(abs_max, qmax)
        mantissa, _ = np.frexp(scale)
        assert mantissa == 0.5  # power of two
        assert abs_max / scale <= qmax * (1 + 1e-12)


class TestRoundHalfUp:
    def test_half_goes_up(self):
        np.testing.assert_array_equal(round_half_up_array([0.5, 1.5, 2.5, -0.5]), [1, 2, 3, 0])

    def test_matches_floor_plus_half(self):
        values = np.linspace(-3, 3, 61)
        np.testing.assert_array_equal(round_half_up_array(values), np.floor(values + 0.5))


class TestWeightQuantizer:
    def test_fake_quant_on_grid(self, rng):
        quantizer = WeightQuantizer(4)
        weight = Tensor(rng.normal(size=(8, 8)))
        fake, scale = quantizer.quantize(weight)
        ints = fake.data / scale
        np.testing.assert_allclose(ints, np.round(ints), atol=1e-9)
        assert np.abs(ints).max() <= 7

    def test_int_weights_match_fake_quant(self, rng):
        quantizer = WeightQuantizer(4)
        weight = rng.normal(size=(6, 10))
        ints, scale = quantizer.int_weights(weight)
        fake, scale2 = quantizer.quantize(Tensor(weight))
        assert scale == scale2
        np.testing.assert_allclose(ints * scale, fake.data)

    def test_per_channel_scales(self, rng):
        quantizer = WeightQuantizer(4, per_channel=True)
        weight = rng.normal(size=(5, 8)) * np.arange(1, 6)[:, None]
        ints, scale = quantizer.int_weights(weight)
        assert scale.shape == (5, 1)
        assert (np.diff(scale[:, 0]) >= 0).all()  # larger rows, larger scales

    def test_ste_gradient_passes_through(self, rng):
        quantizer = WeightQuantizer(4)
        weight = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        fake, _ = quantizer.quantize(weight)
        fake.sum().backward()
        np.testing.assert_allclose(weight.grad, np.full((3, 3), 1.0))

    def test_zero_weight_matrix(self):
        ints, scale = WeightQuantizer(4).int_weights(np.zeros((2, 2)))
        assert scale == 1.0
        np.testing.assert_array_equal(ints, 0)

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_int_weights_always_in_range(self, bits, seed):
        rng = np.random.default_rng(seed)
        weight = rng.normal(scale=rng.uniform(0.01, 10), size=(4, 6))
        ints, _ = WeightQuantizer(bits).int_weights(weight)
        qmin, qmax = int_range(bits, signed=True, narrow_range=True)
        assert ints.min() >= qmin and ints.max() <= qmax


class TestActQuantizer:
    def test_unsigned_range(self, rng):
        quantizer = ActQuantizer(4, signed=False)
        x = Tensor(np.abs(rng.normal(size=100)))
        out = quantizer.quantize(x, training=True)
        ints = out.data / quantizer.scale
        assert ints.min() >= 0 and ints.max() <= 15
        np.testing.assert_allclose(ints, np.round(ints), atol=1e-9)

    def test_scale_frozen_after_training(self, rng):
        quantizer = ActQuantizer(4)
        quantizer.quantize(Tensor(np.abs(rng.normal(size=50))), training=True)
        quantizer.observer.freeze()
        scale_before = quantizer.scale
        quantizer.quantize(Tensor(np.abs(rng.normal(size=50)) * 100), training=True)
        assert quantizer.scale == scale_before

    def test_uncalibrated_inference_self_calibrates(self, rng):
        quantizer = ActQuantizer(4)
        out = quantizer.quantize(Tensor(np.abs(rng.normal(size=10))), training=False)
        assert np.isfinite(out.data).all()

    def test_quantize_array_matches_tensor_path(self, rng):
        quantizer = ActQuantizer(4)
        x = np.abs(rng.normal(size=64))
        quantizer.observe(x)
        tensor_out = quantizer.quantize(Tensor(x), training=False).data
        array_out = quantizer.quantize_array(x)
        np.testing.assert_array_equal(tensor_out, array_out)

    def test_int_array(self, rng):
        quantizer = ActQuantizer(4)
        x = np.abs(rng.normal(size=32))
        quantizer.observe(x)
        ints = quantizer.int_array(x)
        np.testing.assert_allclose(ints * quantizer.scale, quantizer.quantize_array(x))

    def test_state_roundtrip(self, rng):
        quantizer = ActQuantizer(4)
        quantizer.observe(np.abs(rng.normal(size=32)))
        state = quantizer.state()
        fresh = ActQuantizer(4)
        fresh.load_state(state)
        assert fresh.scale == quantizer.scale


class TestObservers:
    def test_minmax_never_shrinks(self):
        obs = MinMaxObserver()
        obs.observe(np.array([5.0]))
        obs.observe(np.array([1.0]))
        assert obs.range == 5.0

    def test_ema_moves_towards_recent(self):
        obs = EMAObserver(momentum=0.5)
        obs.observe(np.array([4.0]))
        obs.observe(np.array([8.0]))
        assert obs.range == pytest.approx(6.0)

    def test_percentile_ignores_outliers(self, rng):
        obs = PercentileObserver(percentile=90.0, momentum=1.0)
        data = np.concatenate([np.ones(99), [1000.0]])
        obs.observe(data)
        assert obs.range < 10.0

    def test_frozen_observer_ignores_updates(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0]))
        obs.freeze()
        obs.observe(np.array([100.0]))
        assert obs.range == 1.0

    def test_empty_batch_rejected(self):
        with pytest.raises(QuantError):
            MinMaxObserver().observe(np.array([]))

    def test_bad_momentum(self):
        with pytest.raises(QuantError):
            EMAObserver(momentum=0.0)

    def test_bad_percentile(self):
        with pytest.raises(QuantError):
            PercentileObserver(percentile=0.0)
