"""Fault tolerance: retries, timeouts, rebuilds, checkpoint/resume, chaos.

The claims pinned here:

* ``run_sharded`` results are index-aligned with the task list no
  matter what order shards finish in;
* worker state is scoped per run — two concurrent in-process runs
  never read each other's state;
* chaos-injected failures retry with backoff and converge to the
  fault-free results (bit-identical, since every seed derives from
  task identity, never from attempts or timing);
* exhausted retries degrade into :class:`RunHealth` records (``None``
  result slots) unless ``strict=True``, which raises
  :class:`ShardError`;
* per-shard timeouts abandon hung attempts and the retry succeeds —
  and the timeout clock starts when an attempt *runs*, not when it
  queues behind other shards;
* a dead process-pool worker rebuilds the pool and the run completes;
* ``run_fleet(..., checkpoint=path)`` persists completed shards and a
  resumed run (after any interrupt pattern — property-tested) merges
  to a bit-identical :class:`FleetAggregate`.
"""

import json
import threading
import time
from itertools import count

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.experiments.campaigns import run_campaign_sweep
from repro.fleet import (
    ChaosError,
    ChaosPlan,
    ExecOptions,
    FleetAggregate,
    FleetCheckpoint,
    FleetSlice,
    FleetSpec,
    RunHealth,
    ShardError,
    fleet_fingerprint,
    run_fleet,
    run_sharded,
)

# ---------------------------------------------------------------------------
# module-top-level workers (the process backend pickles by reference)


def _double(task):
    return task * 2


def _staggered(task):
    index, delay = task
    time.sleep(delay)
    return index


def _read_tag(task):
    from repro.fleet.pool import worker_state

    return (task, worker_state()["tag"])


class TestOrderStability:
    def test_results_are_index_aligned_when_shards_finish_out_of_order(self):
        # Shard 0 sleeps longest, so completion order is the reverse of
        # submission order — results must still line up with the tasks.
        tasks = [(index, 0.05 * (4 - index)) for index in range(5)]
        out = run_sharded(tasks, _staggered, {}, "thread", 5)
        assert out.results == (0, 1, 2, 3, 4)
        assert out.health.ok and out.health.completed == 5

    def test_empty_task_list_is_a_clean_noop(self):
        out = run_sharded([], _double, {}, "thread", 4)
        assert out.results == () and out.health == RunHealth.clean(0)

    def test_concurrent_runs_keep_their_own_worker_state(self):
        # Regression: a module-global worker state let a second run
        # clobber the first mid-flight.  State is now scoped per run.
        barrier = threading.Barrier(2)
        outcomes = {}

        def launch(tag):
            barrier.wait(timeout=10)
            outcomes[tag] = run_sharded(
                list(range(6)), _read_tag, {"tag": tag}, "thread", 2
            )

        threads = [
            threading.Thread(target=launch, args=(tag,)) for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        for tag in ("a", "b"):
            assert outcomes[tag].results == tuple((i, tag) for i in range(6))


class TestChaosPlans:
    def test_plan_validates(self):
        with pytest.raises(ConfigError, match="rate"):
            ChaosPlan(seed=1, rate=1.5)
        with pytest.raises(ConfigError, match="attempts_affected"):
            ChaosPlan(seed=1, attempts_affected=0)
        with pytest.raises(ConfigError, match="unknown chaos kind"):
            ChaosPlan(seed=1, kinds=("explode",))
        with pytest.raises(ConfigError, match="delay_s"):
            ChaosPlan(seed=1, delay_s=-1.0)

    def test_schedule_is_a_pure_function_of_seed_and_index(self):
        plan = ChaosPlan(seed=7, rate=0.5)
        assert plan.faulted_shards(10) == plan.faulted_shards(10)
        assert ChaosPlan(seed=8, rate=0.5).faulted_shards(50) != plan.faulted_shards(50)
        assert ChaosPlan(seed=7, rate=0.0).faulted_shards(50) == ()
        assert ChaosPlan(seed=7, rate=1.0).faulted_shards(5) == (0, 1, 2, 3, 4)

    def test_inject_downgrades_crash_in_process(self):
        plan = ChaosPlan(seed=7, rate=1.0, kinds=("crash",))
        with pytest.raises(ChaosError):  # never os._exit in-process
            plan.inject(0, attempt=0, in_process=True)
        plan.inject(0, attempt=5, in_process=True)  # past affected attempts


class TestRetries:
    # seed=7, rate=0.5 faults shards (1, 2, 4) of range(5) — pinned so
    # the assertions below know exactly which slots were exercised.
    PLAN = ChaosPlan(seed=7, rate=0.5, attempts_affected=1)

    def test_plan_is_the_one_the_assertions_assume(self):
        assert self.PLAN.faulted_shards(5) == (1, 2, 4)

    @pytest.mark.parametrize("workers", [1, 2])  # serial and pooled paths
    def test_retry_then_succeed_matches_fault_free(self, workers):
        clean = run_sharded(list(range(5)), _double, {}, "thread", workers)
        chaotic = run_sharded(
            list(range(5)),
            _double,
            {},
            "thread",
            workers,
            max_retries=2,
            strict=False,
            chaos=self.PLAN,
        )
        assert chaotic.results == clean.results == (0, 2, 4, 6, 8)
        assert chaotic.health.ok and chaotic.health.retries == 3

    def test_exhaustion_degrades_into_health_record(self):
        exhaust = ChaosPlan(seed=7, rate=0.5, attempts_affected=99)
        out = run_sharded(
            list(range(5)),
            _double,
            {},
            "thread",
            2,
            max_retries=1,
            strict=False,
            chaos=exhaust,
        )
        assert out.results == (0, None, None, 6, None)
        assert out.health.failed_shards == (1, 2, 4)
        assert out.health.completed == 2 and not out.health.ok
        for failure in out.health.failures:
            assert failure.attempts == 2 and "ChaosError" in failure.error
        record = out.health.as_record()
        assert record["failed_shards"] == [1, 2, 4] and record["retries"] == 3

    def test_strict_raises_shard_error_chained_from_the_cause(self):
        exhaust = ChaosPlan(seed=7, rate=0.5, attempts_affected=99)
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                list(range(5)),
                _double,
                {},
                "thread",
                2,
                max_retries=0,
                strict=True,
                chaos=exhaust,
            )
        assert isinstance(excinfo.value.__cause__, ChaosError)
        assert excinfo.value.failure.shard in (1, 2, 4)


class TestTimeouts:
    def test_timed_out_attempt_is_abandoned_and_retry_succeeds(self):
        # Faulted shards sleep 0.6s on attempt 0; the 0.2s deadline
        # abandons them and the clean retry completes every shard.
        plan = ChaosPlan(
            seed=7, rate=0.5, attempts_affected=1, kinds=("delay",), delay_s=0.6
        )
        out = run_sharded(
            list(range(5)),
            _double,
            {},
            "thread",
            2,
            timeout_s=0.2,
            max_retries=2,
            strict=False,
            chaos=plan,
        )
        assert out.results == (0, 2, 4, 6, 8)
        assert out.health.ok and out.health.timeouts == 3

    def test_queued_shards_are_not_charged_for_the_backlog(self):
        # Two workers, five shards of ~0.15s each: a clock that starts
        # at submission would charge the last shards their ~0.3s queue
        # wait and expire them.  The deadline must start when the
        # attempt starts running.
        tasks = [(index, 0.15) for index in range(5)]
        out = run_sharded(
            tasks, _staggered, {}, "thread", 2, timeout_s=0.4, max_retries=0
        )
        assert out.results == (0, 1, 2, 3, 4)
        assert out.health.ok and out.health.timeouts == 0


class TestProcessPoolRebuild:
    def test_crashed_worker_rebuilds_the_pool_and_completes(self):
        plan = ChaosPlan(seed=7, rate=0.5, attempts_affected=1, kinds=("crash",))
        out = run_sharded(
            list(range(5)),
            _double,
            {},
            "process",
            2,
            max_retries=3,
            strict=False,
            chaos=plan,
        )
        assert out.results == (0, 2, 4, 6, 8)
        assert out.health.ok and out.health.pool_rebuilds >= 1

    def test_deterministic_crasher_cannot_rebuild_forever(self):
        # Every attempt of every shard crashes: the rebuild path must
        # drain the retry budget and degrade, not loop.
        plan = ChaosPlan(
            seed=7, rate=1.0, attempts_affected=99, kinds=("crash",)
        )
        out = run_sharded(
            list(range(3)),
            _double,
            {},
            "process",
            2,
            max_retries=1,
            strict=False,
            chaos=plan,
        )
        assert out.results == (None, None, None)
        assert out.health.failed_shards == (0, 1, 2)
        assert out.health.pool_rebuilds >= 1


class TestResilienceOptions:
    def test_exec_options_validate_resilience_knobs(self):
        with pytest.raises(ConfigError, match="timeout_s"):
            ExecOptions(timeout_s=0.0)
        with pytest.raises(ConfigError, match="max_retries"):
            ExecOptions(max_retries=-1)

    def test_as_record_carries_the_resilience_settings(self):
        record = ExecOptions(timeout_s=30.0, max_retries=5, strict=True).as_record()
        assert record["timeout_s"] == 30.0
        assert record["max_retries"] == 5 and record["strict"] is True
        assert record["engine"] == "columnar"

    def test_aggregate_json_round_trip_is_exact(self):
        aggregate = FleetAggregate.of_vehicle(
            "baseline-dos",
            "per-ip",
            FleetSlice(vehicles=1, channels=3, frames_offered=1234, alerts=7),
        )
        thawed = FleetAggregate.from_json_dict(
            json.loads(json.dumps(aggregate.as_json_dict()))
        )
        assert thawed == aggregate


MINI_SPEC = FleetSpec(
    name="chaos-mini",
    size=6,
    seed=7,
    scenarios=("baseline-dos", "baseline-fuzzy"),
    profiles=("full", "lite"),
    deployments=("per-ip",),
    duration=0.4,
    onset_jitter=0.05,
)
MINI_OPTIONS = ExecOptions(backend="thread", max_workers=1)
MINI_SHARD_SIZE = 2  # 3 shards of 2 vehicles


class TestFleetUnderChaos:
    @pytest.fixture(scope="class")
    def reference(self, experiment_context):
        return run_fleet(
            experiment_context, MINI_SPEC, MINI_OPTIONS, shard_size=MINI_SHARD_SIZE
        )

    def test_reference_reports_clean_health(self, reference):
        assert reference.health.ok and reference.health.completed == 3
        record = reference.as_record()
        assert record["health"]["failed_shards"] == []
        assert record["max_retries"] == MINI_OPTIONS.max_retries
        assert record["strict"] is False and record["checkpointed"] is False

    def test_chaos_on_first_attempts_is_bit_identical_to_fault_free(
        self, experiment_context, reference
    ):
        # Two of three shards (>= 10%) fail their first attempt; the
        # retried run must converge to the exact fault-free aggregate.
        plan = ChaosPlan(seed=7, rate=0.5, attempts_affected=1)
        assert plan.faulted_shards(3) == (1, 2)
        run = run_fleet(
            experiment_context,
            MINI_SPEC,
            MINI_OPTIONS,
            shard_size=MINI_SHARD_SIZE,
            chaos=plan,
        )
        assert run.aggregate == reference.aggregate
        assert run.health.ok and run.health.retries == 2

    def test_exhausted_shards_degrade_and_are_reported(
        self, experiment_context, reference
    ):
        plan = ChaosPlan(seed=7, rate=0.5, attempts_affected=99)
        run = run_fleet(
            experiment_context,
            MINI_SPEC,
            ExecOptions(backend="thread", max_workers=1, max_retries=1),
            shard_size=MINI_SHARD_SIZE,
            chaos=plan,
        )
        assert run.health.failed_shards == (1, 2)
        # Shard 0's two vehicles still landed.
        assert run.aggregate.total.vehicles == 2
        assert "FAILED" in run.summary()

    def test_strict_fleet_raises(self, experiment_context):
        plan = ChaosPlan(seed=7, rate=0.5, attempts_affected=99)
        with pytest.raises(ShardError):
            run_fleet(
                experiment_context,
                MINI_SPEC,
                ExecOptions(
                    backend="thread", max_workers=1, max_retries=0, strict=True
                ),
                shard_size=MINI_SHARD_SIZE,
                chaos=plan,
            )


class TestCheckpointResume:
    @pytest.fixture(scope="class")
    def reference(self, experiment_context):
        return run_fleet(
            experiment_context, MINI_SPEC, MINI_OPTIONS, shard_size=MINI_SHARD_SIZE
        )

    @pytest.fixture(scope="class")
    def full_checkpoint(self, experiment_context, tmp_path_factory):
        """A checkpoint file holding all three shard aggregates."""
        path = tmp_path_factory.mktemp("ckpt") / "full.json"
        run_fleet(
            experiment_context,
            MINI_SPEC,
            MINI_OPTIONS,
            shard_size=MINI_SHARD_SIZE,
            checkpoint=path,
        )
        return path

    @pytest.fixture(scope="class")
    def fingerprint(self):
        return fleet_fingerprint(MINI_SPEC, MINI_SHARD_SIZE, MINI_OPTIONS.resolved())

    def test_checkpointed_run_matches_uncheckpointed(
        self, experiment_context, reference, full_checkpoint, fingerprint
    ):
        stored = FleetCheckpoint.open(full_checkpoint, fingerprint, 3)
        assert stored.missing == ()
        assert stored.merged() == reference.aggregate

    def test_fully_checkpointed_run_short_circuits(
        self, experiment_context, reference, full_checkpoint
    ):
        resumed = run_fleet(
            experiment_context,
            MINI_SPEC,
            MINI_OPTIONS,
            shard_size=MINI_SHARD_SIZE,
            checkpoint=full_checkpoint,
        )
        assert resumed.aggregate == reference.aggregate
        assert resumed.resumed_shards == 3 and resumed.workers == 0
        assert resumed.checkpointed and resumed.health.ok
        assert "resumed" in resumed.summary()

    def test_chaos_interrupt_then_resume_is_bit_identical(
        self, experiment_context, reference, tmp_path_factory
    ):
        path = tmp_path_factory.mktemp("ckpt") / "interrupted.json"
        plan = ChaosPlan(seed=7, rate=0.5, attempts_affected=99)
        first = run_fleet(
            experiment_context,
            MINI_SPEC,
            ExecOptions(backend="thread", max_workers=1, max_retries=0),
            shard_size=MINI_SHARD_SIZE,
            checkpoint=path,
            chaos=plan,
        )
        assert first.health.failed_shards == (1, 2)
        resumed = run_fleet(
            experiment_context,
            MINI_SPEC,
            MINI_OPTIONS,
            shard_size=MINI_SHARD_SIZE,
            checkpoint=path,
        )
        assert resumed.aggregate == reference.aggregate
        assert resumed.health.ok and resumed.resumed_shards == 1

    @settings(max_examples=5, deadline=None)
    @given(completed=st.sets(st.integers(min_value=0, max_value=2)))
    def test_resume_from_any_interrupt_point_is_bit_identical(
        self,
        experiment_context,
        reference,
        full_checkpoint,
        fingerprint,
        tmp_path_factory,
        completed,
    ):
        # Simulate an interrupt that left exactly `completed` shards in
        # the checkpoint, then resume: the merged aggregate must equal
        # the uninterrupted run's, bit for bit.
        full = FleetCheckpoint.open(full_checkpoint, fingerprint, 3)
        path = (
            tmp_path_factory.mktemp("ckpt-prop")
            / f"partial-{next(self._names)}.json"
        )
        partial = FleetCheckpoint(
            path=path, fingerprint=fingerprint, total_shards=3
        )
        for shard in sorted(completed):
            partial.completed[shard] = full.completed[shard]
        partial.save()
        resumed = run_fleet(
            experiment_context,
            MINI_SPEC,
            MINI_OPTIONS,
            shard_size=MINI_SHARD_SIZE,
            checkpoint=path,
        )
        assert resumed.aggregate == reference.aggregate
        assert resumed.resumed_shards == len(completed)

    _names = count()

    def test_mismatched_fingerprint_is_rejected(self, full_checkpoint):
        with pytest.raises(ConfigError, match="different run configuration"):
            FleetCheckpoint.open(full_checkpoint, "deadbeef", 3)

    def test_mismatched_shard_count_is_rejected(self, full_checkpoint, fingerprint):
        with pytest.raises(ConfigError, match="shards"):
            FleetCheckpoint.open(full_checkpoint, fingerprint, 5)

    def test_corrupt_checkpoint_is_rejected(self, tmp_path):
        garbage = tmp_path / "ckpt.json"
        garbage.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError, match="unreadable"):
            FleetCheckpoint.open(garbage, "fp", 3)

    def test_fingerprint_binds_spec_shards_and_engine_knobs(self):
        base = fleet_fingerprint(MINI_SPEC, 2, MINI_OPTIONS.resolved())
        assert fleet_fingerprint(MINI_SPEC, 3, MINI_OPTIONS.resolved()) != base
        other_spec = FleetSpec(
            name="chaos-mini", size=4, seed=7, scenarios=("baseline-dos",)
        )
        assert fleet_fingerprint(other_spec, 2, MINI_OPTIONS.resolved()) != base
        # Backend and worker count are explicitly NOT bound: results
        # are bit-identical across them, so resumes may switch.
        rethreaded = ExecOptions(backend="thread", max_workers=4).resolved()
        assert fleet_fingerprint(MINI_SPEC, 2, rethreaded) == base


class TestSweepHealth:
    def test_sweep_reports_health_and_resolved_options(self, experiment_context):
        result = run_campaign_sweep(
            experiment_context,
            scenarios=["baseline-dos"],
            duration=0.3,
            options=ExecOptions(backend="thread", max_workers=1),
        )
        assert result.health.ok and result.health.completed == 1
        assert result.options is not None
        record = result.options.as_record()
        assert record["max_retries"] == 2 and record["strict"] is False
