"""Tests for losses and stateless functions."""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = Tensor(rng.normal(size=(6, 4)))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), atol=1e-12)
        assert (probs > 0).all()

    def test_log_softmax_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0]]))
        out = F.log_softmax(logits).data
        np.testing.assert_allclose(out, np.log([[0.5, 0.5]]), atol=1e-9)

    def test_logsumexp_matches_scipy_convention(self, rng):
        x = rng.normal(size=(3, 5))
        ours = F.logsumexp(Tensor(x)).data
        expected = np.log(np.exp(x).sum(axis=1, keepdims=True))
        np.testing.assert_allclose(ours, expected, atol=1e-12)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[20.0, -20.0], [-20.0, 20.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-8

    def test_uniform_prediction_log_c(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0]))
        np.testing.assert_allclose(loss.item(), np.log(3), atol=1e-12)

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        labels = np.array([0, 2, 1, 1, 0])
        F.cross_entropy(logits, labels).backward()
        probs = F.softmax(Tensor(logits.data)).data
        expected = (probs - F.one_hot(labels, 3)) / 5
        np.testing.assert_allclose(logits.grad, expected, atol=1e-9)

    def test_class_weights_reweigh_loss(self):
        logits = Tensor(np.zeros((2, 2)))
        labels = np.array([0, 1])
        unweighted = F.cross_entropy(logits, labels).item()
        weighted = F.cross_entropy(logits, labels, class_weights=np.array([1.0, 3.0])).item()
        np.testing.assert_allclose(unweighted, weighted, atol=1e-12)  # symmetric case
        # Asymmetric case: wrong on the heavy class hurts more.
        logits2 = Tensor(np.array([[5.0, -5.0], [5.0, -5.0]]))
        loss_w = F.cross_entropy(logits2, labels, class_weights=np.array([1.0, 9.0])).item()
        loss_u = F.cross_entropy(logits2, labels).item()
        assert loss_w > loss_u

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 2, 2))), np.array([0, 1]))
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 1, 0]))


class TestBCEAndRegression:
    def test_bce_matches_reference(self, rng):
        logits = rng.normal(size=12)
        targets = rng.integers(0, 2, size=12).astype(float)
        ours = F.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        np.testing.assert_allclose(ours, expected, atol=1e-9)

    def test_bce_stable_at_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert loss.item() < 1e-8

    def test_mse(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_l1(self):
        loss = F.l1_loss(Tensor([1.0, -2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 1.5)


class TestAccuracyOneHot:
    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_one_hot(self):
        out = F.one_hot(np.array([1, 0]), 3)
        np.testing.assert_array_equal(out, [[0, 1, 0], [1, 0, 0]])
