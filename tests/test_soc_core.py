"""Tests for SoC primitives: device DB, AXI bus, FIFO, packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ResourceError, SoCError
from repro.finn.resources import ResourceEstimate
from repro.soc.accelerator import pack_words
from repro.soc.axi import AXILiteBus
from repro.soc.device import DEVICES, PYNQ_Z2, ZCU104
from repro.soc.fifo import RxFIFO


class TestDevice:
    def test_zcu104_capacities(self):
        assert ZCU104.lut == 230_400
        assert ZCU104.part.startswith("XCZU7EV")

    def test_utilization_math(self):
        util = ZCU104.utilization(ResourceEstimate(lut=2304, ff=4608, bram36=31.2, dsp=172.8))
        assert util["lut"] == pytest.approx(1.0)
        assert util["ff"] == pytest.approx(1.0)
        assert util["bram36"] == pytest.approx(10.0)
        assert util["dsp"] == pytest.approx(10.0)

    def test_check_fits_raises_on_overflow(self):
        with pytest.raises(ResourceError):
            PYNQ_Z2.check_fits(ResourceEstimate(lut=100_000))

    def test_instances_that_fit(self):
        est = ResourceEstimate(lut=23_040)  # 10% of ZCU104 LUTs
        assert ZCU104.instances_that_fit(est, margin=0.9) == 9

    def test_zero_usage_rejected(self):
        with pytest.raises(ResourceError):
            ZCU104.instances_that_fit(ResourceEstimate())

    def test_device_registry(self):
        assert set(DEVICES) == {"zcu104", "pynq-z2", "zcu102"}

    def test_resource_arithmetic(self):
        a = ResourceEstimate(lut=10, ff=20, bram36=1, dsp=2)
        b = a + a
        assert (b.lut, b.ff, b.bram36, b.dsp) == (20, 40, 2, 4)
        c = a.scaled(3)
        assert c.lut == 30


class TestAXIBus:
    def test_write_read_roundtrip(self):
        bus = AXILiteBus()
        bus.map_port("ip", 0x1000, 0x100)
        bus.write(0x1010, 0xDEADBEEF)
        assert bus.read(0x1010) == 0xDEADBEEF

    def test_latency_accounting(self):
        bus = AXILiteBus(access_latency=1e-6)
        bus.map_port("ip", 0x0, 0x100)
        bus.write(0x0, 1)
        bus.read(0x0)
        assert bus.transactions == 2
        assert bus.busy_seconds == pytest.approx(2e-6)

    def test_decode_error_unmapped(self):
        bus = AXILiteBus()
        with pytest.raises(SoCError):
            bus.read(0x5000)

    def test_unaligned_rejected(self):
        bus = AXILiteBus()
        bus.map_port("ip", 0x0, 0x100)
        with pytest.raises(SoCError):
            bus.read(0x2)

    def test_overlapping_ports_rejected(self):
        bus = AXILiteBus()
        bus.map_port("a", 0x0, 0x100)
        with pytest.raises(SoCError):
            bus.map_port("b", 0x80, 0x100)

    def test_value_width_checked(self):
        bus = AXILiteBus()
        bus.map_port("ip", 0x0, 0x100)
        with pytest.raises(SoCError):
            bus.write(0x0, 2**32)

    def test_poke_peek_no_accounting(self):
        bus = AXILiteBus()
        bus.map_port("ip", 0x0, 0x100)
        bus.poke(0x4, 7)
        assert bus.peek(0x4) == 7
        assert bus.transactions == 0


class TestRxFIFO:
    def test_fifo_order(self):
        fifo = RxFIFO(capacity=4)
        for i in range(3):
            fifo.push(i)
        assert fifo.pop() == 0 and fifo.pop() == 1

    def test_drop_oldest_on_overflow(self):
        fifo = RxFIFO(capacity=2)
        for i in range(5):
            fifo.push(i)
        assert fifo.dropped == 3
        assert fifo.pop() == 3  # oldest surviving

    def test_peek_window_newest(self):
        fifo = RxFIFO(capacity=8)
        for i in range(5):
            fifo.push(i)
        assert fifo.peek_window(3) == [2, 3, 4]

    def test_peek_window_short_on_cold_start(self):
        """Contract: min(count, len) items — a cold window is short, not padded."""
        fifo = RxFIFO(capacity=8)
        assert fifo.peek_window(3) == []
        fifo.push(10)
        fifo.push(11)
        assert fifo.peek_window(3) == [10, 11]
        assert fifo.peek_window(2) == [10, 11]

    def test_peek_window_require_full(self):
        """require_full turns a cold-start short window into an error."""
        fifo = RxFIFO(capacity=8)
        fifo.push(1)
        with pytest.raises(SoCError):
            fifo.peek_window(2, require_full=True)
        fifo.push(2)
        assert fifo.peek_window(2, require_full=True) == [1, 2]

    def test_peek_window_size_validated(self):
        with pytest.raises(SoCError):
            RxFIFO(capacity=2).peek_window(0)

    def test_pop_empty(self):
        with pytest.raises(SoCError):
            RxFIFO(capacity=2).pop()

    def test_occupancy(self):
        fifo = RxFIFO(capacity=4)
        fifo.push(1)
        assert fifo.occupancy == 0.25

    def test_capacity_validated(self):
        with pytest.raises(SoCError):
            RxFIFO(capacity=0)

    @given(st.lists(st.integers(), min_size=0, max_size=50), st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_conservation_property(self, items, capacity):
        fifo = RxFIFO(capacity=capacity)
        for item in items:
            fifo.push(item)
        assert fifo.pushed == len(items)
        assert len(fifo) == min(len(items), capacity)
        assert fifo.dropped == max(len(items) - capacity, 0)


class TestPackWords:
    def test_one_bit_packing(self):
        assert pack_words(np.array([1, 0, 1, 1]), 1) == [0b1101]

    def test_eight_bit_packing(self):
        words = pack_words(np.array([0x11, 0x22, 0x33, 0x44, 0x55]), 8)
        assert words == [0x44332211, 0x55]

    def test_cross_word_boundary(self):
        words = pack_words(np.array([0x3FF, 0x3FF, 0x3FF, 0x3FF]), 10)
        assert len(words) == 2
        assert words[0] == 0xFFFFFFFF

    def test_value_range_checked(self):
        with pytest.raises(SoCError):
            pack_words(np.array([4]), 2)

    def test_bits_validated(self):
        with pytest.raises(SoCError):
            pack_words(np.array([1]), 0)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=0, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_unpack_roundtrip_property(self, values):
        words = pack_words(np.array(values, dtype=np.int64), 8)
        recovered = []
        for index in range(len(values)):
            word, offset = divmod(index * 8, 32)
            recovered.append((words[word] >> offset) & 0xFF)
        assert recovered == values
