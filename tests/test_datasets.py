"""Tests for the synthetic Car-Hacking dataset, features, splits, stats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.can.log import CANLogRecord
from repro.datasets.carhacking import (
    CarHackingCapture,
    default_vehicle,
    generate_capture,
)
from repro.datasets.features import (
    BitFeatureEncoder,
    ByteFeatureEncoder,
    FeatureEncoder,
    WindowFeatureEncoder,
)
from repro.datasets.splits import train_val_test_split
from repro.datasets.stats import capture_summary, id_inventory, message_rate
from repro.errors import DatasetError
from repro.utils.bitops import bits_to_int


class TestGenerator:
    def test_deterministic(self):
        a = generate_capture("dos", duration=1.5, seed=5)
        b = generate_capture("dos", duration=1.5, seed=5)
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a.records[:100], b.records[:100]))

    def test_seed_changes_capture(self):
        a = generate_capture("dos", duration=1.5, seed=5)
        b = generate_capture("dos", duration=1.5, seed=6)
        assert any(x != y for x, y in zip(a.records[:100], b.records[:100]))

    def test_dos_uses_id_zero(self, dos_capture):
        attack_ids = {r.can_id for r in dos_capture.records if r.is_attack}
        assert attack_ids == {0x000}

    def test_fuzzy_ids_random(self, fuzzy_capture):
        attack_ids = {r.can_id for r in fuzzy_capture.records if r.is_attack}
        assert len(attack_ids) > 100

    def test_normal_capture_all_regular(self, normal_capture):
        assert normal_capture.num_attack == 0

    def test_attacks_only_in_windows(self, dos_capture):
        for record in dos_capture.records:
            if record.is_attack:
                assert any(
                    start - 0.01 <= record.timestamp <= end + 0.01
                    for start, end in dos_capture.attack_windows
                )

    def test_vehicle_id_population(self, normal_capture):
        observed = {r.can_id for r in normal_capture.records}
        expected = {spec.can_id for spec in default_vehicle()}
        assert observed == expected

    def test_unknown_attack_rejected(self):
        with pytest.raises(DatasetError):
            generate_capture("not-an-attack", duration=1.0)

    def test_spoofing_capture(self):
        capture = generate_capture("rpm", duration=1.5, seed=2, initial_gap=0.2, attack_burst=1.0)
        attack_ids = {r.can_id for r in capture.records if r.is_attack}
        assert attack_ids == {0x316}

    def test_csv_roundtrip(self, dos_capture, tmp_path):
        path = dos_capture.save_csv(tmp_path / "dos.csv")
        loaded = CarHackingCapture.load_csv(path, attack="dos")
        assert len(loaded) == len(dos_capture)
        assert loaded.num_attack == dos_capture.num_attack


class TestBitFeatureEncoder:
    def test_num_features(self):
        assert BitFeatureEncoder().num_features == 79

    def test_encoding_is_binary_and_invertible(self):
        record = CANLogRecord(0.0, 0x316, 8, bytes(range(8)), "R")
        vec = BitFeatureEncoder().encode_frame(record)
        assert set(np.unique(vec)) <= {0.0, 1.0}
        assert bits_to_int(vec[:11].astype(int)) == 0x316
        assert bits_to_int(vec[11:15].astype(int)) == 8

    def test_short_payload_zero_padded(self):
        record = CANLogRecord(0.0, 0x1, 2, b"\xff\xff", "R")
        vec = BitFeatureEncoder().encode_frame(record)
        assert vec[15:31].sum() == 16  # two 0xff bytes
        assert vec[31:].sum() == 0

    def test_labels(self, dos_capture):
        X, y = BitFeatureEncoder().encode(dos_capture.records[:500])
        assert X.shape == (500, 79)
        flags = [1 if r.is_attack else 0 for r in dos_capture.records[:500]]
        np.testing.assert_array_equal(y, flags)

    def test_empty_capture_encodes_to_empty(self):
        # Empty captures (e.g. a fully-dropped flood window) encode to
        # correctly-shaped empty arrays on every encoder path.
        for encoder in (
            BitFeatureEncoder(),
            ByteFeatureEncoder(),
            WindowFeatureEncoder(ByteFeatureEncoder(), window=4),
        ):
            X, y = encoder.encode([])
            assert X.shape == (0, encoder.num_features)
            assert X.dtype == np.float64
            assert y.shape == (0,)
            assert y.dtype == np.int64

    def test_empty_capture_base_fallback_and_sequences(self):
        class ScalarOnly(BitFeatureEncoder):
            def encode_batch(self, capture):
                return FeatureEncoder.encode_batch(self, capture)

        X, _ = ScalarOnly().encode([])
        assert X.shape == (0, 79)
        enc = WindowFeatureEncoder(ByteFeatureEncoder(), window=4)
        seq, labels = enc.encode_sequences([])
        assert seq.shape == (0, 4, 11)
        assert labels.shape == (0,)


class TestByteFeatureEncoder:
    def test_range_and_shape(self, dos_capture):
        X, _ = ByteFeatureEncoder().encode(dos_capture.records[:200])
        assert X.shape == (200, 10)
        assert X.min() >= 0.0 and X.max() <= 1.0

    def test_id_normalisation(self):
        record = CANLogRecord(0.0, 0x7FF, 0, b"", "R")
        vec = ByteFeatureEncoder().encode_frame(record)
        assert vec[0] == 1.0


class TestWindowFeatureEncoder:
    def test_window_shapes(self, dos_capture):
        enc = WindowFeatureEncoder(ByteFeatureEncoder(), window=4)
        X, y = enc.encode(dos_capture.records[:100])
        assert X.shape == (100, 4 * 11)  # 10 features + interarrival

    def test_sequences_shape(self, dos_capture):
        enc = WindowFeatureEncoder(ByteFeatureEncoder(), window=4)
        X, y = enc.encode_sequences(dos_capture.records[:50])
        assert X.shape == (50, 4, 11)

    def test_newest_frame_in_last_slot(self, dos_capture):
        records = dos_capture.records[:20]
        enc = WindowFeatureEncoder(ByteFeatureEncoder(), window=3, include_interarrival=False)
        X, _ = enc.encode(records)
        current = ByteFeatureEncoder().encode_frame(records[10])
        np.testing.assert_allclose(X[10, -10:], current)

    def test_left_padding_zeroes(self, dos_capture):
        enc = WindowFeatureEncoder(ByteFeatureEncoder(), window=4, include_interarrival=False)
        X, _ = enc.encode(dos_capture.records[:10])
        assert X[0, : 3 * 10].sum() == 0  # first frame: no history

    def test_single_frame_encode_rejected(self, dos_capture):
        with pytest.raises(DatasetError):
            WindowFeatureEncoder().encode_frame(dos_capture.records[0])

    def test_bad_window(self):
        with pytest.raises(DatasetError):
            WindowFeatureEncoder(window=0)


class TestSplits:
    def test_partition_complete(self, rng):
        X = rng.normal(size=(100, 3))
        y = (rng.random(100) < 0.3).astype(int)
        splits = train_val_test_split(X, y, seed=1)
        assert sum(splits.sizes) == 100

    def test_stratification_preserves_ratio(self, rng):
        X = rng.normal(size=(1000, 2))
        y = (rng.random(1000) < 0.2).astype(int)
        splits = train_val_test_split(X, y, seed=1)
        overall = y.mean()
        for part in (splits.y_train, splits.y_val, splits.y_test):
            assert abs(part.mean() - overall) < 0.05

    def test_deterministic(self, rng):
        X = rng.normal(size=(50, 2))
        y = (rng.random(50) < 0.5).astype(int)
        a = train_val_test_split(X, y, seed=3)
        b = train_val_test_split(X, y, seed=3)
        np.testing.assert_array_equal(a.x_train, b.x_train)

    def test_no_leakage_between_splits(self, rng):
        X = np.arange(60, dtype=float).reshape(60, 1)
        y = np.tile([0, 1], 30)
        splits = train_val_test_split(X, y, seed=2)
        all_rows = np.concatenate([splits.x_train, splits.x_val, splits.x_test]).reshape(-1)
        assert sorted(all_rows.tolist()) == list(range(60))

    def test_fraction_validation(self, rng):
        with pytest.raises(DatasetError):
            train_val_test_split(np.zeros((10, 1)), np.zeros(10), fractions=(0.5, 0.5, 0.5))

    def test_length_mismatch(self):
        with pytest.raises(DatasetError):
            train_val_test_split(np.zeros((10, 1)), np.zeros(9))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_unstratified_partition_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 200))
        X = rng.normal(size=(n, 2))
        y = rng.integers(0, 2, size=n)
        splits = train_val_test_split(X, y, seed=seed, stratify=False)
        assert sum(splits.sizes) == n


class TestStats:
    def test_summary_fields(self, dos_capture):
        summary = capture_summary(dos_capture.records)
        assert summary["total_frames"] == len(dos_capture)
        assert summary["attack_frames"] == dos_capture.num_attack
        assert 0 < summary["attack_fraction"] < 1
        assert summary["mean_rate_fps"] > 500

    def test_inventory_periods(self, normal_capture):
        inventory = id_inventory(normal_capture.records)
        spec_periods = {s.can_id: s.period for s in default_vehicle()}
        for can_id, info in inventory.items():
            if info["count"] > 20:
                assert info["mean_period"] == pytest.approx(spec_periods[can_id], rel=0.2)

    def test_message_rate_spikes_during_dos(self, dos_capture):
        times, rates = message_rate(dos_capture.records, window=0.2)
        in_attack = np.zeros(len(times), dtype=bool)
        for start, end in dos_capture.attack_windows:
            in_attack |= (times >= start) & (times < end)
        assert rates[in_attack].mean() > 1.5 * rates[~in_attack].mean()

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            capture_summary([])
