"""Shared fixtures.

Anything that trains or simulates at scale is session-scoped and sized
to keep the full suite fast: captures are a few seconds of bus time,
training runs are a handful of epochs.  Tests assert on *structure and
invariants* (bit-exactness, monotonicity, conservation), not on
squeezing out the paper's exact accuracy — the benchmarks do that at
full size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.carhacking import CarHackingCapture, generate_capture
from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.finn.ipgen import AcceleratorIP, compile_model
from repro.models.qmlp import QMLPConfig
from repro.training.pipeline import IDSModelResult, train_ids_model
from repro.training.trainer import TrainConfig


@pytest.fixture(scope="session")
def dos_capture() -> CarHackingCapture:
    """A small DoS capture (a few thousand frames)."""
    return generate_capture(
        "dos", duration=3.0, seed=1234, initial_gap=0.2, attack_burst=1.2, attack_gap=0.8
    )


@pytest.fixture(scope="session")
def fuzzy_capture() -> CarHackingCapture:
    """A small Fuzzy capture."""
    return generate_capture(
        "fuzzy", duration=3.0, seed=1234, initial_gap=0.2, attack_burst=1.2, attack_gap=0.8
    )


@pytest.fixture(scope="session")
def normal_capture() -> CarHackingCapture:
    """An attack-free capture."""
    return generate_capture(None, duration=2.0, seed=1234)


@pytest.fixture(scope="session")
def tiny_model_config() -> QMLPConfig:
    """A small 4-bit QMLP used by compile-oriented tests."""
    return QMLPConfig(hidden=(32, 16), weight_bits=4, act_bits=4, seed=7)


@pytest.fixture(scope="session")
def trained_dos(dos_capture, tiny_model_config) -> IDSModelResult:
    """A trained (small) DoS detector shared across tests."""
    return train_ids_model(
        "dos",
        model_config=tiny_model_config,
        train_config=TrainConfig(epochs=6, seed=3),
        capture=dos_capture,
        seed=11,
    )


@pytest.fixture(scope="session")
def trained_fuzzy(fuzzy_capture, tiny_model_config) -> IDSModelResult:
    """A trained (small) Fuzzy detector shared across tests."""
    return train_ids_model(
        "fuzzy",
        model_config=tiny_model_config,
        train_config=TrainConfig(epochs=6, seed=3),
        capture=fuzzy_capture,
        seed=11,
    )


@pytest.fixture(scope="session")
def dos_ip(trained_dos) -> AcceleratorIP:
    """A compiled, verified DoS accelerator."""
    return compile_model(trained_dos.model, name="test-dos-ip", target_fps=1e6)


@pytest.fixture(scope="session")
def experiment_context(dos_capture, fuzzy_capture) -> ExperimentContext:
    """A context with pre-seeded small captures for experiment tests."""
    context = ExperimentContext(ExperimentSettings(duration=3.0, epochs=5, seed=9))
    context._captures["dos"] = dos_capture
    context._captures["fuzzy"] = fuzzy_capture
    return context


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(0)
