"""The wire-level fault layer: confinement, bit-exactness, degradation.

The contract under test (see ``repro.can.faults``): a seed-derived
:class:`WireFaultModel` corrupts transmissions identically in both bus
engines, walks each node's TEC through error-active -> error-passive ->
bus-off with ISO +8/-1 semantics, and degrades the downstream IDS stack
gracefully — corrupted frames are flagged and excluded, never silently
scored.  Plus the input-validation satellite: every fault knob (and the
pre-existing ``ExecOptions`` / ``Campaign.shifted`` knobs) rejects
out-of-range values with a :class:`ConfigError` naming the value.
"""

import pickle

import numpy as np
import pytest

from repro.can.attacks import BusOffAttacker, DoSAttacker, FuzzyAttacker
from repro.can.campaign import SCENARIOS, compile_campaign
from repro.can.faults import (
    BUS_OFF_RECOVERY_BITS,
    TargetedFault,
    WireFaultModel,
    resolve_bus_faults,
)
from repro.can.log import CaptureArray
from repro.datasets.carhacking import build_vehicle_bus
from repro.datasets.features import BitFeatureEncoder
from repro.errors import ConfigError, SoCError
from repro.experiments.noise import render_noise_sweep, run_noise_sweep
from repro.fleet import ExecOptions, FleetSpec, VehicleSpec
from repro.fleet.aggregate import FleetSlice
from repro.soc.ecu import IDSEnabledECU
from repro.soc.gateway import build_campaign_gateway


def _noisy_topology(seed: int):
    """A vehicle bus with enough traffic mix to exercise retransmission."""
    bus = build_vehicle_bus(vehicle_seed=seed)
    bus.attach(DoSAttacker([(0.2, 0.7)], interval=0.002, seed=seed))
    bus.attach(FuzzyAttacker([(0.6, 1.1)], seed=seed + 1))
    return bus


def _assert_faulted_match(records, result):
    """Event-engine records vs one ArbitrationResult, fault fields included."""
    capture = result.capture
    assert len(records) == len(capture)
    np.testing.assert_array_equal(
        np.array([r.timestamp for r in records]), capture.timestamps
    )
    np.testing.assert_array_equal(
        np.array([r.frame.can_id for r in records]), capture.can_ids
    )
    np.testing.assert_array_equal(
        np.array([r.queued_at for r in records]), result.queued_at
    )
    np.testing.assert_array_equal(
        np.array([r.started_at for r in records]), result.started_at
    )
    np.testing.assert_array_equal(np.array([r.source for r in records]), result.sources)
    np.testing.assert_array_equal(
        np.array([r.corrupted for r in records]), result.corrupted_mask
    )
    np.testing.assert_array_equal(
        np.array([r.retries for r in records]), result.retry_counts
    )
    np.testing.assert_array_equal(
        np.array([r.bus_off for r in records]), result.bus_off_mask
    )


class TestWireFaultModelValidation:
    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"bit_error_rate": -0.1}, "-0.1"),
            ({"bit_error_rate": 1.0}, "1.0"),
            ({"bit_error_rate": float("nan")}, "nan"),
            ({"error_frame_bits": -1}, "-1"),
            ({"tec_error_passive": 0}, "0"),
            ({"tec_error_passive": 128, "tec_bus_off": 100}, "100"),
            ({"recovery": "sometimes"}, "sometimes"),
            ({"max_attempts": 0}, "0"),
        ],
    )
    def test_rejects_out_of_range_naming_the_value(self, kwargs, fragment):
        with pytest.raises(ConfigError, match=fragment):
            WireFaultModel(seed=0, **kwargs)

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"start": float("nan"), "end": 1.0}, "finite"),
            ({"start": 0.0, "end": float("inf")}, "finite"),
            ({"start": 2.0, "end": 1.0}, "2.0"),
            ({"start": 0.0, "end": 1.0, "attempts": 0}, "0"),
            ({"start": 0.0, "end": 1.0, "can_id": -1}, "-1"),
        ],
    )
    def test_targeted_fault_rejects_bad_windows(self, kwargs, fragment):
        with pytest.raises(ConfigError, match=fragment):
            TargetedFault(**kwargs)

    def test_plan_rejects_nonpositive_bitrate(self):
        model = WireFaultModel(seed=0, bit_error_rate=1e-4)
        empty = np.array([], dtype=np.float64)
        with pytest.raises(ConfigError, match="bitrate"):
            model.plan(
                empty,
                np.array([], dtype=np.int64),
                np.array([], dtype=np.int64),
                np.array([], dtype="U1"),
                0.0,
            )

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"timeout_s": 0.0}, "0.0"),
            ({"timeout_s": -2.5}, "-2.5"),
            ({"max_retries": -1}, "-1"),
        ],
    )
    def test_exec_options_reject_out_of_range(self, kwargs, fragment):
        with pytest.raises(ConfigError, match=fragment):
            ExecOptions(**kwargs)

    @pytest.mark.parametrize("offset", [-0.5, float("nan"), float("inf")])
    def test_campaign_shifted_rejects_bad_offsets(self, offset):
        campaign = SCENARIOS.build("baseline-dos")
        with pytest.raises(ConfigError, match="offset"):
            campaign.shifted(offset)

    def test_vehicle_spec_rejects_non_model_faults(self):
        with pytest.raises(ConfigError, match="wire_faults"):
            VehicleSpec(
                index=0, scenario="baseline-dos", vehicle_seed=1, wire_faults="noisy"
            )

    def test_fleet_spec_rejects_non_model_faults(self):
        with pytest.raises(ConfigError, match="wire_faults"):
            FleetSpec(name="f", size=2, scenarios=("baseline-dos",), wire_faults=1e-4)


class TestFaultPlanDeterminism:
    def _schedule(self, n=200):
        rng = np.random.default_rng(3)
        releases = np.sort(rng.uniform(0.0, 1.0, size=n))
        can_ids = rng.integers(0, 0x800, size=n)
        wire_bits = rng.integers(47, 135, size=n)
        sources = np.array([f"ecu-{k % 7}" for k in range(n)])
        return releases, can_ids, wire_bits, sources

    def test_same_inputs_same_plan(self):
        model = WireFaultModel(seed=11, bit_error_rate=2e-3)
        args = self._schedule()
        first = model.plan(*args, 500_000.0)
        second = model.plan(*args, 500_000.0)
        np.testing.assert_array_equal(first.attempts, second.attempts)
        np.testing.assert_array_equal(first.transmit, second.transmit)
        np.testing.assert_array_equal(first.queued, second.queued)
        np.testing.assert_array_equal(first.tec_after, second.tec_after)

    def test_scoped_and_channel_copies_draw_independent_streams(self):
        base = WireFaultModel(seed=11, bit_error_rate=5e-3)
        args = self._schedule()
        plain = base.plan(*args, 500_000.0)
        scoped = base.scoped("vehicle[3]").plan(*args, 500_000.0)
        channel = base.for_channel("body").plan(*args, 500_000.0)
        assert not np.array_equal(plain.attempts, scoped.attempts)
        assert not np.array_equal(plain.attempts, channel.attempts)
        assert not np.array_equal(scoped.attempts, channel.attempts)

    def test_model_is_hashable_and_picklable(self):
        model = WireFaultModel(
            seed=2, bit_error_rate=1e-4, targeted=(TargetedFault(0.0, 1.0),)
        )
        assert {model: "cached"}[pickle.loads(pickle.dumps(model))] == "cached"

    def test_zero_ber_no_targets_plan_is_empty(self):
        args = self._schedule()
        plan = WireFaultModel(seed=0).plan(*args, 500_000.0)
        assert plan.clean
        assert plan.total_attempts == 0
        assert plan.node_states == {}


class TestEngineEquivalenceUnderFaults:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("ber", [5e-4, 2e-3])
    def test_noisy_topology_bit_exact(self, seed, ber):
        """The randomized CI sweep with BER > 0: both engines, all fields."""
        duration = 1.5
        model = WireFaultModel(seed=seed, bit_error_rate=ber)
        records = _noisy_topology(seed).run(duration, faults=model)
        result = _noisy_topology(seed).capture(duration, faults=model)
        assert records, "topology must produce traffic"
        assert any(r.corrupted for r in records), "noise must actually bite"
        _assert_faulted_match(records, result)

    def test_targeted_faults_bit_exact(self):
        duration = 1.5
        model = WireFaultModel(seed=4, bit_error_rate=1e-4).with_targets(
            [TargetedFault(0.3, 0.9, attempts=2, can_id=0x43F)]
        )
        records = _noisy_topology(4).run(duration, faults=model)
        result = _noisy_topology(4).capture(duration, faults=model)
        assert any(r.corrupted and r.frame.can_id == 0x43F for r in records)
        _assert_faulted_match(records, result)

    def test_simulate_arbitration_takes_the_model_directly(self):
        from repro.can.fastbus import build_schedule, simulate_arbitration

        bus = _noisy_topology(3)
        schedule = build_schedule(bus.sources, 1.0)
        model = WireFaultModel(seed=3, bit_error_rate=2e-3)
        result = simulate_arbitration(schedule, bus.bitrate, 1.0, faults=model)
        assert result.corrupted_mask.any()
        assert len(result.capture) == result.corrupted_mask.shape[0]

    def test_zero_fault_model_is_clean_path_identity(self):
        """A no-op model must not perturb the simulation by one bit."""
        duration = 1.0
        clean = _noisy_topology(7).run(duration)
        gated = _noisy_topology(7).run(duration, faults=WireFaultModel(seed=99))
        assert len(clean) == len(gated)
        for before, after in zip(clean, gated):
            assert before.timestamp == after.timestamp
            assert before.frame.can_id == after.frame.can_id
            assert before.queued_at == after.queued_at
            assert not after.corrupted and after.retries == 0 and not after.bus_off

    def test_zero_fault_model_columnar_identity(self):
        duration = 1.0
        clean = _noisy_topology(7).capture(duration)
        gated = _noisy_topology(7).capture(duration, faults=WireFaultModel(seed=99))
        np.testing.assert_array_equal(
            clean.capture.timestamps, gated.capture.timestamps
        )
        np.testing.assert_array_equal(clean.capture.can_ids, gated.capture.can_ids)
        assert not gated.corrupted_mask.any()
        assert not gated.retry_counts.any()

    def test_corrupted_attempts_add_wire_time(self):
        """Error frames and retransmissions consume bus time: with the
        same offered load, the noisy run finishes frames later."""
        duration = 1.0
        clean = _noisy_topology(5).capture(duration)
        noisy = _noisy_topology(5).capture(
            duration, faults=WireFaultModel(seed=5, bit_error_rate=5e-3)
        )
        assert noisy.corrupted_mask.sum() > 0
        assert noisy.capture.timestamps.max() >= clean.capture.timestamps.max()
        retried = noisy.retry_counts[~noisy.corrupted_mask]
        assert int(retried.sum()) > 0, "successful rows must record their retries"


class TestFaultConfinement:
    def _victim_schedule(self, n=60, period=0.005):
        releases = np.arange(n) * period
        can_ids = np.full(n, 0x43F, dtype=np.int64)
        wire_bits = np.full(n, 111, dtype=np.int64)
        sources = np.full(n, "victim")
        return releases, can_ids, wire_bits, sources

    def test_tec_walks_into_bus_off(self):
        """Cho–Shin arithmetic: +8 per error frame, -1 per success, so a
        victim corrupted every transmission crosses 128 then 256."""
        model = WireFaultModel(seed=0, recovery="none").with_targets(
            [TargetedFault(0.0, 10.0, attempts=4, can_id=0x43F)]
        )
        plan = model.plan(*self._victim_schedule(), 500_000.0)
        state = plan.node_states["victim"]
        assert state.error_passive
        assert state.bus_off
        assert state.peak_tec >= 256
        assert state.bus_off_at is not None
        # The trajectory is a strict climb: every queued row before the
        # bus-off instant charges net +8*attempts - 1.
        queued_tecs = plan.tec_after[plan.queued & plan.transmit]
        assert np.all(np.diff(queued_tecs) == 31)

    def test_recovery_none_silences_the_node_forever(self):
        model = WireFaultModel(seed=0, recovery="none").with_targets(
            [TargetedFault(0.0, 0.1, attempts=8, can_id=0x43F)]
        )
        plan = model.plan(*self._victim_schedule(), 500_000.0)
        fatal = int(plan.bus_off_rows[0])
        assert not plan.queued[fatal + 1 :].any()
        assert not plan.transmit[fatal:].any()

    def test_recovery_auto_requeues_after_128x11_bits(self):
        releases, can_ids, wire_bits, sources = self._victim_schedule(
            n=400, period=0.001
        )
        model = WireFaultModel(seed=0, recovery="auto").with_targets(
            [TargetedFault(0.0, 0.05, attempts=8, can_id=0x43F)]
        )
        plan = model.plan(releases, can_ids, wire_bits, sources, 500_000.0)
        state = plan.node_states["victim"]
        assert state.recoveries >= 1
        fatal = int(plan.bus_off_rows[0])
        silence = BUS_OFF_RECOVERY_BITS / 500_000.0
        silenced = (releases > releases[fatal]) & (
            releases < releases[fatal] + silence
        )
        assert not plan.queued[silenced].any(), "bus-off means bus silence"
        assert plan.queued[releases >= releases[fatal] + silence].any()

    def test_bus_run_flags_bus_off_and_silences_victim(self):
        bus = build_vehicle_bus(vehicle_seed=0)
        model = WireFaultModel(seed=1, recovery="none").with_targets(
            [TargetedFault(0.1, 2.0, attempts=8, can_id=0x43F)]
        )
        records = bus.run(2.0, faults=model)
        corrupted = [r for r in records if r.corrupted]
        assert corrupted and all(r.frame.can_id == 0x43F for r in corrupted)
        fatal = [r for r in records if r.bus_off]
        assert len(fatal) == 1
        after = fatal[0].timestamp
        assert not any(
            r.frame.can_id == 0x43F and r.timestamp > after and not r.corrupted
            for r in records
        )


class TestBusOffAttacker:
    def test_emits_no_frames_only_faults(self):
        attacker = BusOffAttacker([(0.1, 0.9)], target_id=0x43F)
        assert list(attacker.frames(10.0)) == []
        assert len(attacker.frames_array(10.0)) == 0
        faults = attacker.targeted_faults()
        assert faults and all(f.can_id == 0x43F for f in faults)

    def test_resolve_folds_attached_attackers_into_the_model(self):
        bus = build_vehicle_bus(vehicle_seed=0)
        bus.attach(BusOffAttacker([(0.2, 0.8)], target_id=0x43F))
        resolved = resolve_bus_faults(bus.sources, faults=None)
        assert resolved is not None
        assert any(f.can_id == 0x43F for f in resolved.targeted)
        ambient = WireFaultModel(seed=3, bit_error_rate=1e-4)
        merged = resolve_bus_faults(bus.sources, faults=ambient)
        assert merged.bit_error_rate == 1e-4
        assert any(f.can_id == 0x43F for f in merged.targeted)

    def test_clean_bus_resolves_to_none(self):
        bus = build_vehicle_bus(vehicle_seed=0)
        assert resolve_bus_faults(bus.sources, faults=None) is None

    def test_inert_model_resolves_to_none(self):
        bus = build_vehicle_bus(vehicle_seed=0)
        inert = WireFaultModel(seed=9)
        assert resolve_bus_faults(bus.sources, faults=inert) is None


class TestBusOffScenarios:
    def test_registered(self):
        assert "bus-off-victim" in SCENARIOS
        assert "bus-off-under-flood" in SCENARIOS

    def test_bus_off_phase_does_not_inject_frames(self):
        campaign = SCENARIOS.build("bus-off-victim")
        (phase,) = campaign.phases
        assert phase.kind == "bus-off"
        assert not phase.injects

    def test_victim_scenario_forces_bus_off(self):
        campaign = SCENARIOS.build("bus-off-victim", duration=3.0)
        buses = compile_campaign(campaign, vehicle_seed=0)
        records = buses["powertrain"].run(campaign.duration)
        corrupted = [r for r in records if r.corrupted]
        assert corrupted and all(r.frame.can_id == 0x43F for r in corrupted)
        assert any(r.bus_off for r in records), "the victim must reach bus-off"
        start, end = campaign.phases[0].window
        assert all(start <= r.timestamp for r in corrupted)

    def test_under_flood_scenario_jams_both_channels(self):
        campaign = SCENARIOS.build("bus-off-under-flood", duration=3.0)
        buses = compile_campaign(campaign, vehicle_seed=0)
        flood = buses["powertrain"].capture(campaign.duration)
        jammed = buses["body"].capture(campaign.duration)
        assert (flood.capture.can_ids == 0x000).sum() > 0
        assert not flood.corrupted_mask.any(), "the flood channel is noise-free"
        victims = jammed.capture.can_ids[jammed.corrupted_mask]
        assert victims.size and np.all(victims == 0x316)
        assert jammed.bus_off_mask.sum() >= 1


class TestGracefulDegradation:
    def test_stream_session_excludes_corrupted_rows(self, dos_ip, dos_capture):
        capture = CaptureArray.from_records(dos_capture.records[:2000])
        corrupted = np.zeros(len(capture), dtype=bool)
        corrupted[::7] = True
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        session = ecu.open_stream(capture, corrupted=corrupted)
        assert session.corrupted_frames == int(corrupted.sum())
        kept = set(session.kept_indices.tolist())
        assert kept.isdisjoint(np.flatnonzero(corrupted).tolist())
        while not session.done:
            session.step()
        report = session.finish()
        assert report.corrupted_frames == int(corrupted.sum())
        assert report.num_frames == len(capture)

    def test_all_corrupted_capture_refuses_to_scan(self, dos_ip, dos_capture):
        capture = CaptureArray.from_records(dos_capture.records[:64])
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        with pytest.raises(SoCError, match="corrupted"):
            ecu.open_stream(capture, corrupted=np.ones(len(capture), dtype=bool))

    def test_mask_shape_is_validated(self, dos_ip, dos_capture):
        capture = CaptureArray.from_records(dos_capture.records[:64])
        ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), seed=4)
        with pytest.raises(SoCError, match="mask"):
            ecu.open_stream(capture, corrupted=np.zeros(7, dtype=bool))

    def test_gateway_counts_and_conserves_frames(self, dos_ip):
        campaign = SCENARIOS.build("bus-off-victim", duration=2.0)
        gateway = build_campaign_gateway(dos_ip, campaign, vehicle_seed=3, ecu_seed=6)
        report = gateway.monitor(
            duration=campaign.duration, truth=campaign.truth_windows()
        )
        assert report.total_corrupted > 0
        assert report.total_retransmissions >= 0
        channel = next(r for r in report.channels if r.name == "powertrain")
        assert channel.corrupted_frames == report.total_corrupted
        ecu = channel.report
        assert ecu.corrupted_frames == channel.corrupted_frames
        # Every frame the wire delivered is accounted for: serviced,
        # dropped by the RX FIFO, or destroyed by an error frame.
        assert ecu.num_frames == len(channel.capture)
        assert (
            ecu.num_processed + ecu.fifo_dropped + ecu.corrupted_frames
            == ecu.num_frames
        )

    def test_gateway_ambient_noise_engines_agree(self, dos_ip):
        campaign = SCENARIOS.build("baseline-dos", duration=2.0)
        model = WireFaultModel(seed=5, bit_error_rate=5e-4)
        counters = {}
        for engine in ("columnar", "event"):
            gateway = build_campaign_gateway(
                dos_ip, campaign, vehicle_seed=3, ecu_seed=6
            )
            report = gateway.monitor(
                duration=campaign.duration, engine=engine, faults=model
            )
            counters[engine] = (
                report.total_corrupted,
                report.total_retransmissions,
                report.total_bus_off,
                tuple(
                    tuple(r.report.predictions.tolist())
                    for r in report.channels
                    if r.report is not None
                ),
            )
        assert counters["columnar"][0] > 0
        assert counters["columnar"] == counters["event"]


class TestFleetCounters:
    def test_merge_adds_wire_fault_counters(self):
        left = FleetSlice(vehicles=1, frames_corrupted=3, retransmissions=2)
        right = FleetSlice(vehicles=1, frames_corrupted=5, bus_off_events=1)
        merged = left.merge(right)
        assert merged.frames_corrupted == 8
        assert merged.retransmissions == 2
        assert merged.bus_off_events == 1

    def test_json_round_trip_and_old_checkpoint_compat(self):
        full = FleetSlice(
            vehicles=2,
            frames_offered=10,
            frames_corrupted=4,
            retransmissions=3,
            bus_off_events=1,
        )
        assert FleetSlice.from_json_dict(full.as_json_dict()) == full
        legacy = {
            key: value
            for key, value in full.as_json_dict().items()
            if key
            not in ("frames_corrupted", "retransmissions", "bus_off_events")
        }
        restored = FleetSlice.from_json_dict(legacy)
        assert restored.frames_corrupted == 0
        assert restored.bus_off_events == 0

    def test_fleet_spec_threads_model_to_every_vehicle(self):
        model = WireFaultModel(seed=7, bit_error_rate=1e-4)
        spec = FleetSpec(
            name="noisy",
            size=3,
            scenarios=("baseline-dos",),
            wire_faults=model,
        )
        assert all(spec.vehicle(k).wire_faults == model for k in range(3))


class TestNoiseSweep:
    def test_e12_sweeps_gracefully(self, experiment_context):
        result = run_noise_sweep(
            experiment_context,
            bers=(0.0, 1e-3),
            scenario="baseline-dos",
            duration=2.0,
        )
        clean = result.point(0.0)
        noisy = result.point(1e-3)
        assert clean.frames_corrupted == 0
        assert noisy.frames_corrupted > 0
        for point in result.points:
            assert np.isfinite(point.f1)
            assert np.isfinite(point.p99_latency_s)
            assert 0.0 <= point.corruption_rate < 1.0
        rendered = render_noise_sweep(result).render()
        assert "E12" in rendered and "baseline-dos" in rendered

    def test_e12_engines_agree(self, experiment_context):
        columnar = run_noise_sweep(
            experiment_context,
            bers=(1e-3,),
            scenario="baseline-dos",
            duration=2.0,
            engine="columnar",
        )
        event = run_noise_sweep(
            experiment_context,
            bers=(1e-3,),
            scenario="baseline-dos",
            duration=2.0,
            engine="event",
        )
        assert columnar.points == event.points
