"""The columnar bus engine: bit-exactness against the event engine.

The contract under test (see ``repro.can.fastbus``): the vectorised
schedule emitters plus the arbitration-replay kernel must reproduce
``BusSimulator.run`` *exactly* — same winners, same float timestamps,
same capture-horizon drops — across mixed periodic/attacker topologies,
bitrates, horizon clipping and quiet buses.  Plus the satellites: the
vectorised wire-length kernel vs ``CANFrame.bit_length``, the columnar
``bus_load`` overload, ``CaptureArray.from_bus_records``, and the
picklable process-pool scenario workers.
"""

import pickle

import numpy as np
import pytest

from repro.can.attacks import (
    BurstDoSAttacker,
    DoSAttacker,
    FuzzyAttacker,
    MasqueradeAttacker,
    RampDoSAttacker,
    ReplayAttacker,
    SpoofingAttacker,
    SuspensionAttacker,
)
from repro.can.bus import BusSimulator, bus_load
from repro.can.campaign import SCENARIOS
from repro.can.fastbus import (
    ScheduleArray,
    build_schedule,
    release_grid,
    schedule_from_frames,
    simulate_arbitration,
    standard_wire_bits,
)
from repro.can.frame import CANFrame
from repro.can.log import CaptureArray, records_from_bus
from repro.can.node import PeriodicSender, ScheduledFrame, sensor_payload
from repro.datasets.carhacking import build_vehicle_bus
from repro.errors import CANError
from repro.experiments.campaigns import (
    _SweepConfig,
    _SweepTask,
    _sweep_one_scenario,
    run_campaign_sweep,
    scenario_detector,
)
from repro.fleet import ExecOptions
from repro.soc.gateway import build_campaign_gateway


class _OneShot:
    """Scalar-only source (no ``frames_array``): exercises the fallback."""

    def __init__(self, entries, label="R", source="oneshot"):
        self.entries = entries
        self.label = label
        self.source = source

    def frames(self, until):
        for release, frame in self.entries:
            if release < until:
                yield ScheduledFrame(release, frame, self.label, self.source)


def _assert_records_match(records, result):
    """Event-engine records vs one ArbitrationResult, field by field."""
    capture = result.capture
    assert len(records) == len(capture)
    np.testing.assert_array_equal(
        np.array([r.timestamp for r in records]), capture.timestamps
    )
    np.testing.assert_array_equal(
        np.array([r.frame.can_id for r in records]), capture.can_ids
    )
    np.testing.assert_array_equal(
        np.array([r.queued_at for r in records]), result.queued_at
    )
    np.testing.assert_array_equal(
        np.array([r.started_at for r in records]), result.started_at
    )
    np.testing.assert_array_equal(
        np.array([1 if r.label == "T" else 0 for r in records]), capture.labels
    )
    np.testing.assert_array_equal(np.array([r.source for r in records]), result.sources)
    for index, record in enumerate(records):
        assert record.frame.data == capture.payloads[index, : capture.dlcs[index]].tobytes()
        assert record.frame.bit_length() == result.wire_bits[index]


class TestWireBits:
    def test_matches_frame_bit_length_across_random_frames(self):
        rng = np.random.default_rng(7)
        ids = rng.integers(0, 0x800, size=200)
        dlcs = rng.integers(0, 9, size=200)
        payloads = rng.integers(0, 256, size=(200, 8)).astype(np.uint8)
        cols = np.arange(8)
        payloads[cols >= dlcs[:, None]] = 0
        got = standard_wire_bits(ids, dlcs, payloads)
        for k in range(200):
            frame = CANFrame(int(ids[k]), payloads[k, : int(dlcs[k])].tobytes())
            assert got[k] == frame.bit_length(), (ids[k], dlcs[k])

    def test_duplicate_rows_collapse_to_one_computation(self):
        ids = np.full(10_000, 0x000, dtype=np.int64)
        dlcs = np.full(10_000, 8, dtype=np.int64)
        payloads = np.zeros((10_000, 8), dtype=np.uint8)
        bits = standard_wire_bits(ids, dlcs, payloads)
        assert np.all(bits == CANFrame(0x000, bytes(8)).bit_length())

    def test_extended_ids_rejected(self):
        with pytest.raises(CANError, match="11-bit"):
            standard_wire_bits(
                np.array([0x800]), np.array([0]), np.zeros((1, 8), dtype=np.uint8)
            )


class TestReleaseGrid:
    def test_covers_half_open_interval(self):
        grid = release_grid(0.0, 0.1, 0.01)
        assert grid.size in (10, 11)
        assert grid[0] == 0.0 and grid[-1] < 0.1

    def test_empty_when_degenerate(self):
        assert release_grid(1.0, 1.0, 0.1).size == 0
        assert release_grid(2.0, 1.0, 0.1).size == 0


def _mixed_topology(seed: int, duration: float):
    """A vehicle bus with every attacker family layered on."""
    bus = build_vehicle_bus(vehicle_seed=seed)
    third = duration / 3.0
    bus.attach(DoSAttacker([(0.2 * third, third)], seed=seed))
    bus.attach(FuzzyAttacker([(0.8 * third, 1.4 * third)], seed=seed + 1))
    bus.attach(
        SpoofingAttacker([(1.2 * third, 2.0 * third)], target_id=0x316, seed=seed + 2)
    )
    bus.attach(
        BurstDoSAttacker(
            [(2.0 * third, 2.6 * third)], burst_on=0.03, burst_off=0.02, seed=seed + 3
        )
    )
    bus.attach(
        RampDoSAttacker(
            [(2.4 * third, 2.9 * third)],
            interval_start=0.004,
            interval_end=0.0005,
            seed=seed + 4,
        )
    )
    capture = [CANFrame(0x2A0, bytes([seed % 256] * 8))] * 40
    offsets = [0.001 * k for k in range(40)]
    bus.attach(
        ReplayAttacker(capture, offsets, windows=[(0.5 * third, third)], seed=seed + 5)
    )
    victim_index = next(
        index
        for index, source in enumerate(bus.sources)
        if getattr(source, "can_id", None) == 0x43F
    )
    bus.sources[victim_index] = SuspensionAttacker(
        bus.sources[victim_index],
        [(0.3 * third, 1.5 * third)],
        mode="delay",
        delay=0.015,
    )
    rpm_index = next(
        index
        for index, source in enumerate(bus.sources)
        if getattr(source, "can_id", None) == 0x316
    )
    bus.sources[rpm_index] = MasqueradeAttacker(
        bus.sources[rpm_index], [(1.8 * third, 2.5 * third)], seed=seed + 6
    )
    return bus


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("bitrate", [125_000, 500_000, 1_000_000])
    def test_mixed_topology_bit_exact(self, seed, bitrate):
        """The randomized CI sweep: every attacker family, three bitrates."""
        duration = 1.5
        event_bus = _mixed_topology(seed, duration)
        event_bus.bitrate = float(bitrate)
        columnar_bus = _mixed_topology(seed, duration)
        columnar_bus.bitrate = float(bitrate)
        records = event_bus.run(duration)
        result = columnar_bus.capture(duration)
        assert records, "topology must produce traffic"
        _assert_records_match(records, result)

    def test_horizon_clips_backlogged_flood(self):
        """Frames in flight (or queued) at the horizon are dropped."""

        def flooded():
            bus = build_vehicle_bus(vehicle_seed=5)
            # Saturating flood right across the horizon: a deep backlog
            # is still queued when the capture ends.
            bus.attach(DoSAttacker([(0.1, 0.9)], interval=0.0002, seed=5))
            return bus

        records = flooded().run(0.5)
        result = flooded().capture(0.5)
        assert records[-1].timestamp <= 0.5
        _assert_records_match(records, result)

    def test_quiet_bus_yields_empty_capture(self):
        bus = BusSimulator()
        result = bus.capture(1.0)
        assert len(result) == 0
        assert bus.run(1.0) == []
        assert result.bus_load() == 0.0

    def test_simultaneous_release_ties_keep_attach_order_priority(self):
        def build():
            bus = BusSimulator(bitrate=500_000)
            bus.attach(_OneShot([(0.0, CANFrame(0x300, bytes(2)))], source="a"))
            bus.attach(_OneShot([(0.0, CANFrame(0x100, bytes(2)))], source="b"))
            bus.attach(_OneShot([(0.0, CANFrame(0x100, bytes(4)))], source="c"))
            return bus

        records = build().run(0.1)
        result = build().capture(0.1)
        assert [r.frame.can_id for r in records] == [0x100, 0x100, 0x300]
        _assert_records_match(records, result)

    def test_scalar_only_source_falls_back_to_materialisation(self):
        frame = CANFrame(0x123, b"\x01\x02")
        extended = CANFrame(0x12345, b"\x03", extended=True)

        def build():
            bus = BusSimulator(bitrate=250_000)
            bus.attach(_OneShot([(0.001, frame), (0.002, extended)]))
            bus.attach(PeriodicSender(0x200, period=0.005, phase=0.0, seed=3))
            return bus

        records = build().run(0.05)
        result = build().capture(0.05)
        _assert_records_match(records, result)

    def test_zero_jitter_periodic_grid_ties(self):
        """Jitter-free senders release on exact grids: many float ties."""

        def build():
            bus = BusSimulator(bitrate=500_000)
            for offset, can_id in enumerate((0x100, 0x200, 0x300)):
                bus.attach(
                    PeriodicSender(can_id, period=0.001, jitter=0.0, phase=0.0, seed=offset)
                )
            bus.attach(DoSAttacker([(0.0, 0.05)], interval=0.001, seed=9))
            return bus

        records = build().run(0.05)
        result = build().capture(0.05)
        _assert_records_match(records, result)


class TestScheduleLayer:
    def test_wrapper_columnar_schedule_matches_scalar_iteration(self):
        """Suspension/masquerade arrays == their scalar streams."""
        until = 0.6

        def victim():
            return PeriodicSender(
                0x316, 0.01, payload_model=sensor_payload(seed=4), jitter=0.02, seed=4
            )

        for wrapper_of in (
            lambda: SuspensionAttacker(victim(), [(0.2, 0.4)], mode="delay", delay=0.005),
            lambda: SuspensionAttacker(victim(), [(0.2, 0.4)], mode="drop"),
            lambda: MasqueradeAttacker(victim(), [(0.1, 0.5)], seed=8),
        ):
            scalar = schedule_from_frames(wrapper_of().frames(until))
            columnar = wrapper_of().frames_array(until)
            np.testing.assert_array_equal(scalar.release_times, columnar.release_times)
            np.testing.assert_array_equal(scalar.can_ids, columnar.can_ids)
            np.testing.assert_array_equal(scalar.payloads, columnar.payloads)
            np.testing.assert_array_equal(scalar.labels, columnar.labels)
            np.testing.assert_array_equal(scalar.sources, columnar.sources)

    def test_build_schedule_sorts_stably_like_the_event_merge(self):
        bus = _mixed_topology(3, 1.0)
        schedule = build_schedule(bus.sources, 1.0)
        assert np.all(np.diff(schedule.release_times) >= 0)
        assert len(schedule) > 0

    def test_unsorted_schedule_rejected(self):
        schedule = ScheduleArray(
            release_times=np.array([1.0, 0.5]),
            can_ids=np.array([1, 2], dtype=np.int64),
            dlcs=np.array([0, 0], dtype=np.int64),
            payloads=np.zeros((2, 8), dtype=np.uint8),
            labels=np.zeros(2, dtype=np.int64),
            sources=np.array(["a", "b"]),
            wire_bits=np.array([-1, -1], dtype=np.int64),
        )
        with pytest.raises(CANError, match="release-sorted"):
            simulate_arbitration(schedule, 500_000, 1.0)


class TestColumnarConversions:
    def test_bus_load_capture_overload_matches_record_loop(self):
        bus = build_vehicle_bus(vehicle_seed=2)
        records = bus.run(0.5)
        capture = CaptureArray.from_bus_records(records)
        assert bus_load(capture, 0.5, bus.bitrate) == bus_load(records, 0.5, bus.bitrate)

    def test_from_bus_records_skips_intermediate_records(self):
        bus = build_vehicle_bus(vehicle_seed=2)
        bus.attach(DoSAttacker([(0.1, 0.3)], seed=2))
        records = bus.run(0.4)
        direct = CaptureArray.from_bus_records(records)
        via_log_records = CaptureArray.from_records(records_from_bus(records))
        np.testing.assert_array_equal(direct.timestamps, via_log_records.timestamps)
        np.testing.assert_array_equal(direct.can_ids, via_log_records.can_ids)
        np.testing.assert_array_equal(direct.dlcs, via_log_records.dlcs)
        np.testing.assert_array_equal(direct.payloads, via_log_records.payloads)
        np.testing.assert_array_equal(direct.labels, via_log_records.labels)

    def test_coerce_unwraps_arbitration_result(self):
        bus = build_vehicle_bus(vehicle_seed=1)
        result = bus.capture(0.2)
        assert CaptureArray.coerce(result) is result.capture

    def test_to_bus_records_round_trip(self):
        bus = build_vehicle_bus(vehicle_seed=1)
        reference = build_vehicle_bus(vehicle_seed=1)
        materialised = bus.capture(0.3).to_bus_records()
        assert materialised == reference.run(0.3)


class TestGatewayEngines:
    def test_monitor_engines_agree(self, dos_ip):
        campaign = SCENARIOS.build("overlapping-mixed", duration=1.2)
        truth = campaign.truth_windows()

        def report_for(engine):
            gateway = build_campaign_gateway(dos_ip, campaign, vehicle_seed=4, ecu_seed=4)
            return gateway.monitor(
                duration=campaign.duration, truth=truth, engine=engine
            )

        event = report_for("event")
        columnar = report_for("columnar")
        assert event.engine == "event" and columnar.engine == "columnar"
        assert event.total_frames == columnar.total_frames
        assert event.total_dropped == columnar.total_dropped
        assert event.total_alerts == columnar.total_alerts
        for left, right in zip(event.channels, columnar.channels):
            assert left.bus_load == right.bus_load
            assert left.phase_outcomes == right.phase_outcomes
            if left.report is not None:
                np.testing.assert_array_equal(
                    left.report.predictions, right.report.predictions
                )

    def test_unknown_engine_rejected(self, dos_ip):
        campaign = SCENARIOS.build("baseline-dos", duration=1.0)
        gateway = build_campaign_gateway(dos_ip, campaign, vehicle_seed=4)
        with pytest.raises(Exception, match="unknown engine"):
            gateway.monitor(duration=1.0, engine="warp")


class TestProcessBackend:
    def test_scenario_worker_payload_pickles_round_trip(self, dos_ip):
        """What the process pool ships must survive pickling intact."""
        campaign = SCENARIOS.build("baseline-dos", duration=0.8)
        task = _SweepTask(
            index=0,
            name="baseline-dos",
            description="round-trip",
            campaign=campaign,
            detector="dos",
        )
        config = _SweepConfig(seed=123, fifo_capacity=64, chunk_size=4096, engine="columnar")
        ips = {"dos": dos_ip}
        thawed_ips, thawed_task, thawed_config = pickle.loads(
            pickle.dumps((ips, task, config))
        )
        assert thawed_task == task and thawed_config == config
        direct = _sweep_one_scenario(dos_ip, task, config)
        via_pickle = _sweep_one_scenario(thawed_ips["dos"], thawed_task, thawed_config)
        for left, right in zip(direct, via_pickle):
            assert left.report.total_frames == right.report.total_frames
            assert left.report.total_dropped == right.report.total_dropped
            assert pickle.loads(pickle.dumps(right)).scenario == left.scenario

    def test_process_backend_matches_thread_backend(self, experiment_context):
        names = ["baseline-dos", "stealth-low-rate"]
        threaded = run_campaign_sweep(
            experiment_context,
            scenarios=names,
            duration=0.8,
            options=ExecOptions(backend="thread", max_workers=2),
        )
        processed = run_campaign_sweep(
            experiment_context,
            scenarios=names,
            duration=0.8,
            options=ExecOptions(backend="process", max_workers=2),
        )
        assert threaded.backend == "thread" and processed.backend == "process"
        assert [(r.scenario, r.mode) for r in threaded.runs] == [
            (r.scenario, r.mode) for r in processed.runs
        ]
        for left, right in zip(threaded.runs, processed.runs):
            assert left.detector == right.detector
            assert left.report.total_frames == right.report.total_frames
            assert left.report.total_dropped == right.report.total_dropped
            assert left.phases_detected == right.phases_detected
            for a, b in zip(left.report.channels, right.report.channels):
                if a.report is None:
                    assert b.report is None
                    continue
                np.testing.assert_array_equal(a.report.predictions, b.report.predictions)

    def test_sweep_engines_agree(self, experiment_context):
        """engine="event" and engine="columnar" sweeps are bit-identical."""
        names = ["baseline-dos"]
        columnar = run_campaign_sweep(
            experiment_context,
            scenarios=names,
            duration=0.8,
            max_workers=1,
            engine="columnar",
        )
        event = run_campaign_sweep(
            experiment_context,
            scenarios=names,
            duration=0.8,
            max_workers=1,
            engine="event",
        )
        assert [(r.scenario, r.mode) for r in columnar.runs] == [
            (r.scenario, r.mode) for r in event.runs
        ]
        for left, right in zip(columnar.runs, event.runs):
            assert left.detector == right.detector
            assert left.report.total_frames == right.report.total_frames
            assert left.report.total_dropped == right.report.total_dropped
            assert left.phases_detected == right.phases_detected
            for a, b in zip(left.report.channels, right.report.channels):
                if a.report is None:
                    assert b.report is None
                    continue
                np.testing.assert_array_equal(a.report.predictions, b.report.predictions)

    def test_unknown_backend_rejected(self, experiment_context):
        """The deprecation shim still validates what it forwards."""
        with pytest.raises(Exception, match="unknown backend"):
            run_campaign_sweep(
                experiment_context, scenarios=["baseline-dos"], backend="fiber"
            )


class TestDetectorMatching:
    def test_scenarios_map_to_matching_detectors(self):
        assert scenario_detector(SCENARIOS.build("baseline-dos")) == "dos"
        assert scenario_detector(SCENARIOS.build("baseline-fuzzy")) == "fuzzy"
        assert scenario_detector(SCENARIOS.build("baseline-spoof-rpm")) == "rpm"
        assert scenario_detector(SCENARIOS.build("masquerade-rpm")) == "rpm"
        assert scenario_detector(SCENARIOS.build("suspension-drop")) == "dos"
        assert scenario_detector(SCENARIOS.build("baseline-replay")) == "dos"
        assert scenario_detector(SCENARIOS.build("overlapping-mixed")) == "dos"

    def test_auto_sweep_deploys_matching_detector(self, experiment_context):
        result = run_campaign_sweep(
            experiment_context,
            scenarios=["baseline-fuzzy"],
            duration=0.8,
            options=ExecOptions(max_workers=1),
        )
        assert result.detector == "auto"
        assert result.detectors() == {"baseline-fuzzy": "fuzzy"}
