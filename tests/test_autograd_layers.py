"""Tests for nn layers: shapes, gradients, train/eval behaviour."""

import numpy as np
import pytest

from repro.autograd.layers import (
    AvgPool2d,
    BatchNorm1d,
    Conv2d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    _col2im,
    _im2col,
)
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError, ShapeError


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        layer = Linear(4, 3, seed=1)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.data, x @ layer.weight.data.T + layer.bias.data)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, seed=1)
        assert layer.bias is None
        out = layer(Tensor(rng.normal(size=(2, 4))))
        assert out.shape == (2, 3)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            Linear(4, 3)(Tensor(np.zeros((2, 5))))

    def test_bad_dims_rejected(self):
        with pytest.raises(ConfigError):
            Linear(0, 3)

    def test_deterministic_init(self):
        a = Linear(6, 2, seed=9).weight.data
        b = Linear(6, 2, seed=9).weight.data
        np.testing.assert_array_equal(a, b)

    def test_grad_shapes(self, rng):
        layer = Linear(4, 3, seed=1)
        layer(Tensor(rng.normal(size=(7, 4)))).sum().backward()
        assert layer.weight.grad.shape == (3, 4)
        assert layer.bias.grad.shape == (3,)


class TestActivationsDropout:
    def test_relu_layer(self):
        assert ReLU()(Tensor([-1.0, 2.0])).data.tolist() == [0.0, 2.0]

    def test_leaky_relu(self):
        out = LeakyReLU(0.1)(Tensor([-1.0, 2.0])).data
        np.testing.assert_allclose(out, [-0.1, 2.0])

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, seed=1)
        layer.training = False
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_dropout_train_scales_kept_units(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((2000,))
        out = layer(Tensor(x)).data
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scale
        assert 0.3 < (out != 0).mean() < 0.7

    def test_dropout_p_validated(self):
        with pytest.raises(ConfigError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalises_batch(self, rng):
        bn = BatchNorm1d(6)
        x = rng.normal(loc=3.0, scale=2.0, size=(64, 6))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), 0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1, atol=1e-2)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(3, momentum=0.5)
        x = rng.normal(size=(32, 3))
        bn(Tensor(x))
        bn.training = False
        single = bn(Tensor(x[:1]))
        assert np.all(np.isfinite(single.data))

    def test_state_roundtrip(self, rng):
        bn = BatchNorm1d(3)
        bn(Tensor(rng.normal(size=(16, 3))))
        state = bn.state_dict()
        fresh = BatchNorm1d(3)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.running_mean, bn.running_mean)
        np.testing.assert_array_equal(fresh.running_var, bn.running_var)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            BatchNorm1d(3)(Tensor(np.zeros((4, 5))))


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(2, 5, 3, padding=1, seed=1)
        out = conv(Tensor(rng.normal(size=(4, 2, 8, 8))))
        assert out.shape == (4, 5, 8, 8)

    def test_stride(self, rng):
        conv = Conv2d(1, 1, 3, stride=2, padding=1, seed=1)
        out = conv(Tensor(rng.normal(size=(1, 1, 8, 8))))
        assert out.shape == (1, 1, 4, 4)

    def test_rectangular_kernel(self, rng):
        conv = Conv2d(3, 4, (1, 3), padding=(0, 1), seed=1)
        out = conv(Tensor(rng.normal(size=(2, 3, 1, 10))))
        assert out.shape == (2, 4, 1, 10)

    def test_forward_matches_direct_convolution(self, rng):
        conv = Conv2d(1, 1, 3, seed=2)
        x = rng.normal(size=(1, 1, 5, 5))
        out = conv(Tensor(x)).data[0, 0]
        kernel = conv.weight.data[0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i : i + 3, j : j + 3] * kernel).sum() + conv.bias.data[0]
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_input_gradient_numerically(self, rng):
        conv = Conv2d(1, 2, 3, padding=1, seed=3)
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        (conv(x) ** 2).sum().backward()

        def loss():
            col, _, _ = _im2col(x.data, 3, 3, 1, 1)
            out = col @ conv.weight.data.reshape(2, -1).T + conv.bias.data
            return float((out**2).sum())

        from tests.test_autograd_tensor import numerical_grad

        np.testing.assert_allclose(x.grad, numerical_grad(loss, x.data), atol=1e-4)

    def test_col2im_inverts_im2col_for_disjoint_patches(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        col, oh, ow = _im2col(x, 2, 2, 2, 0)
        back = _col2im(col, x.shape, 2, 2, 2, 0)
        np.testing.assert_allclose(back, x)

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            Conv2d(3, 1, 3)(Tensor(np.zeros((1, 2, 5, 5))))


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(Tensor(x)).data
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_mass(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        assert x.grad.sum() == pytest.approx(2 * 3 * 4)  # one unit per window

    def test_maxpool_tie_single_gradient(self):
        x = Tensor(np.zeros((1, 1, 2, 2)), requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        assert x.grad.sum() == pytest.approx(1.0)

    def test_avgpool(self):
        x = np.arange(4.0).reshape(1, 1, 2, 2)
        out = AvgPool2d(2)(Tensor(x)).data
        np.testing.assert_allclose(out, [[[[1.5]]]])

    def test_divisibility_checked(self):
        with pytest.raises(ShapeError):
            MaxPool2d(3)(Tensor(np.zeros((1, 1, 4, 4))))


class TestSequentialFlatten:
    def test_pipeline(self, rng):
        net = Sequential(Linear(6, 4, seed=1), ReLU(), Flatten(), Linear(4, 2, seed=2))
        out = net(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 2)

    def test_len_iter_getitem(self):
        net = Sequential(ReLU(), ReLU())
        assert len(net) == 2
        assert isinstance(net[0], ReLU)
        assert all(isinstance(m, ReLU) for m in net)

    def test_train_eval_propagates(self):
        net = Sequential(Dropout(0.5), Linear(2, 2))
        net.eval()
        assert not net[0].training
        net.train()
        assert net[0].training
