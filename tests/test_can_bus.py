"""Tests for the bus simulator: arbitration, timing, attack effects."""

import pytest

from repro.can.attacks import DoSAttacker, FuzzyAttacker
from repro.can.bus import BusSimulator, bus_load
from repro.can.frame import CANFrame
from repro.can.node import PeriodicSender, ScheduledFrame, constant_payload
from repro.errors import CANError


class _OneShot:
    """Emit fixed frames at fixed release times (test helper)."""

    def __init__(self, entries):
        self.entries = entries

    def frames(self, until):
        for release, frame in self.entries:
            if release < until:
                yield ScheduledFrame(release, frame, "R", "oneshot")


class TestArbitration:
    def test_lower_id_wins_simultaneous_release(self):
        bus = BusSimulator(bitrate=500_000)
        bus.attach(_OneShot([(0.0, CANFrame(0x300, bytes(2)))]))
        bus.attach(_OneShot([(0.0, CANFrame(0x100, bytes(2)))]))
        records = bus.run(0.1)
        assert [r.frame.can_id for r in records] == [0x100, 0x300]

    def test_loser_queues_behind_winner(self):
        bus = BusSimulator(bitrate=500_000)
        bus.attach(_OneShot([(0.0, CANFrame(0x100, bytes(8))), (0.0, CANFrame(0x200, bytes(8)))]))
        first, second = bus.run(0.1)
        assert second.started_at == pytest.approx(first.timestamp)
        assert second.queueing_delay > 0

    def test_bus_idle_jumps_to_next_release(self):
        bus = BusSimulator(bitrate=500_000)
        bus.attach(_OneShot([(0.05, CANFrame(0x100, bytes(1)))]))
        (record,) = bus.run(0.1)
        assert record.started_at == pytest.approx(0.05)

    def test_late_high_priority_does_not_preempt(self):
        """CAN is non-preemptive: a frame in flight finishes."""
        bus = BusSimulator(bitrate=100_000)  # slow bus: long frames
        bus.attach(_OneShot([(0.0, CANFrame(0x400, bytes(8)))]))
        bus.attach(_OneShot([(0.0002, CANFrame(0x001, bytes(1)))]))
        first, second = bus.run(0.2)
        assert first.frame.can_id == 0x400
        assert second.started_at >= first.timestamp

    def test_records_sorted_by_time(self, dos_capture):
        times = [r.timestamp for r in dos_capture.records]
        assert times == sorted(times)


class TestPeriodicTraffic:
    def test_period_respected(self):
        bus = BusSimulator(bitrate=500_000)
        bus.attach(PeriodicSender(0x123, period=0.01, jitter=0.0, phase=0.0, seed=1))
        records = bus.run(0.1)
        # 10 nominal releases; float accumulation may land one extra at ~0.1.
        assert len(records) in (10, 11)

    def test_jitter_varies_release(self):
        sender = PeriodicSender(0x123, period=0.01, jitter=0.05, phase=0.0, seed=1)
        releases = [s.release_time for s in sender.frames(0.1)]
        deltas = [b - a for a, b in zip(releases, releases[1:])]
        assert len(set(f"{d:.9f}" for d in deltas)) > 1

    def test_invalid_period(self):
        with pytest.raises(CANError):
            PeriodicSender(0x1, period=0.0)

    def test_constant_payload_model(self):
        sender = PeriodicSender(0x1, 0.01, payload_model=constant_payload(b"\xAA" * 8), phase=0.0, seed=1)
        frames = list(sender.frames(0.05))
        assert all(s.frame.data == b"\xAA" * 8 for s in frames)


class TestAttackEffects:
    def test_dos_starves_normal_traffic(self):
        """During a DoS flood, legitimate frames see queueing delay."""
        bus = BusSimulator(bitrate=500_000)
        bus.attach(PeriodicSender(0x300, period=0.001, jitter=0.0, phase=0.0005, seed=1))
        bus.attach(DoSAttacker(windows=[(0.0, 0.5)], interval=0.0003))
        records = bus.run(0.5)
        normal = [r for r in records if r.label == "R"]
        attack = [r for r in records if r.label == "T"]
        assert len(attack) > len(normal)
        assert normal, "0.3 ms DoS cadence must leave some bus gaps at 500 kbit/s"
        mean_delay = sum(r.queueing_delay for r in normal) / len(normal)
        assert mean_delay > 0.00005  # significant arbitration losses

    def test_saturating_dos_fully_starves(self):
        """Injection faster than the frame time occupies the whole bus."""
        bus = BusSimulator(bitrate=500_000)
        bus.attach(PeriodicSender(0x300, period=0.001, jitter=0.0, phase=0.0005, seed=1))
        bus.attach(DoSAttacker(windows=[(0.0, 0.5)], interval=0.0002))
        records = bus.run(0.5)
        assert all(r.label == "T" for r in records)

    def test_dos_frames_always_win_ties(self):
        bus = BusSimulator(bitrate=500_000)
        bus.attach(PeriodicSender(0x100, period=0.0003, jitter=0.0, phase=0.0, seed=1))
        bus.attach(DoSAttacker(windows=[(0.0, 0.1)], interval=0.0003))
        records = bus.run(0.02)
        # At each simultaneous release, 0x000 transmits first.
        pairs = zip(records, records[1:])
        for a, b in pairs:
            if abs(a.queued_at - b.queued_at) < 1e-12:
                assert a.frame.can_id == 0x000

    def test_fuzzy_ids_span_range(self):
        attacker = FuzzyAttacker(windows=[(0.0, 1.0)], interval=0.001, seed=3)
        ids = [s.frame.can_id for s in attacker.frames(1.0)]
        assert min(ids) < 0x100 and max(ids) > 0x700

    def test_empty_window_rejected(self):
        with pytest.raises(CANError):
            DoSAttacker(windows=[(1.0, 1.0)])

    def test_bad_interval_rejected(self):
        with pytest.raises(CANError):
            FuzzyAttacker(windows=[(0.0, 1.0)], interval=0.0)


class TestCaptureHorizon:
    """Frames in flight at the horizon are dropped, not recorded late."""

    def test_frame_crossing_horizon_is_dropped(self):
        # At 100 kbit/s an 8-byte frame occupies >1 ms of wire time, so a
        # release 0.5 ms before the horizon starts but cannot complete.
        bus = BusSimulator(bitrate=100_000)
        frame = CANFrame(0x100, bytes(8))
        assert frame.duration(100_000) > 0.001
        bus.attach(_OneShot([(0.0, frame), (0.0995, frame)]))
        records = bus.run(0.1)
        assert len(records) == 1  # the late frame started before 0.1 but ended after
        assert records[0].timestamp <= 0.1

    def test_all_timestamps_within_window(self):
        bus = BusSimulator(bitrate=500_000)
        bus.attach(PeriodicSender(0x300, period=0.0004, jitter=0.0, phase=0.0, seed=1))
        bus.attach(DoSAttacker(windows=[(0.0, 0.1)], interval=0.0003))
        records = bus.run(0.1)
        assert records
        assert all(r.timestamp <= 0.1 for r in records)

    def test_backlog_past_horizon_is_dropped(self):
        """Queued frames whose transmission would begin after the horizon."""
        bus = BusSimulator(bitrate=100_000)
        # Ten simultaneous releases of >1 ms frames into a 2.5 ms window:
        # only the first two can complete inside it.
        bus.attach(_OneShot([(0.0, CANFrame(0x100 + i, bytes(8))) for i in range(10)]))
        records = bus.run(0.0025)
        assert 0 < len(records) < 10
        assert all(r.timestamp <= 0.0025 for r in records)


class TestBusLoad:
    def test_empty(self):
        assert bus_load([], 1.0, 500_000) == 0.0

    def test_dos_flood_loads_bus(self):
        bus = BusSimulator(bitrate=500_000)
        bus.attach(DoSAttacker(windows=[(0.0, 1.0)], interval=0.0002))
        records = bus.run(1.0)
        assert bus_load(records, 1.0, 500_000) > 0.5

    def test_invalid_args(self):
        with pytest.raises(CANError):
            bus_load([], 0.0, 500_000)

    def test_run_duration_validated(self):
        with pytest.raises(CANError):
            BusSimulator().run(0.0)

    def test_bitrate_validated(self):
        with pytest.raises(CANError):
            BusSimulator(bitrate=-1)
