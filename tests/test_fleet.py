"""Fleet orchestrator: specs, aggregates, sharded execution.

The load-bearing claims, each pinned here:

* ``FleetAggregate.merge`` is associative and commutative (property-
  tested), which is *why* the fleet result is independent of shard
  boundaries and execution order;
* ``run_fleet`` produces bit-identical aggregates for any worker count,
  shard size and backend;
* everything the process pool ships (shard tasks, aggregates) survives
  pickling intact;
* the unified :class:`ExecOptions` run-spec validates, resolves
  ``"auto"``, and back-compats the sweep's loose keywords via a
  warn-once shim;
* empty specs (fleet and sweep) return well-formed empty results
  without training detectors or spinning up a pool.
"""

import pickle
import warnings

import pytest
from hypothesis import given, settings, strategies as st

import repro.experiments.campaigns as campaigns_module
from repro.errors import ConfigError
from repro.experiments.campaigns import run_campaign_sweep
from repro.fleet import (
    DROP_BIN_EDGES,
    LATENCY_BIN_EDGES,
    ExecOptions,
    FleetAggregate,
    FleetSlice,
    FleetSpec,
    VehicleSpec,
    drop_histogram,
    fleet_detectors,
    latency_histogram,
    run_fleet,
)
from repro.fleet.runner import _FleetShard


def _slices(draw_ints):
    """Build a FleetSlice strategy from a small-int strategy."""
    latency_bins = len(LATENCY_BIN_EDGES) - 1
    drop_bins = len(DROP_BIN_EDGES) - 1
    return st.builds(
        FleetSlice,
        vehicles=draw_ints,
        channels=draw_ints,
        frames_offered=draw_ints,
        frames_processed=draw_ints,
        frames_dropped=draw_ints,
        alerts=draw_ints,
        phases_total=draw_ints,
        phases_injecting=draw_ints,
        phases_detected=draw_ints,
        latency_hist=st.tuples(*([draw_ints] * latency_bins)),
        drop_hist=st.tuples(*([draw_ints] * drop_bins)),
    )


_counts = st.integers(min_value=0, max_value=1_000)
_keys = st.sampled_from(["baseline-dos", "baseline-fuzzy", "masquerade-rpm", "per-ip"])
_aggregates = st.builds(
    FleetAggregate,
    total=_slices(_counts),
    by_scenario=st.dictionaries(_keys, _slices(_counts), max_size=3),
    by_deployment=st.dictionaries(_keys, _slices(_counts), max_size=2),
)


class TestAggregateAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(a=_aggregates, b=_aggregates, c=_aggregates)
    def test_merge_is_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=60, deadline=None)
    @given(a=_aggregates, b=_aggregates)
    def test_merge_is_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=30, deadline=None)
    @given(a=_aggregates)
    def test_empty_is_identity(self, a):
        empty = FleetAggregate.empty()
        assert a.merge(empty) == a and empty.merge(a) == a

    def test_histograms_are_fixed_width_and_conserving(self):
        hist = latency_histogram([0.00005, 0.001, 0.5, 100.0])
        assert len(hist) == len(LATENCY_BIN_EDGES) - 1
        assert sum(hist) == 4  # underflow and overflow bins catch the tails
        assert sum(drop_histogram(0.37)) == 1
        with pytest.raises(ConfigError, match="bins"):
            FleetSlice(latency_hist=(1, 2, 3))

    def test_latency_quantile_is_conservative_upper_bound(self):
        counters = FleetSlice(latency_hist=latency_histogram([0.001] * 99 + [5.0]))
        assert counters.latency_quantile_s(0.5) >= 0.001
        assert counters.latency_quantile_s(1.0) >= 5.0
        assert FleetSlice().latency_quantile_s(0.5) is None
        with pytest.raises(ConfigError, match="quantile"):
            counters.latency_quantile_s(1.5)


class TestSpecs:
    def test_exec_options_validate(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            ExecOptions(backend="fiber")
        with pytest.raises(ConfigError, match="unknown engine"):
            ExecOptions(engine="warp")
        with pytest.raises(ConfigError, match="max_workers"):
            ExecOptions(max_workers=0)
        with pytest.raises(ConfigError, match="fifo_capacity"):
            ExecOptions(fifo_capacity=0)

    def test_auto_backend_resolves_to_concrete(self):
        resolved = ExecOptions(backend="auto").resolved()
        assert resolved.backend in ("thread", "process")
        assert ExecOptions(backend="thread").resolve_backend() == "thread"
        # Resolution is host-dependent but never leaves "auto" behind.
        assert ExecOptions(backend="auto").resolve_backend() != "auto"

    def test_vehicle_spec_validates(self):
        with pytest.raises(ConfigError, match="profile"):
            VehicleSpec(index=0, scenario="baseline-dos", vehicle_seed=1, profile="suv")
        with pytest.raises(ConfigError, match="deployment"):
            VehicleSpec(
                index=0, scenario="baseline-dos", vehicle_seed=1, deployment="cloud"
            )
        with pytest.raises(ConfigError, match="onset_offset"):
            VehicleSpec(
                index=0, scenario="baseline-dos", vehicle_seed=1, onset_offset=-0.1
            )

    def test_sampled_fleet_is_index_deterministic(self):
        spec = FleetSpec(
            name="pop",
            size=50,
            seed=11,
            scenarios=("baseline-dos", "baseline-fuzzy"),
            profiles=("full", "mid", "lite"),
            deployments=("per-ip", "shared-ip"),
            onset_jitter=0.2,
        )
        # Same member whichever shard derives it, and jitter stays bounded.
        assert spec.vehicle(17) == spec.vehicle(17)
        assert list(spec.iter_vehicles(10, 13)) == [spec.vehicle(i) for i in (10, 11, 12)]
        drawn = [spec.vehicle(i) for i in range(50)]
        assert all(0.0 <= v.onset_offset <= 0.2 for v in drawn)
        assert {v.profile for v in drawn} == {"full", "mid", "lite"}
        # A different fleet seed draws a different population.
        other = FleetSpec(
            name="pop",
            size=50,
            seed=12,
            scenarios=("baseline-dos", "baseline-fuzzy"),
            profiles=("full", "mid", "lite"),
            deployments=("per-ip", "shared-ip"),
            onset_jitter=0.2,
        )
        assert [other.vehicle(i) for i in range(50)] != drawn

    def test_explicit_fleet_wraps_vehicle_list(self):
        members = (
            VehicleSpec(index=0, scenario="baseline-dos", vehicle_seed=1),
            VehicleSpec(index=1, scenario="baseline-fuzzy", vehicle_seed=2),
        )
        spec = FleetSpec.explicit(members, name="pair")
        assert len(spec) == 2
        assert spec.vehicle(1) == members[1]
        assert spec.scenario_names() == ("baseline-dos", "baseline-fuzzy")
        with pytest.raises(ConfigError, match="out of range"):
            spec.vehicle(2)

    def test_fleet_detectors_match_scenarios(self):
        spec = FleetSpec(size=4, scenarios=("baseline-dos", "masquerade-rpm"))
        assert fleet_detectors(spec) == {
            "baseline-dos": "dos",
            "masquerade-rpm": "rpm",
        }


class TestRunFleet:
    @pytest.fixture(scope="class")
    def fleet_spec(self):
        return FleetSpec(
            name="mini",
            size=6,
            seed=7,
            scenarios=("baseline-dos", "baseline-fuzzy"),
            profiles=("full", "mid", "lite"),
            deployments=("per-ip", "shared-ip"),
            duration=0.4,
            onset_jitter=0.05,
        )

    @pytest.fixture(scope="class")
    def reference(self, experiment_context, fleet_spec):
        return run_fleet(
            experiment_context,
            fleet_spec,
            ExecOptions(backend="thread", max_workers=1),
            shard_size=2,
        )

    def test_aggregate_counts_the_whole_fleet(self, reference, fleet_spec):
        total = reference.aggregate.total
        assert reference.vehicles == len(fleet_spec) == total.vehicles
        assert total.frames_offered > 0
        assert total.frames_processed + total.frames_dropped == total.frames_offered
        assert sum(s.vehicles for s in reference.aggregate.by_scenario.values()) == 6
        assert sum(s.vehicles for s in reference.aggregate.by_deployment.values()) == 6
        assert 0.0 <= total.detection_rate <= 1.0
        assert reference.backend == "thread" and reference.engine == "columnar"
        record = reference.as_record()
        assert record["vehicles"] == 6 and record["backend"] == "thread"
        assert "mini" in reference.summary()

    @pytest.mark.parametrize(
        "backend,workers,shard_size",
        [
            ("thread", 2, 2),
            ("thread", 4, 1),
            ("thread", 1, 6),
            ("process", 2, 2),
            ("process", 4, 3),
        ],
    )
    def test_bit_identical_across_workers_shards_backends(
        self, experiment_context, fleet_spec, reference, backend, workers, shard_size
    ):
        run = run_fleet(
            experiment_context,
            fleet_spec,
            ExecOptions(backend=backend, max_workers=workers),
            shard_size=shard_size,
        )
        assert run.aggregate == reference.aggregate

    def test_shard_task_pickles_round_trip(self, fleet_spec):
        shard = _FleetShard(spec=fleet_spec, start=2, stop=5)
        thawed = pickle.loads(pickle.dumps(shard))
        assert thawed == shard
        assert list(thawed.spec.iter_vehicles(2, 5)) == list(
            fleet_spec.iter_vehicles(2, 5)
        )
        aggregate = FleetAggregate.of_vehicle(
            "baseline-dos", "per-ip", FleetSlice(vehicles=1)
        )
        assert pickle.loads(pickle.dumps(aggregate)) == aggregate

    def test_empty_fleet_returns_wellformed_result(self, experiment_context):
        result = run_fleet(experiment_context, FleetSpec(size=0))
        assert result.vehicles == 0 and result.shards == 0 and result.workers == 0
        assert result.aggregate == FleetAggregate.empty()
        assert result.backend in ("thread", "process")  # resolved, never "auto"

    def test_bad_shard_size_rejected(self, experiment_context, fleet_spec):
        with pytest.raises(ConfigError, match="shard_size"):
            run_fleet(experiment_context, fleet_spec, shard_size=0)


class TestSweepUnifiedOptions:
    def test_empty_sweep_returns_wellformed_result(self, experiment_context):
        result = run_campaign_sweep(experiment_context, scenarios=[])
        assert result.runs == [] and result.duration == 0.0
        assert result.backend in ("thread", "process")
        with pytest.raises(ConfigError, match="no sweep run"):
            result.run("baseline-dos", "per-ip")

    def test_sweep_accepts_exec_options_and_records_backend(
        self, experiment_context
    ):
        result = run_campaign_sweep(
            experiment_context,
            scenarios=["baseline-dos"],
            duration=0.8,
            options=ExecOptions(backend="thread", max_workers=1),
        )
        assert result.backend == "thread" and result.engine == "columnar"
        run = result.run("baseline-dos", "per-ip")
        assert run.report.total_frames > 0
        assert result.run("baseline-dos", "shared-ip") is not run

    def test_loose_kwargs_forward_and_warn_once(self, experiment_context):
        campaigns_module._LOOSE_KWARGS_WARNED = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = run_campaign_sweep(
                    experiment_context,
                    scenarios=["baseline-dos"],
                    duration=0.8,
                    max_workers=1,
                    backend="thread",
                )
                second = run_campaign_sweep(
                    experiment_context,
                    scenarios=["baseline-dos"],
                    duration=0.8,
                    max_workers=1,
                    backend="thread",
                )
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
                and "ExecOptions" in str(w.message)
            ]
            assert len(deprecations) == 1  # warns once, not per call
        finally:
            campaigns_module._LOOSE_KWARGS_WARNED = False
        assert first.backend == "thread"
        # The shim forwards into the same execution path: identical runs.
        assert [
            (r.scenario, r.mode, r.report.total_frames) for r in first.runs
        ] == [(r.scenario, r.mode, r.report.total_frames) for r in second.runs]

    def test_options_and_loose_kwargs_are_mutually_exclusive(
        self, experiment_context
    ):
        with pytest.raises(ConfigError, match="not both"):
            run_campaign_sweep(
                experiment_context,
                scenarios=["baseline-dos"],
                options=ExecOptions(),
                max_workers=1,
            )
