"""Tests for the dataflow IR and the exact threshold conversion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompileError
from repro.finn.graph import (
    ArgMaxNode,
    DataflowGraph,
    IntType,
    MatMulIntNode,
    MultiThresholdNode,
    PadNode,
    QuantActNode,
    ScaleBiasNode,
    TensorInfo,
)
from repro.finn.thresholds import activation_int, compute_thresholds


class TestIntType:
    def test_unsigned_bounds(self):
        t = IntType(4, signed=False)
        assert (t.min, t.max) == (0, 15)

    def test_signed_bounds(self):
        t = IntType(4, signed=True)
        assert (t.min, t.max) == (-8, 7)

    @pytest.mark.parametrize(
        "low,high,bits,signed",
        [(0, 15, 4, False), (0, 16, 5, False), (-3, 7, 4, True), (-8, 7, 4, True), (0, 0, 1, False)],
    )
    def test_for_range(self, low, high, bits, signed):
        t = IntType.for_range(low, high)
        assert (t.bits, t.signed) == (bits, signed)
        assert t.min <= low and t.max >= high

    def test_contains(self):
        assert IntType(4, False).contains(np.array([0, 15]))
        assert not IntType(4, False).contains(np.array([16]))

    def test_empty_range_rejected(self):
        with pytest.raises(CompileError):
            IntType.for_range(5, 4)


class TestMatMulNode:
    def test_accumulator_range_exact(self):
        weights = np.array([[2, -3], [1, 1]])
        node = MatMulIntNode("mm", weights, 1.0, 4)
        acc_min, acc_max = node.accumulator_range(IntType(2, signed=False))  # x in [0, 3]
        np.testing.assert_array_equal(acc_max, [2 * 3, 2 * 3])
        np.testing.assert_array_equal(acc_min, [-3 * 3, 0])

    def test_accumulator_dtype_covers_extremes(self, rng):
        weights = rng.integers(-7, 8, size=(5, 9))
        node = MatMulIntNode("mm", weights, 1.0, 4)
        dtype = node.accumulator_dtype(IntType(8, signed=False))
        x_extreme = np.full((1, 9), 255.0)
        assert dtype.contains(node.execute(x_extreme).astype(np.int64))

    def test_execute(self):
        node = MatMulIntNode("mm", np.array([[1, 2]]), 1.0, 4)
        out = node.execute(np.array([[3.0, 4.0]]))
        np.testing.assert_array_equal(out, [[11.0]])


class TestMultiThresholdNode:
    def test_staircase_execution(self):
        thresholds = np.array([[1, 5, 9]])
        node = MultiThresholdNode("t", thresholds, bits=2)
        out = node.execute(np.array([[0.0], [1.0], [5.0], [100.0]]))
        np.testing.assert_array_equal(out.reshape(-1), [0, 1, 2, 3])

    def test_monotone_thresholds_required(self):
        with pytest.raises(CompileError):
            MultiThresholdNode("t", np.array([[3, 1, 2]]), bits=2)

    def test_step_count_must_match_bits(self):
        with pytest.raises(CompileError):
            MultiThresholdNode("t", np.array([[1, 2]]), bits=2)


class TestGraphMechanics:
    def test_edge_infos_chain(self):
        graph = DataflowGraph(TensorInfo(4, IntType(8, False)))
        graph.append(MatMulIntNode("mm", np.ones((3, 4), dtype=int), 1.0, 4))
        graph.append(ScaleBiasNode("sb", np.ones(3), np.zeros(3)))
        graph.append(ArgMaxNode())
        infos = graph.edge_infos()
        assert infos[1].features == 3
        assert infos[2].dtype is None  # float logits
        assert infos[3].features == 1

    def test_pad_node(self):
        node = PadNode("pad", 8)
        out = node.execute(np.ones((2, 5)))
        assert out.shape == (2, 8)
        assert out[:, 5:].sum() == 0

    def test_pad_cannot_shrink(self):
        with pytest.raises(CompileError):
            PadNode("pad", 3).output_info(TensorInfo(5, IntType(8, False)))

    def test_execute_validates_width(self):
        graph = DataflowGraph(TensorInfo(4, IntType(8, False)))
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            graph.execute(np.ones((1, 5)))

    def test_summary_mentions_nodes(self):
        graph = DataflowGraph(TensorInfo(2, IntType(8, False)), name="g")
        graph.append(MatMulIntNode("mm", np.ones((2, 2), dtype=int), 1.0, 4))
        assert "MatMulIntNode" in graph.summary()


class TestThresholdConversion:
    def _check_equivalence(self, acc_scale, bias, act_scale, act_bits, acc_lo=-3000, acc_hi=3000):
        """Thresholds must reproduce activation_int on every integer acc."""
        thresholds = compute_thresholds(
            acc_scale=np.array([acc_scale]),
            bias=np.array([bias]),
            act_scale=act_scale,
            act_bits=act_bits,
        )
        accs = np.arange(acc_lo, acc_hi)
        via_thresholds = (accs[:, None] >= thresholds[0][None, :]).sum(axis=1)
        levels = 2**act_bits - 1
        direct = activation_int(accs, acc_scale, bias, act_scale, levels)
        np.testing.assert_array_equal(via_thresholds, direct)

    def test_basic_case(self):
        self._check_equivalence(0.25, 0.1, 0.5, 4)

    def test_negative_bias(self):
        self._check_equivalence(0.125, -3.7, 0.25, 4)

    def test_exact_boundary_half_steps(self):
        # act_scale 1, scale 1, bias 0: thresholds at ceil(t - 0.5) = t.
        thresholds = compute_thresholds(np.array([1.0]), np.array([0.0]), 1.0, 2)
        np.testing.assert_array_equal(thresholds[0], [1, 2, 3])

    def test_per_channel_scales(self):
        thresholds = compute_thresholds(
            acc_scale=np.array([0.5, 0.25]),
            bias=np.array([0.0, 1.0]),
            act_scale=0.5,
            act_bits=2,
        )
        assert thresholds.shape == (2, 3)
        for channel, (s, b) in enumerate([(0.5, 0.0), (0.25, 1.0)]):
            accs = np.arange(-100, 100)
            via = (accs[:, None] >= thresholds[channel][None, :]).sum(axis=1)
            np.testing.assert_array_equal(via, activation_int(accs, s, b, 0.5, 3))

    def test_invalid_scales_rejected(self):
        with pytest.raises(CompileError):
            compute_thresholds(np.array([-1.0]), np.array([0.0]), 1.0, 2)
        with pytest.raises(CompileError):
            compute_thresholds(np.array([1.0]), np.array([0.0]), 0.0, 2)

    @given(
        scale_exp=st.integers(min_value=-8, max_value=2),
        act_exp=st.integers(min_value=-8, max_value=2),
        bias=st.floats(min_value=-20, max_value=20, allow_nan=False),
        bits=st.sampled_from([2, 3, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_exact_staircase(self, scale_exp, act_exp, bias, bits):
        """For any po2 scales and float bias, thresholds are bit-exact."""
        self._check_equivalence(2.0**scale_exp, bias, 2.0**act_exp, bits, -500, 500)

    @given(
        acc_scale=st.floats(min_value=1e-4, max_value=4.0, allow_nan=False),
        act_scale=st.floats(min_value=1e-4, max_value=4.0, allow_nan=False),
        bias=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_float_scales_also_exact(self, acc_scale, act_scale, bias):
        """The fix-up loop guarantees exactness even for arbitrary scales."""
        self._check_equivalence(acc_scale, bias, act_scale, 3, -400, 400)
