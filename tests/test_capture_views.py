"""CaptureArray views as the end-to-end interchange type.

Property-style pins for the zero-record data path: slicing, masking,
fancy indexing, ``concat`` and ``iter_windows`` must agree bit-exactly
with the equivalent record-list operations (timestamps, labels and
payloads included), views must share the base buffers while mask/fancy
results are independent copies, and the chunked-columnar
``ECUStreamSession`` must produce the same output as record-built
chunks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.can.log import CaptureArray
from repro.datasets.features import BitFeatureEncoder
from repro.errors import DatasetError
from repro.soc.ecu import IDSEnabledECU

N = 400  # frames pinned from the session capture for the property tests


@pytest.fixture(scope="module")
def base(dos_capture):
    return dos_capture.capture[:N], dos_capture.records[:N]


class TestSliceEquivalence:
    @given(
        start=st.integers(min_value=-N - 5, max_value=N + 5),
        stop=st.integers(min_value=-N - 5, max_value=N + 5),
        step=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_slice_matches_record_slice(self, base, start, stop, step):
        capture, records = base
        sl = slice(start, stop, step)
        assert capture[sl].to_records() == records[sl]

    @given(index=st.integers(min_value=-N, max_value=N - 1))
    @settings(max_examples=40, deadline=None)
    def test_int_index_matches_record(self, base, index):
        capture, records = base
        assert capture[index].to_records() == [records[index]]

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bool_mask_matches_compress(self, base, seed):
        capture, records = base
        mask = np.random.default_rng(seed).random(N) < 0.3
        expected = [record for record, keep in zip(records, mask) if keep]
        assert capture[mask].to_records() == expected

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_fancy_index_matches_take(self, base, seed):
        capture, records = base
        # Unsorted with repeats: fancy indexing is a gather, not a filter.
        index = np.random.default_rng(seed).integers(0, N, size=50)
        assert capture[index].to_records() == [records[i] for i in index]

    def test_label_mask_selects_attacks(self, base):
        capture, records = base
        attacks = capture[capture.labels == 1]
        assert attacks.to_records() == [r for r in records if r.is_attack]


class TestViewVsCopySemantics:
    def test_slices_are_zero_copy_views(self, dos_capture):
        capture = dos_capture.capture[:50]
        view = capture[10:20]
        for field in ("timestamps", "can_ids", "dlcs", "payloads", "labels"):
            assert np.shares_memory(getattr(view, field), getattr(capture, field))

    def test_mask_and_fancy_results_are_copies(self, dos_capture):
        capture = dos_capture.capture[:50]
        masked = capture[np.arange(50) % 2 == 0]
        gathered = capture[np.array([3, 1, 2])]
        for field in ("timestamps", "can_ids", "dlcs", "payloads", "labels"):
            assert not np.shares_memory(getattr(masked, field), getattr(capture, field))
            assert not np.shares_memory(getattr(gathered, field), getattr(capture, field))
        # Mutating a copy must not leak into the base capture.
        before = capture.labels.copy()
        masked.labels[:] = 99
        gathered.timestamps[:] = -1.0
        np.testing.assert_array_equal(capture.labels, before)


class TestConcat:
    def test_concat_matches_list_concat(self, base):
        capture, records = base
        parts = [capture[:100], capture[100:250], capture[250:]]
        joined = CaptureArray.concat(parts)
        assert joined.to_records() == records
        # Alias and long-form name agree.
        long_form = CaptureArray.concatenate(parts)
        np.testing.assert_array_equal(joined.timestamps, long_form.timestamps)
        np.testing.assert_array_equal(joined.payloads, long_form.payloads)

    def test_concat_empty_rejected(self):
        with pytest.raises(DatasetError):
            CaptureArray.concat([])


class TestIterWindows:
    @given(window_ms=st.integers(min_value=20, max_value=800))
    @settings(max_examples=20, deadline=None)
    def test_windows_match_record_grouping(self, base, window_ms):
        capture, records = base
        window_s = window_ms / 1e3
        windows = list(capture.iter_windows(window_s))
        start = records[0].timestamp
        # Record-list reference: the same half-open edges, per window.
        count = int(np.floor((records[-1].timestamp - start) / window_s)) + 1
        edges = start + window_s * np.arange(count + 1, dtype=np.float64)
        assert len(windows) == count
        for k, window in enumerate(windows):
            expected = [r for r in records if edges[k] <= r.timestamp < edges[k + 1]]
            assert window.to_records() == expected

    def test_windows_are_exhaustive_views(self, base):
        capture, _ = base
        windows = list(capture.iter_windows(0.05))
        assert sum(len(w) for w in windows) == len(capture)
        rejoined = CaptureArray.concat(windows)
        np.testing.assert_array_equal(rejoined.timestamps, capture.timestamps)
        np.testing.assert_array_equal(rejoined.can_ids, capture.can_ids)
        np.testing.assert_array_equal(rejoined.labels, capture.labels)
        for window in windows:
            if len(window):
                assert np.shares_memory(window.timestamps, capture.timestamps)

    def test_origin_skips_earlier_frames(self, base):
        capture, records = base
        origin = float(capture.timestamps[len(capture) // 2])
        windows = list(capture.iter_windows(0.1, origin=origin))
        total = sum(len(w) for w in windows)
        assert total == sum(1 for r in records if r.timestamp >= origin)

    def test_empty_and_bad_window(self, base):
        capture, _ = base
        assert list(capture[:0].iter_windows(0.1)) == []
        with pytest.raises(DatasetError):
            list(capture.iter_windows(0.0))


class TestStreamSessionColumnarAB:
    """Chunked-columnar streaming == record-built chunks, end to end."""

    def test_stream_from_capture_matches_stream_from_records(self, dos_capture, dos_ip):
        window = dos_capture[:1200]
        records = window.to_records()

        def run(source):
            ecu = IDSEnabledECU(dos_ip, BitFeatureEncoder(), name="ab-ecu", seed=5)
            session = ecu.open_stream(source, chunk_size=256)
            chunks = []
            while not session.done:
                chunks.append(session.step())
            return session.finish(), chunks

        columnar_report, columnar_chunks = run(window)
        record_report, record_chunks = run(records)
        assert columnar_chunks == record_chunks
        np.testing.assert_array_equal(columnar_report.predictions, record_report.predictions)
        np.testing.assert_array_equal(columnar_report.labels, record_report.labels)
        np.testing.assert_array_equal(
            columnar_report.kept_indices, record_report.kept_indices
        )
        assert columnar_report.fifo_dropped == record_report.fifo_dropped

    def test_chunk_slices_encode_like_record_built_chunks(self, dos_capture, dos_ip):
        window = dos_capture[:1000]
        records = window.to_records()
        encoder = BitFeatureEncoder()
        ecu = IDSEnabledECU(dos_ip, encoder, name="ab-chunk-ecu", seed=5)
        session = ecu.open_stream(window, chunk_size=300)
        while not session.done:
            chunk = session.step()
            kept = session.kept_indices
            chunk_records = [
                records[int(kept[i])] for i in range(chunk.start, chunk.stop)
            ]
            expected = encoder.encode_batch(CaptureArray.from_records(chunk_records))
            actual = encoder.encode_batch(
                session._kept[chunk.start : chunk.stop]
            )
            np.testing.assert_array_equal(actual, expected)
