"""Tests for quant layers, QuantTensor and the QNN exporter."""

import numpy as np
import pytest

from repro.autograd.layers import Dropout, Sequential
from repro.autograd.tensor import Tensor
from repro.errors import CompileError, QuantError, ShapeError
from repro.quant import (
    QuantHardTanh,
    QuantIdentity,
    QuantLinear,
    QuantReLU,
    QuantTensor,
    export_qnn,
)


class TestQuantLinear:
    def test_forward_uses_quantised_weights(self, rng):
        layer = QuantLinear(8, 4, weight_bit_width=4, seed=1)
        x = rng.normal(size=(3, 8))
        out = layer(Tensor(x))
        fake, _ = layer.quantized_weight()
        np.testing.assert_allclose(out.data, x @ fake.data.T + layer.bias.data)

    def test_weights_trainable_through_quantisation(self, rng):
        layer = QuantLinear(4, 2, weight_bit_width=4, seed=1)
        layer(Tensor(rng.normal(size=(5, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert np.abs(layer.weight.grad).sum() > 0

    def test_int_weight_range(self):
        layer = QuantLinear(16, 8, weight_bit_width=3, seed=2)
        ints, _ = layer.int_weight()
        assert ints.min() >= -3 and ints.max() <= 3

    def test_input_shape_checked(self):
        with pytest.raises(ShapeError):
            QuantLinear(4, 2)(Tensor(np.zeros((1, 5))))


class TestQuantActivations:
    def test_quant_relu_output_grid(self, rng):
        act = QuantReLU(bit_width=4)
        out = act(Tensor(rng.normal(size=200)))
        ints = out.data / act.scale
        np.testing.assert_allclose(ints, np.round(ints), atol=1e-9)
        assert ints.min() >= 0 and ints.max() <= 15

    def test_eval_freezes_observer(self, rng):
        act = QuantReLU(bit_width=4)
        act(Tensor(np.abs(rng.normal(size=50))))
        act.eval()
        scale = act.scale
        act(Tensor(np.abs(rng.normal(size=50)) * 1000))
        assert act.scale == scale

    def test_train_unfreezes(self, rng):
        act = QuantReLU(bit_width=4)
        act(Tensor(np.abs(rng.normal(size=50))))
        act.eval()
        act.train()
        scale = act.scale
        act(Tensor(np.abs(rng.normal(size=50)) * 1000))
        assert act.scale != scale

    def test_quant_identity_handles_signed(self, rng):
        quant = QuantIdentity(bit_width=8, signed=True)
        out = quant(Tensor(rng.normal(size=100)))
        assert out.data.min() < 0  # signed values survive

    def test_hardtanh_fixed_range(self):
        act = QuantHardTanh(bit_width=4)
        out = act(Tensor(np.array([-5.0, 0.0, 5.0])))
        assert out.data.min() >= -1.0 and out.data.max() <= 1.0

    def test_extra_state_roundtrip(self, rng):
        act = QuantReLU(bit_width=4)
        act(Tensor(np.abs(rng.normal(size=64))))
        state = act.state_dict()
        fresh = QuantReLU(bit_width=4)
        fresh.load_state_dict(state)
        assert fresh.scale == act.scale


class TestQuantTensor:
    def test_int_repr_roundtrip(self):
        qt = QuantTensor.from_int(np.array([0, 3, 15]), 0.25, bit_width=4, signed=False)
        np.testing.assert_array_equal(qt.int_repr(), [0, 3, 15])

    def test_off_grid_rejected(self):
        qt = QuantTensor(np.array([0.3]), 0.25, bit_width=4, signed=False)
        with pytest.raises(QuantError):
            qt.int_repr()

    def test_out_of_range_rejected(self):
        with pytest.raises(QuantError):
            QuantTensor.from_int(np.array([16]), 0.25, bit_width=4, signed=False)

    def test_negative_scale_rejected(self):
        with pytest.raises(QuantError):
            QuantTensor(np.array([1.0]), -1.0, 4, False)


def build_canonical(seed=0):
    return Sequential(
        QuantIdentity(bit_width=8, signed=False),
        QuantLinear(12, 8, weight_bit_width=4, seed=seed),
        QuantReLU(bit_width=4),
        QuantLinear(8, 2, weight_bit_width=4, seed=seed + 1),
    )


class TestExport:
    def _calibrated(self, rng):
        model = build_canonical()
        model.train()
        model(Tensor(rng.random((64, 12))))
        return model

    def test_topology(self, rng):
        export = export_qnn(self._calibrated(rng))
        assert export.topology == [12, 8, 2]
        assert export.layers[0].activation is not None
        assert export.layers[-1].activation is None

    def test_execute_float_matches_model_eval(self, rng):
        model = self._calibrated(rng)
        export = export_qnn(model)
        x = rng.random((32, 12))
        model.eval()
        np.testing.assert_array_equal(export.execute_float(x), model(Tensor(x)).data)

    def test_dropout_skipped(self, rng):
        model = Sequential(
            QuantIdentity(bit_width=8),
            QuantLinear(6, 4, seed=1),
            QuantReLU(),
            Dropout(0.3),
            QuantLinear(4, 2, seed=2),
        )
        model(Tensor(rng.random((16, 6))))
        export = export_qnn(model)
        assert export.topology == [6, 4, 2]

    def test_missing_input_quant_rejected(self):
        model = Sequential(QuantLinear(4, 2, seed=1))
        with pytest.raises(CompileError):
            export_qnn(model)

    def test_trailing_relu_rejected(self, rng):
        model = Sequential(
            QuantIdentity(bit_width=8),
            QuantLinear(4, 2, seed=1),
            QuantReLU(),
        )
        model(Tensor(rng.random((8, 4))))
        with pytest.raises(CompileError):
            export_qnn(model)

    def test_non_quant_layer_rejected(self, rng):
        from repro.autograd.layers import Linear

        model = Sequential(QuantIdentity(bit_width=8), Linear(4, 2, seed=1))
        with pytest.raises(CompileError):
            export_qnn(model)

    def test_to_dict_serialisable(self, rng):
        import json

        export = export_qnn(self._calibrated(rng))
        assert json.dumps(export.to_dict())
