"""Setup shim for offline environments without the ``wheel`` package.

``pip install -e .`` on such environments needs the legacy
``setup.py develop`` path (``--no-use-pep517 --no-build-isolation``);
all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
