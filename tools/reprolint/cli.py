"""Command-line entry point: ``python -m tools.reprolint <paths>``.

Exit status is 0 when clean, 1 when any violation survives
suppression, 2 on usage errors — so the script slots directly into CI
and ``scripts/lint.sh``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from tools.reprolint.core import registered_rules, run_lint
from tools.reprolint.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for the columnar IDS stack: "
            "RNG discipline, hot-path purity, dtype discipline, pickle "
            "safety, A/B-equivalence coverage, sim-time hygiene, "
            "typed-core completeness."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--tests",
        action="append",
        default=[],
        metavar="PATH",
        help=(
            "test tree(s) parsed for cross-file checks (A/B coverage) "
            "but not linted per-file; repeatable"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--json-output",
        default=None,
        metavar="FILE",
        help="additionally write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root used to relativise paths and match role registries",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, cls in sorted(registered_rules().items()):
            print(f"{name:20s} {cls.description}")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        result = run_lint(
            paths=args.paths,
            tests=args.tests,
            root=args.root,
            rules=rules,
        )
    except ValueError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    if args.json_output:
        Path(args.json_output).write_text(render_json(result) + "\n", encoding="utf-8")
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
