"""reprolint — AST-based invariant checks for the columnar IDS stack.

The repo's headline guarantees (bit-exact fastbus-vs-event arbitration,
bit-exact compiled inference, order-stable seeded campaign sweeps) rest
on coding conventions that nothing in the runtime enforces.  This
package enforces them statically, with stdlib ``ast`` only:

======================  ====================================================
rule                    invariant
======================  ====================================================
``rng-discipline``      every random draw flows through an injected
                        ``np.random.Generator`` built by ``repro.utils.rng``
``hot-path-purity``     columnar modules never fall back to per-frame
                        Python loops or per-record materialisation
``dtype-discipline``    kernel allocations pass an explicit ``dtype=``
``pickle-safety``       everything shipped to a process pool is a
                        module-top-level callable
``ab-equivalence``      every public ``engine=`` / ``compiled=`` A/B switch
                        is exercised with both values under ``tests/``
``sim-time-hygiene``    no wall-clock reads inside simulation modules
``typed-core``          the strict-mypy core modules stay fully annotated
``bare-suppression``    every suppression carries a justification
======================  ====================================================

Run ``python -m tools.reprolint --list-rules`` for the catalogue, or
``scripts/lint.sh`` for the full gate (reprolint + typed-core mypy).
"""

from tools.reprolint.core import LintResult, Violation, run_lint
from tools.reprolint.project import DEFAULT_CONFIG, LintConfig

__all__ = ["DEFAULT_CONFIG", "LintConfig", "LintResult", "Violation", "run_lint"]
