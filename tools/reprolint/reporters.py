"""Render a :class:`LintResult` as human text or machine JSON."""

from __future__ import annotations

import json
from collections import Counter

from tools.reprolint.core import LintResult


def render_text(result: LintResult) -> str:
    """gcc-style `path:line: [rule] message` lines plus a summary."""
    out = [violation.render() for violation in result.violations]
    if result.violations:
        counts = Counter(v.rule for v in result.violations)
        breakdown = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        out.append("")
        out.append(
            f"reprolint: {len(result.violations)} violation(s) "
            f"({breakdown}) in {result.files_scanned} file(s)"
        )
    else:
        out.append(
            f"reprolint: clean — {result.files_scanned} file(s) scanned, "
            f"{result.test_files} test file(s) cross-referenced"
        )
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    """Stable JSON for the CI artifact: summary block + violation list."""
    payload = {
        "summary": {
            "violations": len(result.violations),
            "files_scanned": result.files_scanned,
            "test_files": result.test_files,
            "clean": result.clean,
            "by_rule": dict(
                sorted(Counter(v.rule for v in result.violations).items())
            ),
        },
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "rule": v.rule,
                "message": v.message,
            }
            for v in result.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
