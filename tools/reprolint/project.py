"""Repo-specific lint configuration: which modules carry which roles.

Roles map modules to rule families:

* ``rng-home`` — the one module allowed to construct generators
  (:mod:`repro.utils.rng`); everything else must receive them injected.
* ``kernel`` — numeric kernels where a dtype-less allocation silently
  picks platform-dependent integer widths (CRC/stuffing/accumulator
  math must not change meaning between Linux int64 and Windows int32).
* ``columnar`` — hot-path modules that must stay vectorised; the
  per-module whitelist names the sanctioned scalar helpers (A/B
  materialisers, CSV I/O, the contended-run replay loops).
* ``sim`` — simulation modules where wall-clock reads would leak host
  time into virtual-time results (benchmarks own wall-clock).
* ``typed-core`` — the strict-mypy module list (mirrored in
  ``mypy.ini``); reprolint enforces annotation completeness locally so
  the gate fails fast even where mypy is not installed.
* ``pool`` — the fault-tolerant shard machinery (``src/repro/fleet/``):
  no unbounded ``future.result()``/``.exception()`` waits, no executor
  ``.map()`` fan-out (the submit/wait scheduler owns failure handling).

Fixture files opt into roles inline with
``# reprolint: module-role=...`` — see ``tests/lint_fixtures/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

__all__ = ["DEFAULT_CONFIG", "LintConfig"]


def _freeze(mapping: Mapping[str, frozenset[str]]) -> Mapping[str, frozenset[str]]:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class LintConfig:
    """Path registries driving role assignment (suffix-matched)."""

    rng_home: tuple[str, ...] = ("src/repro/utils/rng.py",)
    kernel_modules: tuple[str, ...] = (
        "src/repro/can/fastbus.py",
        "src/repro/can/faults.py",
        "src/repro/can/log.py",
        "src/repro/can/frame.py",
        "src/repro/can/node.py",
        "src/repro/can/attacks.py",
        "src/repro/finn/compiled.py",
        "src/repro/utils/bitops.py",
        "src/repro/soc/ecu.py",
        "src/repro/soc/accelerator.py",
    )
    columnar_modules: Mapping[str, frozenset[str]] = field(
        default_factory=lambda: _freeze(
            {
                # Sanctioned scalar paths: the event-engine materialisers
                # used for A/B comparisons and the scalar frames() shim.
                "src/repro/can/fastbus.py": frozenset(
                    {"scheduled_frames", "schedule_from_frames", "to_bus_records"}
                ),
                # Row-interchange boundary: record round-trips and CSV I/O
                # are the module's purpose, not a hot-path regression.
                # iter_windows loops over windows, never frames.
                "src/repro/can/log.py": frozenset(
                    {"to_frame", "write_car_hacking_csv", "read_car_hacking_csv", "iter_windows"}
                ),
                # Chunk / per-layer / per-threshold-step loops iterate
                # layers and steps, never frames; summary() is reporting.
                "src/repro/finn/compiled.py": frozenset(
                    {"_forward", "_forward_chunk", "summary"}
                ),
                # Training consumes CaptureArray end to end; no scalar
                # helpers sanctioned.
                "src/repro/training/pipeline.py": frozenset(),
                # Encoders: the base-class scalar reference fallback and
                # the O(window) offset loop carry inline suppressions.
                "src/repro/datasets/features.py": frozenset(),
                # Stream path: chunks are array slices; the only scalar
                # loop is the exact drop-oldest overflow replay.
                "src/repro/soc/ecu.py": frozenset(
                    {"_simulate_fifo_admission_events"}
                ),
            }
        )
    )
    sim_prefixes: tuple[str, ...] = ("src/repro/can/", "src/repro/soc/")
    pool_prefixes: tuple[str, ...] = ("src/repro/fleet/",)
    typed_core: tuple[str, ...] = (
        "src/repro/can/frame.py",
        "src/repro/can/log.py",
        "src/repro/can/fastbus.py",
        "src/repro/can/faults.py",
        "src/repro/utils/rng.py",
        "src/repro/finn/compiled.py",
        "src/repro/fleet/spec.py",
        "src/repro/fleet/aggregate.py",
        "src/repro/fleet/pool.py",
        "src/repro/fleet/runner.py",
        "src/repro/fleet/health.py",
        "src/repro/fleet/chaos.py",
        "src/repro/fleet/checkpoint.py",
    )
    #: A/B switch parameter -> the pair of values tests must exercise.
    #: ``"<non-null>"`` is the ab-equivalence checker's sentinel for a
    #: non-literal argument (a constructed model bound to a variable):
    #: ``faults=`` switches must be tested off (None) and on (a model).
    ab_required: Mapping[str, tuple[object, ...]] = field(
        default_factory=lambda: MappingProxyType(
            {
                "engine": ("columnar", "event"),
                "compiled": (True, False),
                "faults": (None, "<non-null>"),
            }
        )
    )

    def _matches(self, rel: str, entry: str) -> bool:
        return rel == entry or rel.endswith("/" + entry)

    def roles_for(self, rel: str) -> frozenset[str]:
        roles: set[str] = set()
        if any(self._matches(rel, entry) for entry in self.rng_home):
            roles.add("rng-home")
        if any(self._matches(rel, entry) for entry in self.kernel_modules):
            roles.add("kernel")
        if any(self._matches(rel, entry) for entry in self.columnar_modules):
            roles.add("columnar")
        if any(prefix in rel for prefix in self.sim_prefixes):
            roles.add("sim")
        if any(prefix in rel for prefix in self.pool_prefixes):
            roles.add("pool")
        if any(self._matches(rel, entry) for entry in self.typed_core):
            roles.add("typed-core")
        return frozenset(roles)

    def hot_path_whitelist_for(self, rel: str) -> frozenset[str]:
        for entry, names in self.columnar_modules.items():
            if self._matches(rel, entry):
                return names
        return frozenset()


DEFAULT_CONFIG = LintConfig()
