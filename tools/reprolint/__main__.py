"""``python -m tools.reprolint`` dispatch."""

from __future__ import annotations

import sys

from tools.reprolint.cli import main

sys.exit(main())
