"""Typed-core completeness: the strict-mypy modules stay fully annotated.

``mypy.ini`` turns on a strict flag set for the five invariant-bearing
core modules, but mypy is an optional install on dev machines.  This
rule enforces the structural half locally with zero dependencies:
``typed-core`` modules must import ``from __future__ import
annotations`` and every def (including ``__init__``) must annotate its
return type and all parameters (``self``/``cls`` excepted).  CI then
runs real mypy as the second blocking step for the semantic half.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Checker, FileContext, Violation, register


@register
class TypedCore(Checker):
    name = "typed-core"
    description = (
        "typed-core modules (the strict-mypy list in mypy.ini) need "
        "from __future__ import annotations and complete parameter/return "
        "annotations on every def"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if "typed-core" not in ctx.roles:
            return
        has_future = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "__future__"
            and any(alias.name == "annotations" for alias in node.names)
            for node in ctx.tree.body
        )
        if not has_future:
            yield Violation(
                path=ctx.rel,
                line=1,
                rule=self.name,
                message="typed-core module lacks 'from __future__ import annotations'",
            )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.returns is None:
                yield Violation(
                    path=ctx.rel,
                    line=node.lineno,
                    rule=self.name,
                    message=f"def {node.name} is missing a return-type annotation",
                )
            args = [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]
            for arg in args:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    yield Violation(
                        path=ctx.rel,
                        line=arg.lineno,
                        rule=self.name,
                        message=(
                            f"def {node.name}: parameter {arg.arg!r} is missing "
                            "a type annotation"
                        ),
                    )
