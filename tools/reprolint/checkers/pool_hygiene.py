"""Pool hygiene: the fault-tolerant scheduler's own discipline.

The fleet pool (``repro/fleet/``) exists because a bare ``pool.map``
has no failure story: one lost worker or hung shard takes the whole
run's results with it, and an unbounded ``future.result()`` blocks the
scheduler forever on exactly the failure it was built to survive.
This rule keeps those patterns from creeping back into pool-role
modules:

* ``future.result()`` / ``future.exception()`` without a ``timeout``
  argument — an unbounded wait inside the machinery that promises
  per-shard deadlines.  Completed futures read their value with
  ``result(timeout=0)``, which cannot block.
* ``.map(...)`` on an executor — the fire-and-pray fan-out the
  submit/wait scheduler replaced.  ``map`` re-raises the first worker
  exception, discards every other shard's result and offers no
  per-task timeout, retry or rebuild hook.

Modules opt in via the ``pool`` role (``src/repro/fleet/`` in the
shipped config, or a ``# reprolint: module-role=pool`` pragma).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Checker, FileContext, Violation, attr_chain, register

_EXECUTOR_CONSTRUCTORS = {"ThreadPoolExecutor", "ProcessPoolExecutor"}
_BLOCKING_METHODS = {"result", "exception"}


def _is_executor_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    if chain is None:
        return False
    if chain[-1] in _EXECUTOR_CONSTRUCTORS:
        return True
    # multiprocessing.Pool / mp.Pool
    return chain[-1] == "Pool" and (
        len(chain) == 1 or chain[0] in ("multiprocessing", "mp")
    )


def _has_timeout(node: ast.Call) -> bool:
    if node.args:
        return True  # positional form: result(0) / exception(5.0)
    return any(kw.arg == "timeout" for kw in node.keywords)


class _HygieneVisitor(ast.NodeVisitor):
    def __init__(self, checker: "PoolHygiene", ctx: FileContext):
        self.checker = checker
        self.ctx = ctx
        self.executor_vars: set[str] = set()
        self.violations: list[Violation] = []

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_executor_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.executor_vars.add(target.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if _is_executor_call(item.context_expr) and isinstance(
                item.optional_vars, ast.Name
            ):
                self.executor_vars.add(item.optional_vars.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _BLOCKING_METHODS and not _has_timeout(node):
                self._flag(
                    node,
                    f".{func.attr}() without a timeout can block the scheduler "
                    "forever; pass timeout= (completed futures take timeout=0)",
                )
            elif func.attr == "map" and self._is_executor(func.value):
                self._flag(
                    node,
                    "executor .map() has no per-task timeout, retry or rebuild "
                    "path; use the submit/wait scheduler (run_sharded) instead",
                )
        self.generic_visit(node)

    def _is_executor(self, owner: ast.expr) -> bool:
        if isinstance(owner, ast.Name):
            return owner.id in self.executor_vars
        return _is_executor_call(owner)

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.ctx.rel,
                line=getattr(node, "lineno", 1),
                rule=self.checker.name,
                message=message,
            )
        )


@register
class PoolHygiene(Checker):
    name = "pool-hygiene"
    description = (
        "pool-role modules must bound every future.result()/.exception() "
        "with a timeout and never fan out through executor .map()"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if "pool" not in ctx.roles:
            return
        visitor = _HygieneVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.violations
