"""Sim-time hygiene: simulation modules never read the wall clock.

Everything under ``repro/can/`` and ``repro/soc/`` advances *virtual*
time (bus bit times, FIFO drain instants, arbitration waits).  One
``time.time()`` in that stack makes results host-speed-dependent and
unreproducible; wall-clock measurement belongs in ``benchmarks/`` and
the training loop, which are outside the ``sim`` role.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Checker, FileContext, Violation, attr_chain, register

_TIME_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FNS = {"now", "utcnow", "today"}


@register
class SimTimeHygiene(Checker):
    name = "sim-time-hygiene"
    description = (
        "simulation modules (repro/can, repro/soc) must not read wall-clock "
        "time (time.time/monotonic/perf_counter, datetime.now); wall time "
        "belongs in benchmarks"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if "sim" not in ctx.roles:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and (node.module or "") == "time":
                wall = sorted(
                    alias.name for alias in node.names if alias.name in _TIME_FNS
                )
                if wall:
                    yield self._violation(
                        ctx,
                        node,
                        f"imports wall-clock reader(s) {', '.join(wall)} from time",
                    )
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain is None or len(chain) < 2:
                    continue
                if chain[0] == "time" and chain[-1] in _TIME_FNS:
                    yield self._violation(
                        ctx, node, f"{'.'.join(chain)}() reads the wall clock"
                    )
                elif chain[0] == "datetime" and chain[-1] in _DATETIME_FNS:
                    yield self._violation(
                        ctx, node, f"{'.'.join(chain)}() reads the wall clock"
                    )

    def _violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            rule=self.name,
            message=message + " inside a simulation module; simulated results "
            "must be wall-clock independent",
        )
