"""A/B-equivalence coverage: every engine=/compiled= switch is tested both ways.

The columnar bus kernel and the compiled inference engine are only
trustworthy because the reference implementations stay reachable behind
``engine="event"`` / ``compiled=False`` and tests hold both sides to
bit-exact agreement.  A switch whose reference side no tests exercise
is an equivalence claim nothing checks.  This project-level rule
cross-references the ASTs of the linted sources and the ``--tests``
tree: for every *public* callable exposing an A/B parameter
(``engine``, ``compiled``), both required values must be observable in
test calls, where an observation is

* an explicit literal keyword (``engine="event"``),
* an omitted keyword (counts as the source-side default),
* a literal forwarded one level through an enclosing test helper
  (``def report_for(engine): ... gateway.monitor(engine=engine)``
  called as ``report_for("event")``), or
* any non-literal keyword, recorded as the ``"<non-null>"`` sentinel —
  switches like ``faults=`` take a constructed object rather than an
  enum literal, so the required pair is ``(None, "<non-null>")``:
  tested off, and tested with *some* model bound to a variable.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator, Sequence

from tools.reprolint.core import Checker, FileContext, Violation, register

_MISSING = object()

#: Observation recorded for a keyword whose value is any non-literal
#: expression; pairs with the same sentinel string in ``ab_required``.
NON_LITERAL = "<non-null>"


def _literal(node: ast.expr) -> object:
    if isinstance(node, ast.Constant):
        return node.value
    return _MISSING


def _callee_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@dataclass(frozen=True)
class _Definition:
    func: str
    param: str
    rel: str
    line: int
    default: object  # _MISSING when the parameter has no default


def _param_default(args: ast.arguments, name: str) -> object:
    positional = [*args.posonlyargs, *args.args]
    for index, arg in enumerate(positional):
        if arg.arg == name:
            offset = index - (len(positional) - len(args.defaults))
            if 0 <= offset < len(args.defaults):
                return _literal(args.defaults[offset])
            return _MISSING
    for index, arg in enumerate(args.kwonlyargs):
        if arg.arg == name:
            default = args.kw_defaults[index]
            return _literal(default) if default is not None else _MISSING
    return _MISSING


class _CallScanner(ast.NodeVisitor):
    """Collects test-side calls with the enclosing function recorded."""

    def __init__(self) -> None:
        self.stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        #: (callee, param) -> set of observed literal values
        self.observed: dict[tuple[str, str], set[object]] = defaultdict(set)
        #: calls recorded for the forwarding pass: (callee, call, enclosing def)
        self.calls: list[
            tuple[str, ast.Call, ast.FunctionDef | ast.AsyncFunctionDef | None]
        ] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.stack.append(node)
        self.generic_visit(node)
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        callee = _callee_name(node)
        if callee is not None:
            self.calls.append((callee, node, self.stack[-1] if self.stack else None))
        self.generic_visit(node)


@register
class ABEquivalenceCoverage(Checker):
    name = "ab-equivalence"
    description = (
        "every public callable with an engine=/compiled= A/B switch must be "
        "invoked with both values somewhere under the test tree"
    )

    def check_project(
        self, sources: Sequence[FileContext], tests: Sequence[FileContext]
    ) -> Iterator[Violation]:
        definitions = self._collect_definitions(sources)
        if not definitions:
            return
        by_func: dict[str, list[_Definition]] = defaultdict(list)
        for definition in definitions:
            by_func[definition.func].append(definition)

        observed: dict[tuple[str, str], set[object]] = defaultdict(set)
        scanners = [self._scan(ctx) for ctx in tests]

        # Pass 1: direct literals, defaults, and forwarder discovery.
        forwarders: list[tuple[str, str, str, str, object]] = []
        for scanner in scanners:
            for callee, call, enclosing in scanner.calls:
                if callee not in by_func:
                    continue
                has_star_kwargs = any(kw.arg is None for kw in call.keywords)
                for definition in by_func[callee]:
                    keyword = next(
                        (kw for kw in call.keywords if kw.arg == definition.param), None
                    )
                    if keyword is None:
                        if not has_star_kwargs and definition.default is not _MISSING:
                            observed[(callee, definition.param)].add(definition.default)
                        continue
                    value = _literal(keyword.value)
                    if value is not _MISSING:
                        observed[(callee, definition.param)].add(value)
                        continue
                    forwarded = False
                    if isinstance(keyword.value, ast.Name) and enclosing is not None:
                        params = [
                            a.arg
                            for a in [
                                *enclosing.args.posonlyargs,
                                *enclosing.args.args,
                            ]
                        ]
                        if keyword.value.id in params:
                            forwarded = True
                            forwarders.append(
                                (
                                    enclosing.name,
                                    keyword.value.id,
                                    callee,
                                    definition.param,
                                    _param_default(enclosing.args, keyword.value.id),
                                )
                            )
                    if not forwarded:
                        # Non-literal, non-forwarded argument: a
                        # constructed object (or expression) was passed,
                        # so the switch is observably on even though the
                        # exact value is not a literal.
                        observed[(callee, definition.param)].add(NON_LITERAL)

        # Pass 2: resolve literals passed through one forwarding level.
        for caller, caller_param, callee, param, caller_default in forwarders:
            for scanner in scanners:
                for name, call, _ in scanner.calls:
                    if name != caller:
                        continue
                    value = self._argument_literal(call, caller, caller_param, scanners)
                    provided = any(kw.arg == caller_param for kw in call.keywords)
                    if value is not _MISSING:
                        observed[(callee, param)].add(value)
                    elif provided:
                        # Forwarded a non-literal: the switch is on.
                        observed[(callee, param)].add(NON_LITERAL)
                    elif caller_default is not _MISSING:
                        observed[(callee, param)].add(caller_default)

        for definition in definitions:
            required = set(self.config.ab_required[definition.param])
            covered = observed.get((definition.func, definition.param), set())
            missing = sorted(required - covered, key=repr)
            if missing:
                values = ", ".join(f"{definition.param}={value!r}" for value in missing)
                yield Violation(
                    path=definition.rel,
                    line=definition.line,
                    rule=self.name,
                    message=(
                        f"{definition.func}() exposes the {definition.param}= A/B "
                        f"switch but no test exercises {values}; add an "
                        "equivalence test covering both sides"
                    ),
                )

    # -- helpers -----------------------------------------------------------
    def _collect_definitions(self, sources: Sequence[FileContext]) -> list[_Definition]:
        definitions: list[_Definition] = []
        for ctx in sources:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if node.name.startswith("_"):
                    continue
                params = {
                    a.arg
                    for a in [
                        *node.args.posonlyargs,
                        *node.args.args,
                        *node.args.kwonlyargs,
                    ]
                }
                for param in self.config.ab_required:
                    if param in params:
                        definitions.append(
                            _Definition(
                                func=node.name,
                                param=param,
                                rel=ctx.rel,
                                line=node.lineno,
                                default=_param_default(node.args, param),
                            )
                        )
        return definitions

    def _scan(self, ctx: FileContext) -> _CallScanner:
        scanner = _CallScanner()
        scanner.visit(ctx.tree)
        return scanner

    def _argument_literal(
        self,
        call: ast.Call,
        caller: str,
        caller_param: str,
        scanners: Sequence[_CallScanner],
    ) -> object:
        """The literal bound to ``caller_param`` in a call to ``caller``."""
        for kw in call.keywords:
            if kw.arg == caller_param:
                return _literal(kw.value)
        index = self._positional_index(caller, caller_param, scanners)
        if index is not None and index < len(call.args):
            return _literal(call.args[index])
        return _MISSING

    def _positional_index(
        self, caller: str, caller_param: str, scanners: Sequence[_CallScanner]
    ) -> int | None:
        for scanner in scanners:
            for _, _, enclosing in scanner.calls:
                if enclosing is not None and enclosing.name == caller:
                    positional = [
                        a.arg
                        for a in [
                            *enclosing.args.posonlyargs,
                            *enclosing.args.args,
                        ]
                    ]
                    if caller_param in positional:
                        return positional.index(caller_param)
        return None
