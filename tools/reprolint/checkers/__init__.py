"""Built-in checkers; importing this package registers all of them."""

from tools.reprolint.checkers import (  # noqa: F401  (registration side effects)
    ab_coverage,
    dtype,
    hotpath,
    pickle_safety,
    pool_hygiene,
    rng,
    simtime,
    typedcore,
)
