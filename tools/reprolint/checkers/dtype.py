"""Dtype discipline: kernel allocations must pass an explicit dtype.

``np.zeros(n)`` defaults to float64 and ``np.arange(n)`` to the
platform's C long — int64 on Linux, int32 on Windows.  CRC-15, bit
stuffing and accumulator-bound math in the kernel modules rely on
64-bit widths, so an implicit dtype is a latent cross-platform
bit-exactness bug even when today's CI happens to pass.  The rule is
mechanical on purpose: in ``kernel``-role modules every ``np.zeros`` /
``np.empty`` / ``np.ones`` / ``np.full`` / ``np.arange`` call states
its dtype, either as a keyword or positionally.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Checker, FileContext, Violation, attr_chain, register

#: allocator -> index of the positional slot where dtype may appear.
_ALLOCATORS = {"zeros": 1, "empty": 1, "ones": 1, "arange": 3, "full": 2}


@register
class DtypeDiscipline(Checker):
    name = "dtype-discipline"
    description = (
        "np.zeros/empty/ones/full/arange in kernel modules must pass an "
        "explicit dtype= (implicit defaults are platform-dependent)"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if "kernel" not in ctx.roles:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if (
                chain is None
                or len(chain) != 2
                or chain[0] not in ("np", "numpy")
                or chain[1] not in _ALLOCATORS
            ):
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) > _ALLOCATORS[chain[1]]:
                continue  # dtype passed positionally
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                rule=self.name,
                message=(
                    f"np.{chain[1]} without explicit dtype= in a kernel module "
                    "(default int width is platform-dependent)"
                ),
            )
