"""Pickle safety: process pools only receive module-level callables.

``run_campaign_sweep(backend="process")`` ships work to a
``ProcessPoolExecutor``; every callable crossing that boundary is
pickled by reference, so lambdas, closures and locally-defined
functions fail at runtime — but only on the process backend, which the
quick test lane does not always exercise.  This rule checks statically
that anything passed to a process pool's ``submit``/``map`` (or its
``initializer=``) is a plain module-top-level def/class.  Thread pools
are exempt: nothing is pickled there, and the thread backend
legitimately uses closures.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Checker, FileContext, Violation, attr_chain, register

_SUBMIT_METHODS = {"submit", "map", "apply", "apply_async", "imap", "imap_unordered"}


def _is_process_pool_call(node: ast.Call) -> bool:
    chain = attr_chain(node.func)
    if chain is None:
        return False
    if chain[-1] == "ProcessPoolExecutor":
        return True
    # multiprocessing.Pool / mp.Pool / get_context(...).Pool
    if chain[-1] == "Pool" and (len(chain) == 1 or chain[0] in ("multiprocessing", "mp")):
        return True
    return False


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            names.update(alias.asname or alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


class _PoolVisitor(ast.NodeVisitor):
    def __init__(self, checker: "PickleSafety", ctx: FileContext):
        self.checker = checker
        self.ctx = ctx
        self.module_names = _module_level_names(ctx.tree)
        self.local_defs = {
            node.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and node.name not in self.module_names
        }
        self.pool_vars: list[str] = []
        self.violations: list[Violation] = []

    # -- pool lifecycle ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if _is_process_pool_call(node):
            for kw in node.keywords:
                if kw.arg == "initializer":
                    self._check_callable(kw.value, "initializer for a process pool")
        elif isinstance(node.func, ast.Attribute) and node.func.attr in _SUBMIT_METHODS:
            owner = node.func.value
            if isinstance(owner, ast.Name) and owner.id in self.pool_vars and node.args:
                self._check_callable(
                    node.args[0], f"callable passed to process pool .{node.func.attr}()"
                )
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        bound: list[str] = []
        for item in node.items:
            if (
                isinstance(item.context_expr, ast.Call)
                and _is_process_pool_call(item.context_expr)
                and isinstance(item.optional_vars, ast.Name)
            ):
                bound.append(item.optional_vars.id)
        for item in node.items:
            self.visit(item.context_expr)
        self.pool_vars.extend(bound)
        for stmt in node.body:
            self.visit(stmt)
        for name in bound:
            self.pool_vars.remove(name)

    # -- the actual contract ----------------------------------------------
    def _check_callable(self, node: ast.expr, what: str) -> None:
        if isinstance(node, ast.Lambda):
            self._flag(node, f"{what} is a lambda; lambdas cannot be pickled")
        elif isinstance(node, ast.Name):
            if node.id in self.local_defs:
                self._flag(
                    node,
                    f"{what} ({node.id!r}) is defined inside a function; process "
                    "workers can only import module-top-level callables",
                )
            elif node.id not in self.module_names:
                self._flag(
                    node,
                    f"{what} ({node.id!r}) is not a module-top-level name; process "
                    "workers pickle callables by reference",
                )
        # Attribute access (module.fn) resolves importably — accepted.

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.ctx.rel,
                line=getattr(node, "lineno", 1),
                rule=self.checker.name,
                message=message,
            )
        )


@register
class PickleSafety(Checker):
    name = "pickle-safety"
    description = (
        "callables submitted to process pools (submit/map/initializer) must "
        "be module-top-level defs/classes, never lambdas or closures"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        visitor = _PoolVisitor(self, ctx)
        visitor.visit(ctx.tree)
        return iter(visitor.violations)
