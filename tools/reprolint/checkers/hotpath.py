"""Hot-path purity: columnar modules stay columnar.

The fastbus/capture/compiled-engine stack earns its ~10-100x speedups
by never touching frames one at a time.  Regressions creep in as
innocent-looking ``for`` loops or ``.to_records()`` round-trips, which
work, pass the bit-exactness tests, and quietly put a per-frame Python
loop back on the hot path.  In ``columnar``-role modules this rule
flags:

* ``for``/``async for`` statements (comprehensions building columns
  are fine — the ban is on statement loops, the shape per-frame
  fallbacks take);
* calls to ``.to_records()`` (row materialisation);
* ``.records`` attribute reads (the lazily materialised row list on
  ``CarHackingCapture`` — hot paths must take ``.capture`` instead);
* per-element ``CANFrame(...)`` construction.

Each module's sanctioned scalar helpers (A/B materialisers, CSV I/O,
contended-run replay) are whitelisted in
:mod:`tools.reprolint.project`; anything else needs an inline
suppression with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Checker, FileContext, Violation, attr_chain, register


@register
class HotPathPurity(Checker):
    name = "hot-path-purity"
    description = (
        "columnar modules may not iterate frames in for-loops, call "
        ".to_records(), read .records, or construct CANFrame per "
        "element outside whitelisted helpers"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if "columnar" not in ctx.roles:
            return
        yield from self._walk(ctx, ctx.tree, in_whitelisted=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, in_whitelisted: bool
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            whitelisted = in_whitelisted
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                whitelisted = whitelisted or child.name in ctx.hot_path_whitelist
            if not whitelisted:
                yield from self._inspect(ctx, child)
            yield from self._walk(ctx, child, whitelisted)

    def _inspect(self, ctx: FileContext, node: ast.AST) -> Iterator[Violation]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                rule=self.name,
                message=(
                    "Python for-loop in a columnar module; vectorise or move "
                    "into a whitelisted scalar helper"
                ),
            )
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr == "to_records":
                yield Violation(
                    path=ctx.rel,
                    line=node.lineno,
                    rule=self.name,
                    message=(
                        ".to_records() materialises per-frame rows on the "
                        "columnar hot path"
                    ),
                )
            else:
                chain = attr_chain(node.func)
                if chain and chain[-1] == "CANFrame":
                    yield Violation(
                        path=ctx.rel,
                        line=node.lineno,
                        rule=self.name,
                        message=(
                            "per-element CANFrame construction in a columnar "
                            "module; keep frames in ScheduleArray/CaptureArray "
                            "columns"
                        ),
                    )
        elif (
            isinstance(node, ast.Attribute)
            and node.attr == "records"
            and isinstance(node.ctx, ast.Load)
        ):
            yield Violation(
                path=ctx.rel,
                line=node.lineno,
                rule=self.name,
                message=(
                    ".records materialises the per-frame row list; columnar "
                    "paths take the CaptureArray (.capture) directly"
                ),
            )
