"""RNG discipline: every draw flows through an injected Generator.

The E-table reproductions only hold if every stochastic component
consumes a named, seed-derived ``np.random.Generator`` from
:mod:`repro.utils.rng`.  A single module-level ``np.random.rand()`` (or
stdlib ``random``) call introduces hidden global state that breaks
order-stable campaign sweeps and cross-backend determinism, so any
generator construction or legacy-API draw outside the ``rng-home``
module is a violation — annotations like ``np.random.Generator`` are
fine, calls are not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Checker, FileContext, Violation, attr_chain, register


@register
class RngDiscipline(Checker):
    name = "rng-discipline"
    description = (
        "randomness must flow through injected np.random.Generator streams "
        "built by repro.utils.rng (no np.random.* calls, no stdlib random)"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        if "rng-home" in ctx.roles:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._violation(
                            ctx,
                            node,
                            "stdlib random is banned; draw from an injected "
                            "np.random.Generator (repro.utils.rng.new_rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("random."):
                    yield self._violation(
                        ctx,
                        node,
                        "stdlib random is banned; draw from an injected "
                        "np.random.Generator (repro.utils.rng.new_rng)",
                    )
                elif module == "numpy.random" or module.startswith("numpy.random."):
                    yield self._violation(
                        ctx,
                        node,
                        "import from numpy.random; construct generators only in "
                        "repro.utils.rng and inject them",
                    )
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if (
                    chain
                    and len(chain) >= 3
                    and chain[0] in ("np", "numpy")
                    and chain[1] == "random"
                ):
                    target = ".".join(chain)
                    yield self._violation(
                        ctx,
                        node,
                        f"{target}() call outside repro/utils/rng.py; use "
                        "repro.utils.rng.new_rng / an injected Generator",
                    )

    def _violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            rule=self.name,
            message=message,
        )
