"""Checker registry, suppression parsing and the lint runner.

Design notes
------------
* Checkers are pure AST visitors registered by name; per-file checkers
  see one :class:`FileContext`, project checkers see every parsed file
  at once (source files and test files separately, so cross-references
  like A/B-coverage can be computed without linting the tests
  themselves).
* Module *roles* decide which rules apply where.  Real modules get
  their roles from :mod:`tools.reprolint.project` path registries;
  any file can also declare roles inline (fixtures do)::

      # reprolint: module-role=kernel,columnar

* Suppressions are justification-carrying comments::

      x = np.full(n, name)  # reprolint: disable=dtype-discipline -- unicode width inferred

  A standalone suppression comment line applies to the next code line.
  ``disable-file=`` suppresses for the whole file.  A suppression with
  no ``-- justification`` is honoured *and* reported as a
  ``bare-suppression`` violation, so silent opt-outs cannot
  accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.reprolint.project import LintConfig

__all__ = [
    "Checker",
    "FileContext",
    "LintResult",
    "Violation",
    "attr_chain",
    "register",
    "registered_rules",
    "run_lint",
]

#: Rules that exist outside the checker registry and can never be
#: suppressed (a suppression that cannot itself be suppressed keeps the
#: justification requirement enforceable).
BARE_SUPPRESSION = "bare-suppression"
PARSE_ERROR = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<scope>-file)?="
    r"(?P<rules>[A-Za-z0-9_\-, ]+?)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)
_ROLE_RE = re.compile(r"#\s*reprolint:\s*module-role=(?P<roles>[A-Za-z0-9_\-, ]+)")
_WHITELIST_RE = re.compile(
    r"#\s*reprolint:\s*hot-path-whitelist=(?P<names>[A-Za-z0-9_, ]+)"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule breach at one location."""

    path: str  #: repo-relative posix path
    line: int  #: 1-indexed source line
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppressions:
    """Per-file suppression state parsed from raw source lines."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: (line, message) pairs for bare/unknown suppressions.
    defects: list[tuple[int, str]] = field(default_factory=list)

    def covers(self, rule: str, line: int) -> bool:
        if rule in self.file_level:
            return True
        return rule in self.by_line.get(line, ())


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """(line, comment-text) for every real comment token.

    Pragmas are only honoured in actual comments — a docstring that
    *quotes* the suppression syntax (like the one above) must not
    register a suppression for its own line.
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return []


def _parse_suppressions(
    comments: Sequence[tuple[int, str]],
    lines: Sequence[str],
    known_rules: set[str],
) -> Suppressions:
    supp = Suppressions()
    for number, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = [r.strip() for r in match.group("rules").split(",") if r.strip()]
        why = (match.group("why") or "").strip()
        if not why:
            supp.defects.append(
                (number, "suppression without a justification (add ' -- <reason>')")
            )
        for rule in rules:
            if rule not in known_rules:
                supp.defects.append((number, f"suppression names unknown rule {rule!r}"))
        if match.group("scope"):
            supp.file_level.update(rules)
            continue
        targets = [number]
        if lines[number - 1].lstrip().startswith("#"):
            # Standalone comment: also covers the next code line.
            cursor = number  # 0-based index of the following line
            while cursor < len(lines):
                follower = lines[cursor].strip()
                if follower and not follower.startswith("#"):
                    targets.append(cursor + 1)
                    break
                cursor += 1
        for target in targets:
            supp.by_line.setdefault(target, set()).update(rules)
    return supp


@dataclass
class FileContext:
    """One parsed source file plus everything checkers need to know."""

    path: Path
    rel: str
    source: str
    lines: list[str]
    tree: ast.Module
    roles: frozenset[str]
    hot_path_whitelist: frozenset[str]
    suppressions: Suppressions

    @classmethod
    def load(cls, path: Path, root: Path, config: "LintConfig") -> "FileContext":
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        comments = _comment_tokens(source)
        roles = set(config.roles_for(rel))
        whitelist = set(config.hot_path_whitelist_for(rel))
        for _, text in comments:
            role_match = _ROLE_RE.search(text)
            if role_match:
                roles.update(
                    r.strip() for r in role_match.group("roles").split(",") if r.strip()
                )
            wl_match = _WHITELIST_RE.search(text)
            if wl_match:
                whitelist.update(
                    n.strip() for n in wl_match.group("names").split(",") if n.strip()
                )
        known = set(registered_rules()) | {BARE_SUPPRESSION, PARSE_ERROR}
        return cls(
            path=path,
            rel=rel,
            source=source,
            lines=lines,
            tree=tree,
            roles=frozenset(roles),
            hot_path_whitelist=frozenset(whitelist),
            suppressions=_parse_suppressions(comments, lines, known),
        )


class Checker:
    """Base class: subclass, set ``name``/``description``, register."""

    name = ""
    description = ""

    def __init__(self, config: "LintConfig"):
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(
        self, sources: Sequence[FileContext], tests: Sequence[FileContext]
    ) -> Iterator[Violation]:
        return iter(())


_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no rule name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_rules() -> dict[str, type[Checker]]:
    """Name -> checker class, importing the built-in checkers once."""
    import tools.reprolint.checkers  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name-rooted expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


@dataclass
class LintResult:
    violations: list[Violation]
    files_scanned: int
    test_files: int

    @property
    def clean(self) -> bool:
        return not self.violations


def _discover(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    seen: set[Path] = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def run_lint(
    paths: Sequence[str | Path],
    tests: Sequence[str | Path] = (),
    config: "LintConfig | None" = None,
    root: str | Path = ".",
    rules: Sequence[str] | None = None,
) -> LintResult:
    """Lint ``paths``; parse ``tests`` for cross-file checks only.

    Returns every unsuppressed violation, sorted by location.  Files
    under ``tests`` are *not* linted per-file — they feed project-level
    checkers (A/B-equivalence coverage) as the cross-reference side.
    """
    from tools.reprolint.project import DEFAULT_CONFIG

    config = config if config is not None else DEFAULT_CONFIG
    root = Path(root)
    registry = registered_rules()
    if rules is not None:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        registry = {name: cls for name, cls in registry.items() if name in rules}

    violations: list[Violation] = []
    contexts: list[FileContext] = []
    for path in _discover(Path(p) for p in paths):
        try:
            contexts.append(FileContext.load(path, root, config))
        except SyntaxError as exc:
            violations.append(
                Violation(
                    path=path.as_posix(),
                    line=exc.lineno or 1,
                    rule=PARSE_ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    test_contexts: list[FileContext] = []
    for path in _discover(Path(p) for p in tests):
        try:
            test_contexts.append(FileContext.load(path, root, config))
        except SyntaxError:
            continue  # the tier-1 run owns test syntax errors

    by_rel = {ctx.rel: ctx for ctx in contexts}
    for ctx in contexts:
        for line, message in ctx.suppressions.defects:
            violations.append(
                Violation(path=ctx.rel, line=line, rule=BARE_SUPPRESSION, message=message)
            )

    checkers = [cls(config) for cls in registry.values()]
    raw: list[Violation] = []
    for checker in checkers:
        for ctx in contexts:
            raw.extend(checker.check_file(ctx))
        raw.extend(checker.check_project(contexts, test_contexts))

    for violation in raw:
        ctx = by_rel.get(violation.path)
        if ctx is not None and ctx.suppressions.covers(violation.rule, violation.line):
            continue
        violations.append(violation)

    violations.sort()
    return LintResult(
        violations=violations,
        files_scanned=len(contexts),
        test_files=len(test_contexts),
    )
