"""Experiment E12 — noise robustness: detection vs wire bit-error rate.

The paper's IDS is evaluated on clean captures; a deployed automotive
harness is not clean.  This harness sweeps the wire-level fault layer
(:mod:`repro.can.faults`) across bit-error rates spanning a benign bus
(1e-6, well under a frame per thousand corrupted) to a badly damaged
harness (1e-3, where a meaningful fraction of every window is error
frames and retransmissions), and drives one attack campaign through
the gateway at each point.

What the table answers: *does detection degrade gracefully?*  At every
BER the run must complete without crashes, every observed frame stays
labelled (corrupted attempts are flagged and excluded from
predictions, never silently classified), and detection rate/latency
shift smoothly rather than collapsing — the IDS loses only the frames
physics took from it.

The BER=0 row runs the clean fast path (``faults=None``) and anchors
the sweep: its counters are byte-identical to a pre-fault-layer run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.can.campaign import SCENARIOS, ScenarioRegistry, scenario_detector
from repro.can.faults import WireFaultModel
from repro.errors import ConfigError
from repro.experiments.context import ExperimentContext
from repro.soc.gateway import GatewayReport, build_campaign_gateway
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = [
    "DEFAULT_BERS",
    "NoisePoint",
    "NoiseSweepResult",
    "render_noise_sweep",
    "run_noise_sweep",
]

#: Swept bit-error rates: the clean anchor plus four decades spanning a
#: healthy harness to a badly damaged one.
DEFAULT_BERS: tuple[float, ...] = (0.0, 1e-6, 1e-5, 1e-4, 1e-3)


@dataclass(frozen=True)
class NoisePoint:
    """One BER point: what the wire did and what the IDS still caught."""

    bit_error_rate: float
    frames_observed: int  #: wire records, corrupted attempts included
    frames_corrupted: int
    retransmissions: int
    bus_off_events: int
    frames_processed: int  #: clean frames the IDS actually classified
    phases_injecting: int
    phases_detected: int
    worst_detection_latency_s: float | None
    f1: float  #: frame-weighted F1 over serviced frames (percent)
    p99_latency_s: float

    @property
    def corruption_rate(self) -> float:
        if self.frames_observed == 0:
            return 0.0
        return self.frames_corrupted / self.frames_observed

    @property
    def detection_rate(self) -> float:
        if self.phases_injecting == 0:
            return 0.0
        return self.phases_detected / self.phases_injecting


@dataclass(frozen=True)
class NoiseSweepResult:
    """E12's outcome: one :class:`NoisePoint` per swept BER."""

    scenario: str
    detector: str
    duration: float
    points: tuple[NoisePoint, ...]

    def point(self, ber: float) -> NoisePoint:
        for candidate in self.points:
            if candidate.bit_error_rate == ber:
                return candidate
        raise ConfigError(f"no sweep point at BER {ber!r}")


def _fold_report(ber: float, report: GatewayReport, injecting: int) -> NoisePoint:
    latencies = [
        outcome.detection_latency_s
        for outcome in report.phase_outcomes
        if outcome.detection_latency_s is not None
    ]
    scored = [
        (channel.report.metrics["f1"], channel.num_processed)
        for channel in report.channels
        if channel.report is not None and channel.report.metrics is not None
    ]
    weight = sum(count for _, count in scored)
    f1 = sum(value * count for value, count in scored) / weight if weight else 0.0
    p99 = max(
        (channel.report.p99_latency_s
         for channel in report.channels
         if channel.report is not None),
        default=0.0,
    )
    return NoisePoint(
        bit_error_rate=ber,
        frames_observed=report.total_frames,
        frames_corrupted=report.total_corrupted,
        retransmissions=report.total_retransmissions,
        bus_off_events=report.total_bus_off,
        frames_processed=report.total_processed,
        phases_injecting=injecting,
        phases_detected=report.phases_detected,
        worst_detection_latency_s=max(latencies) if latencies else None,
        f1=f1,
        p99_latency_s=p99,
    )


def run_noise_sweep(
    context: ExperimentContext,
    bers: tuple[float, ...] = DEFAULT_BERS,
    scenario: str = "baseline-spoof-rpm",
    registry: ScenarioRegistry = SCENARIOS,
    duration: float | None = None,
    engine: str = "columnar",
) -> NoiseSweepResult:
    """Sweep one campaign's detection outcome across wire bit-error rates.

    Every BER point replays the *same* campaign on the same vehicle
    seed — only the fault model changes — so differences between rows
    are attributable to wire noise alone.  The BER=0 point passes
    ``faults=None`` and therefore exercises the byte-identical clean
    path.  Graceful-degradation invariants (no NaNs, every frame
    flagged or classified, conservation of observed frames) are
    asserted here, so a regression fails the experiment rather than
    producing a quietly wrong table.
    """
    if not bers:
        raise ConfigError("noise sweep needs at least one bit-error rate")
    campaign = registry.build(scenario, duration=duration)
    detector = scenario_detector(campaign)
    ip = context.ip(detector)
    seed = derive_seed(context.settings.seed, "noise-sweep")
    injecting = sum(1 for phase in campaign.phases if phase.injects)

    points: list[NoisePoint] = []
    for ber in bers:
        faults = WireFaultModel(seed=seed, bit_error_rate=ber) if ber > 0 else None
        gateway = build_campaign_gateway(
            ip,
            campaign,
            vehicle_seed=seed,
            ecu_seed=derive_seed(seed, "noise-ecu"),
            name=f"noise-{campaign.name}-{ber:g}",
        )
        report = gateway.monitor(
            duration=campaign.duration,
            truth=campaign.truth_windows(),
            engine=engine,
            faults=faults,
        )
        point = _fold_report(ber, report, injecting)
        # Graceful degradation, enforced: the sweep either holds these
        # invariants at every BER or fails loudly.
        for channel in report.channels:
            if channel.report is None:
                continue
            if not math.isfinite(channel.report.mean_latency_s):
                raise ConfigError(
                    f"non-finite latency at BER {ber:g} on {channel.name!r}"
                )
            serviced = len(channel.report.predictions)
            if serviced + channel.corrupted_frames + channel.report.fifo_dropped != (
                channel.report.num_frames
            ):
                raise ConfigError(
                    f"frame accounting leak at BER {ber:g} on {channel.name!r}"
                )
            if np.any((channel.report.predictions != 0) & (channel.report.predictions != 1)):
                raise ConfigError(f"unlabelled prediction at BER {ber:g}")
        if not math.isfinite(point.f1) or not math.isfinite(point.p99_latency_s):
            raise ConfigError(f"non-finite metric at BER {ber:g}")
        points.append(point)
    return NoiseSweepResult(
        scenario=scenario,
        detector=detector,
        duration=campaign.duration,
        points=tuple(points),
    )


def render_noise_sweep(result: NoiseSweepResult) -> Table:
    """The detection-vs-BER table."""
    table = Table(
        [
            "BER",
            "Frames",
            "Corrupted",
            "Retrans",
            "Bus-off",
            "Phases hit",
            "Det. latency",
            "F1",
            "p99 lat.",
        ],
        title=(
            f"E12 — noise robustness ({result.scenario}, "
            f"{result.detector} detector, {result.duration:g} s)"
        ),
    )
    for point in result.points:
        worst = point.worst_detection_latency_s
        table.add_row(
            [
                f"{point.bit_error_rate:g}",
                point.frames_observed,
                f"{point.frames_corrupted} ({100.0 * point.corruption_rate:.2f}%)",
                point.retransmissions,
                point.bus_off_events,
                f"{point.phases_detected}/{point.phases_injecting}",
                f"{1e3 * worst:.1f} ms" if worst is not None else "-",
                f"{point.f1:.1f}",
                f"{1e3 * point.p99_latency_s:.2f} ms",
            ]
        )
    return table
