"""Experiment E9 — folding/partitioning trade-off of the FINN flow.

Sweeps the folding throughput target for the deployed 4-bit model and
tabulates the throughput-vs-resource staircase, the optimisation the
paper refers to as "streaming layer optimisations and partitioning ...
chosen during FINN compilation flow".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.foldingsweep import DEFAULT_TARGETS, FoldingPoint, run_folding_sweep
from repro.experiments.context import ExperimentContext
from repro.quant.export import export_qnn
from repro.utils.tables import Table

__all__ = ["FoldingReport", "run_foldings", "render_foldings"]


@dataclass
class FoldingReport:
    """Folding sweep points for the deployed model."""

    points: list[FoldingPoint]

    @property
    def resource_span(self) -> float:
        """LUT ratio between the fastest and slowest folding."""
        luts = [point.resources.lut for point in self.points]
        return max(luts) / min(luts)


def run_foldings(
    context: ExperimentContext,
    targets: tuple[float, ...] = DEFAULT_TARGETS,
) -> FoldingReport:
    """Sweep folding targets on the trained DoS model."""
    export = export_qnn(context.trained("dos").model)
    return FoldingReport(points=run_folding_sweep(export, targets, context.settings.clock_mhz))


def render_foldings(report: FoldingReport) -> Table:
    table = Table(
        ["Target (fps)", "Achieved (fps)", "II (cyc)", "Latency (us)", "PE", "SIMD", "LUT", "Max util"],
        title="Folding sweep: throughput target vs. hardware cost (4-bit QMLP)",
    )
    for point in report.points:
        table.add_row(
            [
                f"{point.target_fps:g}",
                f"{point.achieved_fps:,.0f}",
                point.initiation_interval,
                f"{point.latency_us:.2f}",
                "/".join(str(p) for p in point.pe),
                "/".join(str(s) for s in point.simd),
                f"{point.resources.lut:,.0f}",
                f"{point.max_utilization_pct:.2f}%",
            ]
        )
    return table
