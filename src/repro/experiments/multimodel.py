"""Experiment E10 — multi-model simultaneous deployment.

"The single model deployed consumes less than 4 % of resources on the
device, allowing multiple models to be executed simultaneously for a
comprehensive IDS integration at slightly higher energy consumption."

The harness deploys the DoS and Fuzzy IPs together on one overlay,
verifies both still classify correctly, and reports combined
resources/power against the single-model operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.features import BitFeatureEncoder
from repro.experiments.context import ExperimentContext
from repro.finn.resources import ResourceEstimate
from repro.soc.device import ZCU104
from repro.soc.driver import Overlay
from repro.soc.power import PowerModel
from repro.training.metrics import ids_metrics
from repro.utils.tables import Table

__all__ = ["MultiModelResult", "run_multimodel", "render_multimodel"]


@dataclass
class MultiModelResult:
    """Combined two-detector deployment measurements."""

    combined_resources: ResourceEstimate
    combined_max_utilization_pct: float
    single_power_w: float
    combined_power_w: float
    dos_f1: float
    fuzzy_f1: float

    @property
    def power_overhead_w(self) -> float:
        """The "slightly higher energy" of the second model."""
        return self.combined_power_w - self.single_power_w


def run_multimodel(context: ExperimentContext, eval_frames: int = 3000) -> MultiModelResult:
    """Deploy both detectors on one overlay and evaluate each."""
    dos_ip = context.ip("dos")
    fuzzy_ip = context.ip("fuzzy")
    overlay = Overlay({"dos_ids": dos_ip, "fuzzy_ids": fuzzy_ip})

    encoder = BitFeatureEncoder()
    metrics = {}
    for attack, core in (("dos", overlay.dos_ids), ("fuzzy", overlay.fuzzy_ids)):
        features, labels = encoder.encode(context.capture(attack)[:eval_frames])
        predictions = core.classify_batch(features)
        metrics[attack] = ids_metrics(labels, predictions)

    combined = dos_ip.resources + fuzzy_ip.resources
    power = PowerModel()
    single_power = power.total_w(dos_ip.resources, dos_ip.clock_hz)
    # Combined dynamic power: both cores instantiated and active.
    combined_power = (
        power.total_w(dos_ip.resources, dos_ip.clock_hz)
        + power.pl_dynamic_w(fuzzy_ip.resources, fuzzy_ip.clock_hz)
    )
    return MultiModelResult(
        combined_resources=combined,
        combined_max_utilization_pct=ZCU104.max_utilization(combined),
        single_power_w=single_power,
        combined_power_w=combined_power,
        dos_f1=metrics["dos"]["f1"],
        fuzzy_f1=metrics["fuzzy"]["f1"],
    )


def render_multimodel(result: MultiModelResult) -> Table:
    table = Table(
        ["Deployment", "LUT", "DSP", "Max util", "Power", "DoS F1", "Fuzzy F1"],
        title="Multi-model deployment: DoS + Fuzzy detectors co-resident",
    )
    table.add_row(
        [
            "DoS + Fuzzy (combined)",
            f"{result.combined_resources.lut:,.0f}",
            f"{result.combined_resources.dsp:.0f}",
            f"{result.combined_max_utilization_pct:.2f}%",
            f"{result.combined_power_w:.2f} W",
            f"{result.dos_f1:.2f}",
            f"{result.fuzzy_f1:.2f}",
        ]
    )
    table.add_row(
        [
            "single model (reference)",
            "-",
            "-",
            "-",
            f"{result.single_power_w:.2f} W",
            "-",
            "-",
        ]
    )
    table.add_row(
        ["second-model overhead", "-", "-", "-", f"+{result.power_overhead_w * 1e3:.0f} mW", "-", "-"]
    )
    return table
