"""Experiment E4 — the 0.12 ms per-message latency, decomposed.

The paper reports a single number; the reproduction shows where it
comes from: OS receive path, driver MMIO, accelerator compute, and the
long right tail OS jitter adds.  The breakdown is the evidence for the
paper's architectural argument — the FPGA core is microseconds, so
coupling it to the ECU (instead of a discrete GPU box) is what makes
per-message line-rate IDS feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.soc.accelerator import MemoryMappedAccelerator
from repro.soc.latency import LatencyBreakdown, LatencyModel
from repro.utils.rng import new_rng
from repro.utils.tables import Table

__all__ = ["LatencyReport", "run_latency_report", "render_latency_report"]


@dataclass
class LatencyReport:
    """Breakdown plus distribution statistics."""

    breakdown: LatencyBreakdown
    mean_ms: float
    p50_ms: float
    p99_ms: float
    hw_core_us: float  # accelerator compute alone
    paper_ms: float = 0.12


def run_latency_report(context: ExperimentContext, samples: int = 20000) -> LatencyReport:
    """Measure the deployed DoS IP's per-message latency distribution."""
    ip = context.ip("dos")
    accel = MemoryMappedAccelerator(ip)
    trace = accel.reference_trace()
    model = LatencyModel()
    breakdown = model.end_to_end(trace)
    rng = new_rng(context.settings.seed, "latency-report")
    draws = model.sample(trace, samples, rng)
    return LatencyReport(
        breakdown=breakdown,
        mean_ms=1e3 * float(draws.mean()),
        p50_ms=1e3 * float(np.percentile(draws, 50)),
        p99_ms=1e3 * float(np.percentile(draws, 99)),
        hw_core_us=1e6 * ip.latency_seconds,
    )


def render_latency_report(report: LatencyReport) -> Table:
    """Segment table in the style of a driver-level profile."""
    table = Table(
        ["Segment", "Time (us)", "Share"],
        title=(
            "Per-message latency breakdown "
            f"(mean {report.mean_ms:.3f} ms, p99 {report.p99_ms:.3f} ms; "
            f"paper reports {report.paper_ms:g} ms)"
        ),
    )
    for name, microseconds, percent in report.breakdown.table_rows():
        table.add_row([name, f"{microseconds:.1f}", f"{percent:.1f}%"])
    table.add_row(["total (nominal)", f"{1e3 * report.breakdown.total_ms:.1f}", "100.0%"])
    return table
