"""Experiment E7 — resource utilisation ("<4 % of the device").

Per-stage resource table of the deployed 4-bit IP plus utilisation
against the XCZU7EV capacity, including the headroom argument the
paper makes ("allowing multiple models to be executed simultaneously").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentContext
from repro.finn.resources import ResourceEstimate, wrapper_resources
from repro.soc.device import ZCU104, FPGADevice
from repro.utils.tables import Table

__all__ = ["ResourcesResult", "run_resources", "render_resources"]


@dataclass
class ResourcesResult:
    """Total/maximum utilisation of one deployed detector."""

    per_stage: list[tuple[str, ResourceEstimate]]
    total: ResourceEstimate
    utilization_pct: dict[str, float]
    max_utilization_pct: float
    instances_fit: int
    device: FPGADevice = ZCU104
    paper_claim_pct: float = 4.0

    @property
    def meets_paper_claim(self) -> bool:
        return self.max_utilization_pct < self.paper_claim_pct


def run_resources(context: ExperimentContext) -> ResourcesResult:
    """Collect per-stage and total estimates for the deployed DoS IP."""
    ip = context.ip("dos")
    per_stage: list[tuple[str, ResourceEstimate]] = [
        (stage.name, stage.resources()) for stage in ip.pipeline.stages
    ]
    fifo_total = ResourceEstimate()
    for fifo in ip.pipeline.fifos:
        fifo_total = fifo_total + fifo.resources()
    per_stage.append(("stream FIFOs", fifo_total))
    per_stage.append(("AXI wrapper", wrapper_resources()))
    return ResourcesResult(
        per_stage=per_stage,
        total=ip.resources,
        utilization_pct=ZCU104.utilization(ip.resources),
        max_utilization_pct=ZCU104.max_utilization(ip.resources),
        instances_fit=ZCU104.instances_that_fit(ip.resources),
    )


def render_resources(result: ResourcesResult) -> Table:
    table = Table(
        ["Stage", "LUT", "FF", "BRAM36", "DSP"],
        title=(
            f"Resource estimate on {result.device.name} ({result.device.part}) — "
            f"max utilisation {result.max_utilization_pct:.2f}% "
            f"(paper claims <{result.paper_claim_pct:g}%)"
        ),
    )
    for name, est in result.per_stage:
        table.add_row([name, f"{est.lut:,.0f}", f"{est.ff:,.0f}", f"{est.bram36:.1f}", f"{est.dsp:.0f}"])
    table.add_row(
        [
            "TOTAL",
            f"{result.total.lut:,.0f}",
            f"{result.total.ff:,.0f}",
            f"{result.total.bram36:.1f}",
            f"{result.total.dsp:.0f}",
        ]
    )
    table.add_row(
        [
            "device utilisation",
            f"{result.utilization_pct['lut']:.2f}%",
            f"{result.utilization_pct['ff']:.2f}%",
            f"{result.utilization_pct['bram36']:.2f}%",
            f"{result.utilization_pct['dsp']:.2f}%",
        ]
    )
    return table
