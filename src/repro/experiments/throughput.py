"""Experiment E5 — throughput and the near-line-rate claim.

"our QMLP coupled ECU can process over 8300 messages per second at
highest payload capacity, achieving near-line-rate detection on
high-speed critical CAN networks."

Line rate is a property of the bus: at 1 Mbit/s (high-speed CAN
maximum), a worst-case-stuffed 8-byte frame occupies ~135 bit times, so
the wire can never deliver more than ~7400 frames/s.  The experiment
computes that bound exactly (via the frame codec) and measures the ECU
against it under *both* throughput conventions:

* **inverse latency** — the paper's derivation (1 / per-message
  latency), which assumes no overlap between pipeline stages;
* **sustained (II-gated)** — the steady-state rate of the pipelined
  receive path, bounded by its slowest stage (CPU software path, driver
  MMIO, or core initiation interval), the same definition
  ``SimReport.throughput_fps`` uses for the core alone.

The experiment also scales the claim out to the multi-segment gateway
deployment: a 3-channel gateway is monitored once with a detector IP
per channel and once with all channels time-multiplexing *one* IP
behind a round-robin arbiter, so the table shows what sharing the
accelerator costs in aggregate sustained rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.can.bus import BITRATE_HS_CAN, BITRATE_HS_CAN_MAX
from repro.can.frame import max_frame_bits
from repro.datasets.features import BitFeatureEncoder
from repro.experiments.context import ExperimentContext
from repro.soc.arbiter import SharedAcceleratorArbiter
from repro.soc.ecu import IDSEnabledECU
from repro.soc.gateway import GatewayReport, build_segment_gateway
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = ["ThroughputResult", "run_throughput", "render_throughput"]


@dataclass
class ThroughputResult:
    """ECU processing rate vs. wire line rates."""

    ecu_throughput_fps: float  #: sustained, II-gated (the honest rate figure)
    ecu_inverse_latency_fps: float  #: 1/mean-latency (the paper's convention)
    hw_core_fps: float
    line_rate_500k_fps: float
    line_rate_1m_fps: float
    paper_claim_fps: float = 8300.0
    gateway_channels: int = 0  #: segments in the gateway scale-out run
    gateway_per_ip_fps: float = 0.0  #: aggregate sustained, one IP per channel
    gateway_shared_ip_fps: float = 0.0  #: aggregate sustained, one shared IP
    #: per-channel effective drain rates under the shared-IP arbiter
    gateway_shared_ip_channel_fps: dict[str, float] = field(default_factory=dict)

    @property
    def near_line_rate_1m(self) -> bool:
        """Does the ECU keep up with a saturated 1 Mbit/s bus?"""
        return self.ecu_throughput_fps >= self.line_rate_1m_fps

    @property
    def meets_paper_claim(self) -> bool:
        return self.ecu_throughput_fps >= self.paper_claim_fps

    @property
    def inverse_latency_meets_paper_claim(self) -> bool:
        """The claim under the paper's own (inverse-latency) convention."""
        return self.ecu_inverse_latency_fps >= self.paper_claim_fps


def _monitor_gateway(
    context: ExperimentContext,
    channels: int,
    duration: float,
    arbiter: SharedAcceleratorArbiter | None,
) -> GatewayReport:
    """One N-segment gateway run (channel 0 DoS-flooded), fresh ECUs."""
    seed = derive_seed(context.settings.seed, "throughput-gateway")
    gateway = build_segment_gateway(
        context.ip("dos"),
        channels=channels,
        flood_window=(0.0, duration),
        vehicle_seed=seed,
        ecu_seed=seed,
        name="throughput-gateway",
    )
    return gateway.monitor(duration=duration, with_metrics=False, arbiter=arbiter)


def run_throughput(
    context: ExperimentContext,
    eval_frames: int = 4000,
    gateway_channels: int = 3,
    gateway_duration: float = 1.0,
) -> ThroughputResult:
    """Measure sustained ECU throughput and compute wire bounds.

    Beyond the single-ECU figures, runs the ``gateway_channels``-segment
    gateway twice — per-channel IPs vs one round-robin-shared IP — so
    the result carries both deployments' aggregate sustained rates.
    """
    ip = context.ip("dos")
    ecu = IDSEnabledECU(
        ip,
        BitFeatureEncoder(),
        name="throughput-ecu",
        seed=derive_seed(context.settings.seed, "throughput"),
    )
    report = ecu.process_capture(context.capture("dos")[:eval_frames], with_metrics=False)
    bits_per_frame = max_frame_bits(dlc=8)  # highest payload capacity, worst-case stuffing
    per_ip = shared = None
    if gateway_channels:  # 0 skips the scale-out runs (single-ECU figures only)
        per_ip = _monitor_gateway(context, gateway_channels, gateway_duration, arbiter=None)
        shared = _monitor_gateway(
            context, gateway_channels, gateway_duration, arbiter=SharedAcceleratorArbiter()
        )
    return ThroughputResult(
        ecu_throughput_fps=report.throughput_fps,
        ecu_inverse_latency_fps=report.inverse_latency_fps,
        hw_core_fps=ip.throughput_fps,
        line_rate_500k_fps=BITRATE_HS_CAN / bits_per_frame,
        line_rate_1m_fps=BITRATE_HS_CAN_MAX / bits_per_frame,
        gateway_channels=gateway_channels,
        gateway_per_ip_fps=per_ip.aggregate_sustained_fps if per_ip else 0.0,
        gateway_shared_ip_fps=shared.aggregate_sustained_fps if shared else 0.0,
        gateway_shared_ip_channel_fps=(
            {
                c.name: c.effective_drain_fps
                for c in shared.channels
                if c.effective_drain_fps is not None
            }
            if shared
            else {}
        ),
    )


def render_throughput(result: ThroughputResult) -> Table:
    table = Table(
        ["Quantity", "Rate (msg/s)", "Note"],
        title="Throughput vs. CAN line rate (8-byte payload, worst-case stuffing)",
    )
    table.add_row(["CAN line rate @ 500 kbit/s", f"{result.line_rate_500k_fps:,.0f}", "wire bound"])
    table.add_row(["CAN line rate @ 1 Mbit/s", f"{result.line_rate_1m_fps:,.0f}", "wire bound (HS-CAN max)"])
    table.add_row(["paper claim", f"{result.paper_claim_fps:,.0f}", ">8300 msg/s"])
    table.add_row(
        [
            "QMLP-coupled ECU (1/latency)",
            f"{result.ecu_inverse_latency_fps:,.0f}",
            "paper's convention (no stage overlap)",
        ]
    )
    table.add_row(
        [
            "QMLP-coupled ECU (sustained)",
            f"{result.ecu_throughput_fps:,.0f}",
            "II-gated; "
            + ("near line rate" if result.near_line_rate_1m else "below 1 Mbit/s line rate"),
        ]
    )
    table.add_row(["FPGA core alone", f"{result.hw_core_fps:,.0f}", "accelerator steady-state"])
    if result.gateway_channels:
        n = result.gateway_channels
        table.add_row(
            [
                f"{n}-channel gateway (per-channel IPs)",
                f"{result.gateway_per_ip_fps:,.0f}",
                "aggregate sustained, one IP per segment",
            ]
        )
        table.add_row(
            [
                f"{n}-channel gateway (shared IP)",
                f"{result.gateway_shared_ip_fps:,.0f}",
                f"round-robin arbitration, each channel 1/{n} of the slots",
            ]
        )
    return table
