"""Experiment E5 — throughput and the near-line-rate claim.

"our QMLP coupled ECU can process over 8300 messages per second at
highest payload capacity, achieving near-line-rate detection on
high-speed critical CAN networks."

Line rate is a property of the bus: at 1 Mbit/s (high-speed CAN
maximum), a worst-case-stuffed 8-byte frame occupies ~135 bit times, so
the wire can never deliver more than ~7400 frames/s.  The experiment
computes that bound exactly (via the frame codec) and measures the ECU
against it under *both* throughput conventions:

* **inverse latency** — the paper's derivation (1 / per-message
  latency), which assumes no overlap between pipeline stages;
* **sustained (II-gated)** — the steady-state rate of the pipelined
  receive path, bounded by its slowest stage (CPU software path, driver
  MMIO, or core initiation interval), the same definition
  ``SimReport.throughput_fps`` uses for the core alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.can.bus import BITRATE_HS_CAN, BITRATE_HS_CAN_MAX
from repro.can.frame import max_frame_bits
from repro.datasets.features import BitFeatureEncoder
from repro.experiments.context import ExperimentContext
from repro.soc.ecu import IDSEnabledECU
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = ["ThroughputResult", "run_throughput", "render_throughput"]


@dataclass
class ThroughputResult:
    """ECU processing rate vs. wire line rates."""

    ecu_throughput_fps: float  #: sustained, II-gated (the honest rate figure)
    ecu_inverse_latency_fps: float  #: 1/mean-latency (the paper's convention)
    hw_core_fps: float
    line_rate_500k_fps: float
    line_rate_1m_fps: float
    paper_claim_fps: float = 8300.0

    @property
    def near_line_rate_1m(self) -> bool:
        """Does the ECU keep up with a saturated 1 Mbit/s bus?"""
        return self.ecu_throughput_fps >= self.line_rate_1m_fps

    @property
    def meets_paper_claim(self) -> bool:
        return self.ecu_throughput_fps >= self.paper_claim_fps

    @property
    def inverse_latency_meets_paper_claim(self) -> bool:
        """The claim under the paper's own (inverse-latency) convention."""
        return self.ecu_inverse_latency_fps >= self.paper_claim_fps


def run_throughput(context: ExperimentContext, eval_frames: int = 4000) -> ThroughputResult:
    """Measure sustained ECU throughput and compute wire bounds."""
    ip = context.ip("dos")
    ecu = IDSEnabledECU(
        ip,
        BitFeatureEncoder(),
        name="throughput-ecu",
        seed=derive_seed(context.settings.seed, "throughput"),
    )
    report = ecu.process_capture(context.capture("dos").records[:eval_frames], with_metrics=False)
    bits_per_frame = max_frame_bits(dlc=8)  # highest payload capacity, worst-case stuffing
    return ThroughputResult(
        ecu_throughput_fps=report.throughput_fps,
        ecu_inverse_latency_fps=report.inverse_latency_fps,
        hw_core_fps=ip.throughput_fps,
        line_rate_500k_fps=BITRATE_HS_CAN / bits_per_frame,
        line_rate_1m_fps=BITRATE_HS_CAN_MAX / bits_per_frame,
    )


def render_throughput(result: ThroughputResult) -> Table:
    table = Table(
        ["Quantity", "Rate (msg/s)", "Note"],
        title="Throughput vs. CAN line rate (8-byte payload, worst-case stuffing)",
    )
    table.add_row(["CAN line rate @ 500 kbit/s", f"{result.line_rate_500k_fps:,.0f}", "wire bound"])
    table.add_row(["CAN line rate @ 1 Mbit/s", f"{result.line_rate_1m_fps:,.0f}", "wire bound (HS-CAN max)"])
    table.add_row(["paper claim", f"{result.paper_claim_fps:,.0f}", ">8300 msg/s"])
    table.add_row(
        [
            "QMLP-coupled ECU (1/latency)",
            f"{result.ecu_inverse_latency_fps:,.0f}",
            "paper's convention (no stage overlap)",
        ]
    )
    table.add_row(
        [
            "QMLP-coupled ECU (sustained)",
            f"{result.ecu_throughput_fps:,.0f}",
            "II-gated; "
            + ("near line rate" if result.near_line_rate_1m else "below 1 Mbit/s line rate"),
        ]
    )
    table.add_row(["FPGA core alone", f"{result.hw_core_fps:,.0f}", "accelerator steady-state"])
    return table
