"""Experiment E8 — the bit-width design-space exploration.

"Design space exploration is performed to arrive at the quantisation
level ... we observed that 4-bit uniform quantisation achieved best
performance in both DoS and Fuzzying attacks, and hence was chosen for
deployment."

The harness sweeps uniform bit widths, reports accuracy + hardware
cost per point and applies the paper's selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.bitwidth import BitwidthPoint, run_bitwidth_sweep, select_deployment_point
from repro.experiments.context import ExperimentContext
from repro.utils.tables import Table

__all__ = ["DSEResult", "run_dse", "render_dse"]


@dataclass
class DSEResult:
    """Sweep points plus the selected deployment configuration."""

    points: list[BitwidthPoint]
    selected: BitwidthPoint
    paper_selected_bits: int = 4

    @property
    def matches_paper(self) -> bool:
        return self.selected.bits == self.paper_selected_bits


def run_dse(
    context: ExperimentContext,
    bit_widths: tuple[int, ...] = (2, 3, 4, 6, 8),
) -> DSEResult:
    """Run the sweep with the context's budget settings."""
    points = run_bitwidth_sweep(
        bit_widths=bit_widths,
        duration=context.settings.duration,
        epochs=context.settings.epochs,
        seed=context.settings.seed,
        target_fps=context.settings.target_fps,
    )
    return DSEResult(points=points, selected=select_deployment_point(points))


def render_dse(result: DSEResult) -> Table:
    table = Table(
        ["Bits (W/A)", "DoS F1", "Fuzzy F1", "Mean F1", "LUT", "DSP", "Max util", "Chosen"],
        title=(
            "Bit-width DSE: accuracy vs. hardware cost "
            f"(selected: {result.selected.bits}-bit; paper selected 4-bit)"
        ),
    )
    for point in result.points:
        table.add_row(
            [
                f"W{point.bits}A{point.bits}",
                f"{point.metrics['dos']['f1']:.2f}",
                f"{point.metrics['fuzzy']['f1']:.2f}",
                f"{point.mean_f1:.2f}",
                f"{point.resources.lut:,.0f}",
                f"{point.resources.dsp:.0f}",
                f"{point.max_utilization_pct:.2f}%",
                "<==" if point.bits == result.selected.bits else "",
            ]
        )
    return table
