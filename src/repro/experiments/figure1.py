"""Experiment E3 — Fig. 1: IDS-enabled ECUs on a vehicle network.

The paper's Fig. 1 shows a CAN network (powertrain/body/telematics
nodes on high/low-speed segments) where several ECUs carry the
FPGA-integrated IDS and scan all bus traffic.  This harness reproduces
the *system behaviour* that figure depicts: a multi-node bus simulation
with a malicious node, monitored by IDS-ECUs running the deployed DoS
and Fuzzy detectors, reporting what they saw and how quickly attacks
were flagged after each burst began.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.features import BitFeatureEncoder
from repro.experiments.context import ExperimentContext
from repro.soc.ecu import IDSEnabledECU
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = ["Figure1Result", "run_figure1", "render_figure1"]


@dataclass
class Figure1Result:
    """What each monitoring IDS-ECU observed on the shared bus."""

    attack: str
    num_frames: int
    num_attack_frames: int
    detections: int
    detection_delays_ms: list[float] = field(default_factory=list)  # per burst
    metrics: dict[str, float] = field(default_factory=dict)
    mean_latency_ms: float = 0.0

    @property
    def mean_detection_delay_ms(self) -> float:
        return float(np.mean(self.detection_delays_ms)) if self.detection_delays_ms else float("nan")


def _burst_detection_delays(
    timestamps: np.ndarray,
    predictions: np.ndarray,
    windows: list[tuple[float, float]],
    per_message_latency_s: float,
) -> list[float]:
    """Delay from each attack-burst start to its first raised alert."""
    delays = []
    for start, end in windows:
        in_window = (timestamps >= start) & (timestamps <= end)
        alert_times = timestamps[in_window & (predictions == 1)]
        if alert_times.size:
            delays.append(1e3 * (float(alert_times.min()) - start + per_message_latency_s))
    return delays


def run_figure1(context: ExperimentContext, eval_frames: int | None = None) -> dict[str, Figure1Result]:
    """Run both IDS-ECUs over their attack scenarios on the shared bus."""
    results: dict[str, Figure1Result] = {}
    for attack in ("dos", "fuzzy"):
        capture = context.capture(attack)
        window = capture[:eval_frames] if eval_frames else capture.capture
        ecu = IDSEnabledECU(
            context.ip(attack),
            BitFeatureEncoder(),
            name=f"{attack}-ids-ecu",
            seed=derive_seed(context.settings.seed, f"fig1-{attack}"),
        )
        report = ecu.process_capture(window)
        delays = _burst_detection_delays(
            window.timestamps, report.predictions, capture.attack_windows, report.mean_latency_s
        )
        results[attack] = Figure1Result(
            attack=attack,
            num_frames=len(window),
            num_attack_frames=int(window.labels.sum()),
            detections=len(report.alerts),
            detection_delays_ms=delays,
            metrics=report.metrics or {},
            mean_latency_ms=1e3 * report.mean_latency_s,
        )
    return results


def render_figure1(results: dict[str, Figure1Result]) -> Table:
    """Summary table of the network-level demonstration."""
    table = Table(
        ["IDS-ECU", "Frames seen", "Attack frames", "Alerts", "F1", "First-alert delay"],
        title="Fig. 1 system demo: IDS-ECUs scanning all messages on the CAN bus",
    )
    for attack, result in results.items():
        table.add_row(
            [
                f"{attack}-ids-ecu",
                result.num_frames,
                result.num_attack_frames,
                result.detections,
                f"{result.metrics.get('f1', float('nan')):.2f}",
                f"{result.mean_detection_delay_ms:.2f} ms",
            ]
        )
    return table
