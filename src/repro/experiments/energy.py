"""Experiment E6 — power and energy per inference.

Reproduces the paper's measurement procedure: sample the board rails
(PMBus model) while the ECU processes traffic, multiply mean power by
per-message latency for energy per inference, and compare against the
paper's GPU reference (9.12 J for the 8-bit QMLP on an A6000).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.features import BitFeatureEncoder
from repro.experiments.context import ExperimentContext
from repro.soc.ecu import IDSEnabledECU
from repro.soc.platforms import A6000, ZYNQ_ULTRASCALE
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = ["EnergyResult", "run_energy", "render_energy"]


@dataclass
class EnergyResult:
    """Measured operating point vs. paper and GPU reference."""

    mean_power_w: float
    energy_per_inference_mj: float
    gpu_energy_j: float
    paper_power_w: float = 2.09
    paper_energy_mj: float = 0.25
    paper_gpu_energy_j: float = 9.12

    @property
    def gpu_ratio(self) -> float:
        """How many orders of magnitude the GPU costs more."""
        return self.gpu_energy_j / (self.energy_per_inference_mj * 1e-3)


def run_energy(context: ExperimentContext, eval_frames: int = 4000) -> EnergyResult:
    """Measure power/energy of the deployed DoS detector."""
    ecu = IDSEnabledECU(
        context.ip("dos"),
        BitFeatureEncoder(),
        name="energy-ecu",
        seed=derive_seed(context.settings.seed, "energy"),
    )
    report = ecu.process_capture(context.capture("dos")[:eval_frames], with_metrics=False)
    return EnergyResult(
        mean_power_w=report.mean_power_w,
        energy_per_inference_mj=1e3 * report.energy_per_inference_j,
        gpu_energy_j=A6000.energy_per_inference(),
    )


def render_energy(result: EnergyResult) -> Table:
    table = Table(
        ["Quantity", "Paper", "Measured (ours)"],
        title="Inference power & energy (PMBus measurement during ECU operation)",
    )
    table.add_row(
        ["board power", f"{result.paper_power_w:g} W", f"{result.mean_power_w:.2f} W"]
    )
    table.add_row(
        [
            "energy / inference",
            f"{result.paper_energy_mj:g} mJ",
            f"{result.energy_per_inference_mj:.3f} mJ",
        ]
    )
    table.add_row(
        [
            f"8-bit QMLP on {A6000.name}",
            f"{result.paper_gpu_energy_j:g} J",
            f"{result.gpu_energy_j:.2f} J",
        ]
    )
    table.add_row(
        ["GPU / FPGA energy ratio", "~3.6e4", f"{result.gpu_ratio:,.0f}x"]
    )
    table.add_row(
        ["platform idle power", "-", f"{ZYNQ_ULTRASCALE.idle_power_w:g} W"]
    )
    return table
