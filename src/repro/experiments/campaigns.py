"""Experiment E11 — the attack-campaign scenario sweep.

The paper evaluates on the four canned Car-Hacking attack classes; the
campaign framework (:mod:`repro.can.campaign`) turns the simulator into
a scenario *generator*.  This harness drives every registered scenario
through the multi-channel gateway twice — once with a detector IP per
channel, once with all channels time-multiplexing a single shared IP
behind a round-robin arbiter — and tabulates, per scenario and
deployment:

* traffic volume and RX-FIFO drop rate (does the deployment keep up?),
* how many attack phases raised at least one true alert, and the worst
  (slowest) per-phase detection latency,
* per-frame detection quality (F1 over serviced frames) and p99
  end-to-end latency including queueing.

The detector deployed on every channel is the paper's DoS QMLP, so the
table doubles as an honest *coverage map*: scenarios built from
mechanics the detector never trained on (fuzzy, spoofing, masquerade,
suspension) show exactly what a single-attack detector misses — the
motivation for the multi-model deployment of E10.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.can.campaign import SCENARIOS, Campaign, ScenarioRegistry, compile_campaign
from repro.errors import ConfigError
from repro.experiments.context import ExperimentContext
from repro.finn.compiled import engine_for
from repro.soc.arbiter import SharedAcceleratorArbiter
from repro.soc.gateway import GatewayReport, gateway_from_buses
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = [
    "ScenarioRun",
    "CampaignSweepResult",
    "default_sweep_workers",
    "run_campaign_sweep",
    "render_campaign_sweep",
]

#: Gateway deployments each scenario is swept through.
SWEEP_MODES = ("per-ip", "shared-ip")


@dataclass(frozen=True)
class ScenarioRun:
    """One scenario through one gateway deployment."""

    scenario: str
    description: str
    mode: str  #: "per-ip" (one accelerator per channel) or "shared-ip"
    campaign: Campaign
    report: GatewayReport

    @property
    def phases_total(self) -> int:
        return len(self.report.phase_outcomes)

    @property
    def phases_injecting(self) -> int:
        """Phases that put labelled frames on the wire (detectable ones)."""
        return sum(1 for phase in self.campaign.phases if phase.injects)

    @property
    def phases_detected(self) -> int:
        return self.report.phases_detected

    @property
    def worst_detection_latency_s(self) -> float | None:
        """Slowest first-alert latency across detected phases (None: none)."""
        latencies = [
            outcome.detection_latency_s
            for outcome in self.report.phase_outcomes
            if outcome.detection_latency_s is not None
        ]
        return max(latencies) if latencies else None

    @property
    def attack_frames(self) -> int:
        """Ground-truth attack frames observed across all channels."""
        return sum(
            int(c.capture.labels.sum())
            for c in self.report.channels
            if c.capture is not None
        )

    @property
    def f1(self) -> float:
        """Frame-weighted mean F1 (percent) over non-idle channels."""
        scored = [
            (c.report.metrics["f1"], c.num_processed)
            for c in self.report.channels
            if c.report is not None and c.report.metrics is not None
        ]
        total = sum(weight for _, weight in scored)
        if not total:
            return 0.0
        return sum(value * weight for value, weight in scored) / total

    @property
    def p99_latency_s(self) -> float:
        """Worst per-channel p99 end-to-end latency (queueing included)."""
        values = [
            c.report.p99_latency_s for c in self.report.channels if c.report is not None
        ]
        return max(values) if values else float("nan")


@dataclass
class CampaignSweepResult:
    """Every registered scenario through every gateway deployment."""

    runs: list[ScenarioRun]
    duration: float
    detector: str  #: attack type the deployed detector was trained for

    def scenario_names(self) -> list[str]:
        names: list[str] = []
        for run in self.runs:
            if run.scenario not in names:
                names.append(run.scenario)
        return names

    def run(self, scenario: str, mode: str) -> ScenarioRun:
        for candidate in self.runs:
            if candidate.scenario == scenario and candidate.mode == mode:
                return candidate
        raise ConfigError(f"no sweep run for scenario {scenario!r} in mode {mode!r}")


class _CachedBus:
    """Replay one simulated traffic window to several gateway runs.

    Both sweep deployments (per-IP and shared-IP) see byte-identical
    traffic by construction — only the drain rates differ — so the
    expensive arbitration-accurate simulation runs once per scenario
    and this wrapper hands the recorded window to each monitor call.
    """

    def __init__(self, bus):
        self._bus = bus
        self.bitrate = bus.bitrate
        self._runs: dict[float, list] = {}

    def run(self, duration: float) -> list:
        if duration not in self._runs:
            self._runs[duration] = self._bus.run(duration)
        return self._runs[duration]


def default_sweep_workers(num_scenarios: int) -> int:
    """The default worker count for :func:`run_campaign_sweep`."""
    return max(1, min(8, os.cpu_count() or 1, num_scenarios))


def run_campaign_sweep(
    context: ExperimentContext,
    scenarios: Sequence[str] | None = None,
    registry: ScenarioRegistry = SCENARIOS,
    duration: float | None = None,
    detector: str = "dos",
    fifo_capacity: int = 64,
    chunk_size: int = 4096,
    max_workers: int | None = None,
) -> CampaignSweepResult:
    """Drive every registered scenario through both gateway deployments.

    ``scenarios`` restricts the sweep (default: the full registry);
    ``duration`` rescales every campaign (default: each scenario's own).
    Every channel of every gateway carries the ``detector`` QMLP from
    the shared experiment context behind the deployed bit encoding.

    Scenarios are independent — each builds its own buses, gateways and
    ECUs from scenario-indexed seeds — so the sweep fans them out over
    a thread pool (``max_workers``; default
    :func:`default_sweep_workers`, 1 forces the serial loop).  The
    heavy kernels (bus simulation arrays, batch encoding, the compiled
    inference engine) release the GIL in numpy, every worker shares the
    one engine compiled for ``ip`` (thread-local scratch), and seeds
    are derived from the scenario index, not the execution order — so
    results are deterministic and identical to the serial sweep, in
    registry order.
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
    ip = context.ip(detector)
    engine_for(ip)  # compile the shared engine once, before the fleet forks
    seed = derive_seed(context.settings.seed, "campaign-sweep")
    names = list(scenarios) if scenarios is not None else registry.names()
    descriptions = registry.describe()

    def sweep_scenario(indexed: tuple[int, str]) -> tuple[float, list[ScenarioRun]]:
        index, name = indexed
        campaign = registry.build(name, duration=duration)
        truth = campaign.truth_windows()
        buses = {
            channel: _CachedBus(bus)
            for channel, bus in compile_campaign(
                campaign, vehicle_seed=seed + index
            ).items()
        }
        scenario_runs: list[ScenarioRun] = []
        for mode in SWEEP_MODES:
            gateway = gateway_from_buses(
                ip,
                buses,
                ecu_seed=seed + index,
                fifo_capacity=fifo_capacity,
                name=f"sweep-{name}-{mode}",
            )
            report = gateway.monitor(
                duration=campaign.duration,
                chunk_size=chunk_size,
                truth=truth,
                arbiter=SharedAcceleratorArbiter() if mode == "shared-ip" else None,
            )
            scenario_runs.append(
                ScenarioRun(
                    scenario=name,
                    description=descriptions.get(name, ""),
                    mode=mode,
                    campaign=campaign,
                    report=report,
                )
            )
        return campaign.duration, scenario_runs

    workers = max_workers if max_workers is not None else default_sweep_workers(len(names))
    if workers > 1 and len(names) > 1:
        with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="campaign-sweep") as pool:
            outcomes = list(pool.map(sweep_scenario, enumerate(names)))
    else:
        outcomes = [sweep_scenario(indexed) for indexed in enumerate(names)]

    runs = [run for _, scenario_runs in outcomes for run in scenario_runs]
    total_duration = sum(scenario_duration for scenario_duration, _ in outcomes)
    return CampaignSweepResult(runs=runs, duration=total_duration, detector=detector)


def render_campaign_sweep(result: CampaignSweepResult) -> Table:
    """The detection/latency/drop table over every scenario and mode."""
    table = Table(
        [
            "Scenario",
            "Mode",
            "Ch",
            "Frames",
            "Drop %",
            "Phases hit",
            "Det. latency",
            "F1",
            "p99 lat.",
        ],
        title=(
            f"E11 — attack-campaign sweep ({result.detector}-trained detector on "
            f"every channel; per-channel IPs vs one shared IP)"
        ),
    )
    for scenario in result.scenario_names():
        for mode in SWEEP_MODES:
            run = result.run(scenario, mode)
            report = run.report
            worst = run.worst_detection_latency_s
            detectable = run.phases_injecting
            table.add_row(
                [
                    scenario if mode == SWEEP_MODES[0] else "",
                    mode,
                    len(report.channels),
                    report.total_frames,
                    f"{100.0 * report.drop_rate:.2f}",
                    f"{run.phases_detected}/{detectable}",
                    f"{1e3 * worst:.1f} ms" if worst is not None else "-",
                    f"{run.f1:.1f}" if run.attack_frames else "-",
                    f"{1e3 * run.p99_latency_s:.2f} ms"
                    if np.isfinite(run.p99_latency_s)
                    else "-",
                ]
            )
    return table
