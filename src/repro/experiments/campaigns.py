"""Experiment E11 — the attack-campaign scenario sweep.

The paper evaluates on the four canned Car-Hacking attack classes; the
campaign framework (:mod:`repro.can.campaign`) turns the simulator into
a scenario *generator*.  This harness drives every registered scenario
through the multi-channel gateway twice — once with a detector IP per
channel, once with all channels time-multiplexing a single shared IP
behind a round-robin arbiter — and tabulates, per scenario and
deployment:

* traffic volume and RX-FIFO drop rate (does the deployment keep up?),
* how many attack phases raised at least one true alert, and the worst
  (slowest) per-phase detection latency,
* per-frame detection quality (F1 over serviced frames) and p99
  end-to-end latency including queueing.

**Detector choice.**  By default (``detector="auto"``) every channel of
a scenario's gateway carries the trained QMLP matching the scenario's
attack mechanics (:func:`~repro.can.campaign.scenario_detector`): DoS-
family floods get the DoS detector, fuzzing gets the Fuzzy detector,
RPM/gear spoofing and masquerade get the corresponding spoofing
detector.  Mechanics without a trained counterpart (replay, suspension
— their evidence is staleness or absence, not per-frame signatures)
fall back to the DoS detector, so their rows read as the honest
coverage gap they are.  Pass a concrete ``detector`` name to reproduce
the old single-detector coverage map.

**Execution.**  Scenarios are independent, so the sweep fans them out
over the shared shard machinery (:mod:`repro.fleet.pool`) configured by
an :class:`~repro.fleet.spec.ExecOptions` — the same run-spec the fleet
runner takes.  ``backend="auto"`` (default) picks process fan-out on
multi-core hosts (picklable IPs shipped once via the pool initializer)
and threads elsewhere; every seed derives from the scenario's registry
index, so results are order-stable and identical to the serial loop.
The resolved backend and engine are recorded on the result.  The old
loose keyword arguments (``fifo_capacity=``, ``backend=``, ...) still
work through a deprecation shim that forwards them into an
:class:`~repro.fleet.spec.ExecOptions` and warns once.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.can.campaign import (
    SCENARIOS,
    Campaign,
    ScenarioRegistry,
    compile_campaign,
    scenario_detector,
)
from repro.errors import ConfigError
from repro.experiments.context import ExperimentContext
from repro.finn.compiled import engine_for
from repro.fleet.health import RunHealth
from repro.fleet.pool import run_sharded, warm_engines, worker_state
from repro.fleet.spec import ExecOptions
from repro.soc.arbiter import SharedAcceleratorArbiter
from repro.soc.gateway import GatewayReport, gateway_from_buses
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = [
    "ScenarioRun",
    "CampaignSweepResult",
    "default_sweep_workers",
    "run_campaign_sweep",
    "render_campaign_sweep",
    "scenario_detector",
]

#: Gateway deployments each scenario is swept through.
SWEEP_MODES = ("per-ip", "shared-ip")

#: Concrete scenario fan-out backends (kept for compatibility; the
#: canonical list, including ``"auto"``, is
#: :data:`repro.fleet.spec.EXEC_BACKENDS`).
SWEEP_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class ScenarioRun:
    """One scenario through one gateway deployment."""

    scenario: str
    description: str
    mode: str  #: "per-ip" (one accelerator per channel) or "shared-ip"
    campaign: Campaign
    report: GatewayReport
    detector: str = "dos"  #: attack type the deployed detector was trained for

    @property
    def phases_total(self) -> int:
        return len(self.report.phase_outcomes)

    @property
    def phases_injecting(self) -> int:
        """Phases that put labelled frames on the wire (detectable ones)."""
        return sum(1 for phase in self.campaign.phases if phase.injects)

    @property
    def phases_detected(self) -> int:
        return self.report.phases_detected

    @property
    def worst_detection_latency_s(self) -> float | None:
        """Slowest first-alert latency across detected phases (None: none)."""
        latencies = [
            outcome.detection_latency_s
            for outcome in self.report.phase_outcomes
            if outcome.detection_latency_s is not None
        ]
        return max(latencies) if latencies else None

    @property
    def attack_frames(self) -> int:
        """Ground-truth attack frames observed across all channels."""
        return sum(
            int(c.capture.labels.sum())
            for c in self.report.channels
            if c.capture is not None
        )

    @property
    def f1(self) -> float:
        """Frame-weighted mean F1 (percent) over non-idle channels."""
        scored = [
            (c.report.metrics["f1"], c.num_processed)
            for c in self.report.channels
            if c.report is not None and c.report.metrics is not None
        ]
        total = sum(weight for _, weight in scored)
        if not total:
            return 0.0
        return sum(value * weight for value, weight in scored) / total

    @property
    def p99_latency_s(self) -> float:
        """Worst per-channel p99 end-to-end latency (queueing included)."""
        values = [
            c.report.p99_latency_s for c in self.report.channels if c.report is not None
        ]
        return max(values) if values else float("nan")


@dataclass
class CampaignSweepResult:
    """Every registered scenario through every gateway deployment.

    ``backend`` and ``engine`` record what the sweep actually ran with
    (the backend is the resolved one — never ``"auto"``), so serialised
    artifacts say how they were produced.
    """

    runs: list[ScenarioRun]
    duration: float
    detector: str  #: detector policy ("auto" = matched per scenario)
    backend: str = "thread"  #: resolved pool backend the sweep ran on
    engine: str = "columnar"  #: bus-simulation engine the sweep used
    options: ExecOptions | None = None  #: resolved run-spec (resilience knobs included)
    health: RunHealth = field(default_factory=RunHealth)
    _index: dict[tuple[str, str], ScenarioRun] = field(
        default_factory=dict, repr=False, compare=False
    )

    def scenario_names(self) -> list[str]:
        names: list[str] = []
        for run in self.runs:
            if run.scenario not in names:
                names.append(run.scenario)
        return names

    def run(self, scenario: str, mode: str) -> ScenarioRun:
        """Look one run up by ``(scenario, mode)`` — indexed, not scanned."""
        if len(self._index) != len(self.runs):
            self._index.clear()
            self._index.update({(r.scenario, r.mode): r for r in self.runs})
        try:
            return self._index[(scenario, mode)]
        except KeyError:
            raise ConfigError(
                f"no sweep run for scenario {scenario!r} in mode {mode!r}"
            ) from None

    def detectors(self) -> dict[str, str]:
        """``{scenario: detector}`` actually deployed per scenario."""
        return {run.scenario: run.detector for run in self.runs}


class _CachedBus:
    """Replay one simulated traffic window to several gateway runs.

    Both sweep deployments (per-IP and shared-IP) see byte-identical
    traffic by construction — only the drain rates differ — so the
    expensive arbitration-accurate simulation runs once per scenario
    and this wrapper hands the recorded window to each monitor call.
    Both engines are cached: ``capture`` (columnar) and ``run``
    (event-driven reference).
    """

    def __init__(self, bus):
        self._bus = bus
        self.bitrate = bus.bitrate
        self._runs: dict[tuple, list] = {}
        self._captures: dict[tuple, object] = {}

    def run(self, duration: float, faults=None) -> list:
        # WireFaultModel is frozen/hashable, so (duration, faults) keys
        # one simulated window per fault configuration.
        key = (duration, faults)
        if key not in self._runs:
            self._runs[key] = self._bus.run(duration, faults=faults)
        return self._runs[key]

    def capture(self, duration: float, faults=None):
        key = (duration, faults)
        if key not in self._captures:
            self._captures[key] = self._bus.capture(duration, faults=faults)
        return self._captures[key]


@dataclass(frozen=True)
class _SweepConfig:
    """Scenario-independent sweep parameters (picklable, sent once)."""

    seed: int
    fifo_capacity: int
    chunk_size: int
    engine: str


@dataclass(frozen=True)
class _SweepTask:
    """One scenario's work order (picklable)."""

    index: int  #: position in the requested scenario list (seeds derive from it)
    name: str
    description: str
    campaign: Campaign
    detector: str


def _sweep_one_scenario(ip, task: _SweepTask, config: _SweepConfig) -> list[ScenarioRun]:
    """Run one scenario through both gateway deployments.

    Shared by the serial loop and both pool backends, so every backend
    produces identical, order-stable results: seeds derive from the
    scenario's index, never from execution order.
    """
    campaign = task.campaign
    truth = campaign.truth_windows()
    buses = {
        channel: _CachedBus(bus)
        for channel, bus in compile_campaign(
            campaign, vehicle_seed=config.seed + task.index
        ).items()
    }
    scenario_runs: list[ScenarioRun] = []
    for mode in SWEEP_MODES:
        gateway = gateway_from_buses(
            ip,
            buses,
            ecu_seed=config.seed + task.index,
            fifo_capacity=config.fifo_capacity,
            name=f"sweep-{task.name}-{mode}",
        )
        report = gateway.monitor(
            duration=campaign.duration,
            chunk_size=config.chunk_size,
            truth=truth,
            arbiter=SharedAcceleratorArbiter() if mode == "shared-ip" else None,
            engine=config.engine,
        )
        scenario_runs.append(
            ScenarioRun(
                scenario=task.name,
                description=task.description,
                mode=mode,
                campaign=campaign,
                report=report,
                detector=task.detector,
            )
        )
    return scenario_runs


def _sweep_worker(task: _SweepTask) -> list[ScenarioRun]:
    """Pool entry point: pulls the shipped IPs/config from worker state."""
    state = worker_state()
    return _sweep_one_scenario(state["ips"][task.detector], task, state["config"])


def default_sweep_workers(num_scenarios: int) -> int:
    """The default worker count for :func:`run_campaign_sweep`."""
    return max(1, min(8, os.cpu_count() or 1, num_scenarios))


#: One-shot flag for the loose-kwargs deprecation warning.
_LOOSE_KWARGS_WARNED = False


def _coerce_options(
    options: ExecOptions | None,
    loose: dict[str, Any],
) -> ExecOptions:
    """Fold the pre-:class:`ExecOptions` keyword arguments into one.

    The old signature's knobs keep working — they forward into an
    :class:`ExecOptions` and warn once per process — but mixing them
    with an explicit ``options`` is ambiguous and rejected.
    """
    global _LOOSE_KWARGS_WARNED
    supplied = {key: value for key, value in loose.items() if value is not None}
    if not supplied:
        return options if options is not None else ExecOptions()
    if options is not None:
        raise ConfigError(
            f"pass execution knobs via options=ExecOptions(...) or the legacy "
            f"keywords, not both (got options and {sorted(supplied)})"
        )
    if not _LOOSE_KWARGS_WARNED:
        warnings.warn(
            "run_campaign_sweep's loose execution keywords "
            "(fifo_capacity/chunk_size/max_workers/backend/engine) are "
            "deprecated; pass options=ExecOptions(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        _LOOSE_KWARGS_WARNED = True
    return ExecOptions(**supplied)


def run_campaign_sweep(
    context: ExperimentContext,
    scenarios: Sequence[str] | None = None,
    registry: ScenarioRegistry = SCENARIOS,
    duration: float | None = None,
    detector: str = "auto",
    options: ExecOptions | None = None,
    *,
    fifo_capacity: int | None = None,
    chunk_size: int | None = None,
    max_workers: int | None = None,
    backend: str | None = None,
    engine: str | None = None,
) -> CampaignSweepResult:
    """Drive every registered scenario through both gateway deployments.

    ``scenarios`` restricts the sweep (default: the full registry; an
    empty list returns a well-formed empty result without training
    detectors or spinning up a pool); ``duration`` rescales every
    campaign (default: each scenario's own).  ``detector`` is ``"auto"``
    (each scenario gets its matching trained QMLP — see
    :func:`~repro.can.campaign.scenario_detector`) or a concrete attack
    name deployed on every channel of every scenario.

    Execution is configured by ``options``
    (:class:`~repro.fleet.spec.ExecOptions` — the same run-spec
    :func:`repro.fleet.runner.run_fleet` takes): scenarios are
    independent, each builds its own buses, gateways and ECUs from
    scenario-indexed seeds, so the sweep fans them out over the resolved
    backend and stays deterministic — identical across backends and
    worker counts, ordered by the requested scenario list.  The trailing
    keyword arguments are the deprecated loose form of the same knobs;
    they forward into an ``ExecOptions`` and warn once.
    """
    exec_options = _coerce_options(
        options,
        {
            "fifo_capacity": fifo_capacity,
            "chunk_size": chunk_size,
            "max_workers": max_workers,
            "backend": backend,
            "engine": engine,
        },
    )
    resolved = exec_options.resolved()
    names = list(scenarios) if scenarios is not None else registry.names()
    if not names:
        return CampaignSweepResult(
            runs=[],
            duration=0.0,
            detector=detector,
            backend=resolved.backend,
            engine=resolved.engine,
            options=resolved,
            health=RunHealth.clean(0),
        )
    descriptions = registry.describe()
    config = _SweepConfig(
        seed=derive_seed(context.settings.seed, "campaign-sweep"),
        fifo_capacity=resolved.fifo_capacity,
        chunk_size=resolved.chunk_size,
        engine=resolved.engine,
    )

    tasks: list[_SweepTask] = []
    for index, name in enumerate(names):
        campaign = registry.build(name, duration=duration)
        tasks.append(
            _SweepTask(
                index=index,
                name=name,
                description=descriptions.get(name, ""),
                campaign=campaign,
                detector=scenario_detector(campaign) if detector == "auto" else detector,
            )
        )
    # Train/compile each needed detector once, before the fleet forks.
    ips = {needed: context.ip(needed) for needed in sorted({t.detector for t in tasks})}
    for ip in ips.values():
        engine_for(ip)

    workers = resolved.workers_for(len(tasks))
    outcome = run_sharded(
        tasks,
        _sweep_worker,
        {"ips": ips, "config": config, "warmup": warm_engines},
        resolved.backend,
        workers,
        timeout_s=resolved.timeout_s,
        max_retries=resolved.max_retries,
        strict=resolved.strict,
        retry_seed=derive_seed(config.seed, "sweep-retry"),
    )

    runs = [
        run
        for scenario_runs in outcome.results
        if scenario_runs is not None
        for run in scenario_runs
    ]
    total_duration = sum(task.campaign.duration for task in tasks)
    return CampaignSweepResult(
        runs=runs,
        duration=total_duration,
        detector=detector,
        backend=resolved.backend,
        engine=resolved.engine,
        options=resolved,
        health=outcome.health,
    )


def render_campaign_sweep(result: CampaignSweepResult) -> Table:
    """The detection/latency/drop table over every scenario and mode."""
    policy = (
        "scenario-matched detectors"
        if result.detector == "auto"
        else f"{result.detector}-trained detector on every channel"
    )
    table = Table(
        [
            "Scenario",
            "Mode",
            "Det.",
            "Ch",
            "Frames",
            "Drop %",
            "Phases hit",
            "Det. latency",
            "F1",
            "p99 lat.",
        ],
        title=(
            f"E11 — attack-campaign sweep ({policy}; "
            f"per-channel IPs vs one shared IP)"
        ),
    )
    for scenario in result.scenario_names():
        for mode in SWEEP_MODES:
            run = result.run(scenario, mode)
            report = run.report
            worst = run.worst_detection_latency_s
            detectable = run.phases_injecting
            table.add_row(
                [
                    scenario if mode == SWEEP_MODES[0] else "",
                    mode,
                    run.detector if mode == SWEEP_MODES[0] else "",
                    len(report.channels),
                    report.total_frames,
                    f"{100.0 * report.drop_rate:.2f}",
                    f"{run.phases_detected}/{detectable}",
                    f"{1e3 * worst:.1f} ms" if worst is not None else "-",
                    f"{run.f1:.1f}" if run.attack_frames else "-",
                    f"{1e3 * run.p99_latency_s:.2f} ms"
                    if np.isfinite(run.p99_latency_s)
                    else "-",
                ]
            )
    return table
