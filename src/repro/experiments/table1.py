"""Experiment E1 — Table I: accuracy metric comparison.

Renders the paper's Table I: published IDS rows (quoted numbers) plus
our measured 4-bit QMLP rows for DoS and Fuzzy, with the paper's own
QMLP numbers alongside as the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.published import PAPER_QMLP_ACCURACY, PUBLISHED_ACCURACY
from repro.experiments.context import ExperimentContext
from repro.utils.tables import Table

__all__ = ["Table1Result", "run_table1", "render_table1"]


@dataclass
class Table1Result:
    """Measured + quoted rows of Table I."""

    measured: dict[str, dict[str, float]]  # attack -> metric set (percent)
    paper: dict[str, dict[str, float]]  # the paper's QMLP numbers

    def f1_gap(self, attack: str) -> float:
        """Measured-minus-paper F1 difference (reproduction fidelity)."""
        return self.measured[attack]["f1"] - self.paper[attack]["f1"]


def run_table1(context: ExperimentContext) -> Table1Result:
    """Train (cached) both 4-bit detectors and collect test metrics."""
    measured = {attack: context.trained(attack).metrics for attack in ("dos", "fuzzy")}
    paper = {
        attack: {
            "precision": row.precision,
            "recall": row.recall,
            "f1": row.f1,
            "fnr": row.fnr if row.fnr is not None else float("nan"),
        }
        for attack, row in PAPER_QMLP_ACCURACY.items()
    }
    return Table1Result(measured=measured, paper=paper)


def render_table1(result: Table1Result) -> Table:
    """Render the full comparison in the paper's layout."""
    table = Table(
        ["Attack", "Model", "Precision", "Recall", "F1", "FNR"],
        title="Table I: accuracy metric comparison (%) against reported literature",
    )
    for attack in ("dos", "fuzzy"):
        for row in (r for r in PUBLISHED_ACCURACY if r.attack == attack):
            table.add_row(
                [
                    attack.upper() if attack == "dos" else attack.capitalize(),
                    row.model,
                    f"{row.precision:.2f}",
                    f"{row.recall:.2f}",
                    f"{row.f1:.2f}",
                    f"{row.fnr:.2f}" if row.fnr is not None else "-",
                ]
            )
        paper_row = result.paper[attack]
        table.add_row(
            [
                attack.upper() if attack == "dos" else attack.capitalize(),
                "4-bit-QMLP (paper)",
                f"{paper_row['precision']:.2f}",
                f"{paper_row['recall']:.2f}",
                f"{paper_row['f1']:.2f}",
                f"{paper_row['fnr']:.2f}",
            ]
        )
        measured = result.measured[attack]
        table.add_row(
            [
                attack.upper() if attack == "dos" else attack.capitalize(),
                "4-bit-QMLP (ours, measured)",
                f"{measured['precision']:.2f}",
                f"{measured['recall']:.2f}",
                f"{measured['f1']:.2f}",
                f"{measured['fnr']:.2f}",
            ]
        )
    return table
