"""Run every experiment and render a consolidated report.

``run_all`` executes E1-E12 with a shared context and returns rendered
tables keyed by experiment id; ``report_markdown`` assembles them into
the document recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.baseline_table import render_baseline_table, run_baseline_table
from repro.experiments.campaigns import render_campaign_sweep, run_campaign_sweep
from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.dse_report import render_dse, run_dse
from repro.experiments.energy import render_energy, run_energy
from repro.experiments.figure1 import render_figure1, run_figure1
from repro.experiments.foldings import render_foldings, run_foldings
from repro.experiments.latency_report import render_latency_report, run_latency_report
from repro.experiments.multimodel import render_multimodel, run_multimodel
from repro.experiments.noise import render_noise_sweep, run_noise_sweep
from repro.experiments.resources_report import render_resources, run_resources
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.throughput import render_throughput, run_throughput
from repro.utils.logutil import get_logger

__all__ = ["run_all", "report_markdown"]

_LOG = get_logger("experiments.runner")


def run_all(
    settings: ExperimentSettings | None = None,
    include_dse: bool = True,
    include_baselines: bool = True,
    include_campaigns: bool = True,
) -> dict[str, str]:
    """Execute every experiment; returns {experiment id: rendered table}.

    The DSE (E8), trained-baseline and campaign sweeps dominate
    runtime; switch them off for a quick pass.
    """
    context = ExperimentContext(settings or ExperimentSettings())
    report: dict[str, str] = {}

    _LOG.info("E1: Table I accuracy comparison")
    report["E1-table1"] = render_table1(run_table1(context)).render()
    _LOG.info("E2: Table II latency comparison")
    report["E2-table2"] = render_table2(run_table2(context)).render()
    _LOG.info("E3: Figure 1 network demo")
    report["E3-figure1"] = render_figure1(run_figure1(context)).render()
    _LOG.info("E4: latency breakdown")
    report["E4-latency"] = render_latency_report(run_latency_report(context)).render()
    _LOG.info("E5: throughput / line rate")
    report["E5-throughput"] = render_throughput(run_throughput(context)).render()
    _LOG.info("E6: power & energy")
    report["E6-energy"] = render_energy(run_energy(context)).render()
    _LOG.info("E7: resource utilisation")
    report["E7-resources"] = render_resources(run_resources(context)).render()
    if include_dse:
        _LOG.info("E8: bit-width DSE")
        report["E8-dse"] = render_dse(run_dse(context)).render()
    _LOG.info("E9: folding sweep")
    report["E9-folding"] = render_foldings(run_foldings(context)).render()
    _LOG.info("E10: multi-model deployment")
    report["E10-multimodel"] = render_multimodel(run_multimodel(context)).render()
    if include_campaigns:
        _LOG.info("E11: attack-campaign scenario sweep")
        report["E11-campaigns"] = render_campaign_sweep(run_campaign_sweep(context)).render()
        _LOG.info("E12: noise robustness vs wire bit-error rate")
        report["E12-noise"] = render_noise_sweep(run_noise_sweep(context)).render()
    if include_baselines:
        _LOG.info("EX: trained reduced baselines")
        report["EX-baselines"] = render_baseline_table(run_baseline_table(context)).render()
    return report


def report_markdown(report: dict[str, str]) -> str:
    """Wrap rendered tables into one markdown document."""
    sections = ["# Experiment report\n"]
    for key in sorted(report):
        sections.append(f"## {key}\n\n```\n{report[key]}\n```\n")
    return "\n".join(sections)
