"""Experiment E2 — Table II: per-message latency comparison.

Published rows are quoted (they were measured on the original authors'
GPUs/edge boxes); our row is **measured** by running the deployed 4-bit
QMLP through the full ECU receive path (driver MMIO + accelerator
cycle model + OS path).  The table also normalises block-based systems
to per-frame latency, the comparison the paper argues for in the text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.published import PAPER_QMLP_LATENCY, PUBLISHED_LATENCY
from repro.datasets.features import BitFeatureEncoder
from repro.experiments.context import ExperimentContext
from repro.soc.ecu import IDSEnabledECU
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = ["Table2Result", "run_table2", "render_table2"]


@dataclass
class Table2Result:
    """Our measured latency plus derived comparison figures."""

    measured_latency_ms: float
    p99_latency_ms: float
    throughput_fps: float
    speedup_vs_mth: float  # the paper's headline 4.8x over MTH-IDS

    @property
    def measured_latency_s(self) -> float:
        return self.measured_latency_ms * 1e-3


def run_table2(context: ExperimentContext, eval_frames: int = 4000) -> Table2Result:
    """Measure our per-message latency through the ECU pipeline."""
    ip = context.ip("dos")
    capture = context.capture("dos")
    ecu = IDSEnabledECU(
        ip,
        BitFeatureEncoder(),
        name="table2-ecu",
        seed=derive_seed(context.settings.seed, "table2-ecu"),
    )
    report = ecu.process_capture(capture[:eval_frames], with_metrics=False)
    mth = next(row for row in PUBLISHED_LATENCY if row.model == "MTH-IDS")
    measured_ms = 1e3 * report.mean_latency_s
    return Table2Result(
        measured_latency_ms=measured_ms,
        p99_latency_ms=1e3 * report.p99_latency_s,
        throughput_fps=report.throughput_fps,
        speedup_vs_mth=mth.latency_ms / measured_ms,
    )


def render_table2(result: Table2Result) -> Table:
    """Render Table II with a per-frame normalised column added."""
    table = Table(
        ["Model", "Latency", "Frames", "Per-frame", "Platform"],
        title="Table II: per-message latency comparison against reported literature",
    )
    for row in PUBLISHED_LATENCY:
        table.add_row(
            [
                row.model,
                f"{row.latency_ms:g} ms",
                row.frames,
                f"{row.per_frame_ms:.3f} ms",
                row.platform,
            ]
        )
    table.add_row(
        [
            PAPER_QMLP_LATENCY.model,
            f"{PAPER_QMLP_LATENCY.latency_ms:g} ms",
            PAPER_QMLP_LATENCY.frames,
            f"{PAPER_QMLP_LATENCY.per_frame_ms:.3f} ms",
            PAPER_QMLP_LATENCY.platform,
        ]
    )
    table.add_row(
        [
            "4-bit-QMLP (ours, measured)",
            f"{result.measured_latency_ms:.3f} ms",
            "per CAN frame",
            f"{result.measured_latency_ms:.3f} ms",
            "Zynq Ultrascale+ (simulated)",
        ]
    )
    return table
