"""Experiment harnesses: one module per paper artefact.

==============  ==========================================================
module          reproduces
==============  ==========================================================
table1          Table I — accuracy metrics vs published IDSs
table2          Table II — per-message latency vs published IDSs
figure1         Fig. 1 — IDS-ECUs scanning a multi-node CAN network
latency_report  in-text 0.12 ms per-message latency breakdown
throughput      in-text >8300 msg/s near-line-rate claim
energy          in-text 2.09 W / 0.25 mJ / 9.12 J-on-GPU comparison
resources       in-text <4 % utilisation claim
dse_report      in-text bit-width DSE ("4-bit chosen")
foldings        FINN folding optimisation trade-off
multimodel      in-text multi-model simultaneous deployment claim
baseline_table  trained reduced baselines on the same synthetic data
campaigns       attack-campaign scenario sweep through the gateway
noise           E12 — detection robustness vs wire bit-error rate
==============  ==========================================================

All harnesses share :class:`~repro.experiments.context.ExperimentContext`
(cached capture generation, training and compilation) so a full run
trains each detector once.
"""

from repro.experiments.context import ExperimentContext, ExperimentSettings

__all__ = ["ExperimentContext", "ExperimentSettings"]
