"""Extended Table I: trainable reduced baselines on the same data.

The paper quotes literature numbers; this harness additionally *runs*
each baseline family (DCNN, GRU, LSTM, TCAN, MTH) on the identical
synthetic captures, so the comparison can be regenerated end to end —
with the honest caveat that these are reduced CPU-scale
implementations, not the originals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineResult, evaluate_baseline, id_grid_windows
from repro.baselines.dcnn import DCNNBaseline
from repro.baselines.mth import MTHBaseline
from repro.baselines.recurrent import GRUBaseline, LSTMBaseline
from repro.baselines.tcan import TCANBaseline
from repro.datasets.features import BitFeatureEncoder, WindowFeatureEncoder
from repro.experiments.context import ExperimentContext
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = ["BaselineTableResult", "run_baseline_table", "render_baseline_table"]


@dataclass
class BaselineTableResult:
    """Reduced-baseline results plus the QMLP rows for context."""

    rows: list[BaselineResult]
    qmlp: dict[str, dict[str, float]]


def run_baseline_table(
    context: ExperimentContext,
    attacks: tuple[str, ...] = ("dos", "fuzzy"),
    max_frames: int = 8000,
    epochs: int = 5,
) -> BaselineTableResult:
    """Train every reduced baseline on each attack capture."""
    rows: list[BaselineResult] = []
    seed = context.settings.seed
    for attack in attacks:
        window = context.capture(attack)[:max_frames]
        bit_x, bit_y = BitFeatureEncoder().encode(window)
        seq_encoder = WindowFeatureEncoder(BitFeatureEncoder(), window=4)
        seq_x, seq_y = seq_encoder.encode_sequences(window)
        grid_x, grid_y = id_grid_windows(window, window=29)

        rows.append(
            evaluate_baseline(
                MTHBaseline(seed=derive_seed(seed, f"mth-{attack}")),
                bit_x, bit_y, attack, seed=derive_seed(seed, f"split-mth-{attack}"),
                notes="per-frame bits",
            )
        )
        rows.append(
            evaluate_baseline(
                DCNNBaseline(epochs=epochs, seed=derive_seed(seed, f"dcnn-{attack}")),
                grid_x, grid_y, attack, seed=derive_seed(seed, f"split-dcnn-{attack}"),
                notes="29-frame ID grids (block labels)",
            )
        )
        for cls, tag in ((GRUBaseline, "gru"), (LSTMBaseline, "lstm"), (TCANBaseline, "tcan")):
            rows.append(
                evaluate_baseline(
                    cls(input_size=seq_x.shape[2], epochs=epochs, seed=derive_seed(seed, f"{tag}-{attack}")),
                    seq_x, seq_y, attack, seed=derive_seed(seed, f"split-{tag}-{attack}"),
                    notes="4-frame sequences",
                )
            )
    qmlp = {attack: context.trained(attack).metrics for attack in attacks}
    return BaselineTableResult(rows=rows, qmlp=qmlp)


def render_baseline_table(result: BaselineTableResult) -> Table:
    table = Table(
        ["Attack", "Model", "Precision", "Recall", "F1", "FNR", "Input"],
        title="Reduced baselines retrained on the synthetic Car-Hacking captures",
    )
    attacks = sorted({row.attack for row in result.rows})
    for attack in attacks:
        for row in (r for r in result.rows if r.attack == attack):
            m = row.metrics
            table.add_row(
                [
                    attack,
                    row.name,
                    f"{m['precision']:.2f}",
                    f"{m['recall']:.2f}",
                    f"{m['f1']:.2f}",
                    f"{m['fnr']:.2f}",
                    row.notes,
                ]
            )
        qm = result.qmlp[attack]
        table.add_row(
            [
                attack,
                "4-bit QMLP (ours)",
                f"{qm['precision']:.2f}",
                f"{qm['recall']:.2f}",
                f"{qm['f1']:.2f}",
                f"{qm['fnr']:.2f}",
                "per-frame bits",
            ]
        )
    return table
