"""Shared experiment state: captures, trained models, compiled IPs.

Most harnesses need "the trained 4-bit DoS detector" or "the compiled
Fuzzy IP"; the context trains/compiles each configuration once and
caches it, keyed by (attack, bits), so running every experiment in one
session costs one training run per detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.carhacking import CarHackingCapture, generate_capture
from repro.finn.ipgen import AcceleratorIP, compile_model
from repro.models.qmlp import QMLPConfig
from repro.training.pipeline import IDSModelResult, train_ids_model
from repro.training.trainer import TrainConfig
from repro.utils.logutil import get_logger
from repro.utils.rng import derive_seed

__all__ = ["ExperimentSettings", "ExperimentContext"]

_LOG = get_logger("experiments")


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment harness.

    Defaults are sized for benchmark runs (a ~20 s capture trains in
    well under a minute per detector on CPU); tests use smaller values.
    """

    duration: float = 16.0
    epochs: int = 10
    seed: int = 2023
    clock_mhz: float = 100.0
    target_fps: float = 1e6


@dataclass
class ExperimentContext:
    """Cached training/compilation used across experiment harnesses."""

    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    _captures: dict = field(default_factory=dict)
    _results: dict = field(default_factory=dict)
    _ips: dict = field(default_factory=dict)

    def capture(self, attack: str) -> CarHackingCapture:
        """The (cached) evaluation capture for one attack type.

        All captures share one master capture seed, so they record the
        *same vehicle* under different attacks — matching the real
        dataset, where every capture comes from one car.
        """
        if attack not in self._captures:
            self._captures[attack] = generate_capture(
                attack,
                duration=self.settings.duration,
                seed=derive_seed(self.settings.seed, "capture"),
            )
        return self._captures[attack]

    def trained(self, attack: str, bits: int = 4) -> IDSModelResult:
        """The (cached) trained QMLP detector for ``attack`` at ``bits``."""
        key = (attack, bits)
        if key not in self._results:
            _LOG.info("training %s detector at %d bits...", attack, bits)
            self._results[key] = train_ids_model(
                attack,
                model_config=QMLPConfig(
                    weight_bits=bits, act_bits=bits,
                    seed=derive_seed(self.settings.seed, f"model-{attack}"),
                ),
                train_config=TrainConfig(
                    epochs=self.settings.epochs,
                    seed=derive_seed(self.settings.seed, f"train-{attack}-{bits}"),
                ),
                capture=self.capture(attack),
                seed=derive_seed(self.settings.seed, f"pipeline-{attack}"),
            )
        return self._results[key]

    def ip(self, attack: str, bits: int = 4) -> AcceleratorIP:
        """The (cached) compiled accelerator for ``attack`` at ``bits``."""
        key = (attack, bits)
        if key not in self._ips:
            result = self.trained(attack, bits)
            self._ips[key] = compile_model(
                result.model,
                name=f"{attack}-{bits}bit-qmlp",
                target_fps=self.settings.target_fps,
                clock_mhz=self.settings.clock_mhz,
            )
        return self._ips[key]
