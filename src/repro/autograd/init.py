"""Weight initialisers.

All initialisers take an explicit :class:`numpy.random.Generator`; the
library never touches global numpy RNG state.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "xavier_uniform",
    "kaiming_uniform",
    "kaiming_normal",
    "uniform",
    "zeros",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ConfigError(f"fan in/out undefined for shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with ``a = gain * sqrt(6/(fan_in+fan_out))``."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He/Kaiming uniform (PyTorch Linear default with ``a=sqrt(5)``)."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal for ReLU networks: N(0, sqrt(2/fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    return rng.normal(0.0, math.sqrt(2.0 / fan_in), size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float, high: float) -> np.ndarray:
    """Plain uniform initialiser."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialiser (biases)."""
    return np.zeros(shape, dtype=np.float64)
