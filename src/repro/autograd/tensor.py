"""The differentiable :class:`Tensor` and its primitive operations.

Design
------
Each operation returns a new :class:`Tensor` holding a closure
(``_backward``) that scatters the output gradient to its parents.
``Tensor.backward()`` runs a topological sort of the recorded graph and
invokes the closures in reverse order — classic define-by-run reverse
mode, the same execution model PyTorch uses.

Only float64 data participates in differentiation; integer arrays are
accepted and silently promoted.  Gradients broadcast exactly like the
forward operations, and :func:`_unbroadcast` folds gradient contributions
back to each parent's shape.

Straight-through estimators (STE), the backbone of quantisation-aware
training, are provided as first-class ops: :meth:`Tensor.round_ste` and
:meth:`Tensor.clamp_ste` behave like ``round``/identity in the forward
pass and pass gradients through (optionally gated to the clamp range) in
the backward pass.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import GradError, ShapeError

__all__ = ["Tensor", "tensor", "concatenate", "stack", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _as_array(data: Any) -> np.ndarray:
    if isinstance(data, Tensor):
        raise TypeError("wrap Tensor data with .data, not Tensor(...) again")
    array = np.asarray(data, dtype=np.float64)
    return array


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum leading dims that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum dims that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Array-like; always stored as ``float64``.
    requires_grad:
        When True, operations involving this tensor record the graph and
        ``backward()`` accumulates into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")
    __array_priority__ = 100.0  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(self, data: Any, requires_grad: bool = False, op: str = "leaf"):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.op = op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the graph."""
        return Tensor(self.data, requires_grad=False, op="detach")

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, op=op)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones for scalar outputs; non-scalar outputs
        require an explicit seed gradient, mirroring PyTorch semantics.
        """
        if not self.requires_grad:
            raise GradError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradError(
                    f"backward() on non-scalar output of shape {self.shape} "
                    "requires an explicit gradient"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
            )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Any) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other: Any) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other: Any) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise GradError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if grad.ndim == 1 else self.data[..., None] @ grad[..., None, :])
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return Tensor._make(out_data, (self,), backward, "sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            out_full = out_data
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
                out_full = np.expand_dims(out_data, axis=axis)
            mask = (self.data == out_full).astype(np.float64)
            # Split gradient equally between ties, as PyTorch's amax does not;
            # exact tie handling is irrelevant for training, stability is not.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            self._accumulate(mask * expanded)

        return Tensor._make(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = tuple(np.argsort(axes_tuple))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index: Any) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data.astype(np.int64)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward, "leaky_relu")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward, "abs")

    def clamp(self, low: float | None = None, high: float | None = None) -> "Tensor":
        """Clip values; gradient is zero outside the clamp range."""
        out_data = np.clip(self.data, low, high)
        inside = np.ones_like(self.data, dtype=bool)
        if low is not None:
            inside &= self.data >= low
        if high is not None:
            inside &= self.data <= high

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward, "clamp")

    # ------------------------------------------------------------------
    # Straight-through estimators (quantisation-aware training)
    # ------------------------------------------------------------------
    def round_ste(self) -> "Tensor":
        """Round to nearest integer; identity gradient (STE).

        This is the core trick of quantisation-aware training (Bengio et
        al. 2013; used throughout Brevitas): the forward pass sees the
        quantised value while the backward pass pretends rounding is the
        identity, letting gradients reach the full-precision weights.
        """
        out_data = np.round(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return Tensor._make(out_data, (self,), backward, "round_ste")

    def floor_ste(self) -> "Tensor":
        """Floor with identity gradient."""
        out_data = np.floor(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return Tensor._make(out_data, (self,), backward, "floor_ste")

    def clamp_ste(self, low: float, high: float) -> "Tensor":
        """Clip values but let gradients through unconditionally.

        Brevitas exposes both gated and ungated clamp gradients; the
        ungated variant avoids dead weights at the saturation boundary.
        """
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return Tensor._make(out_data, (self,), backward, "clamp_ste")

    # ------------------------------------------------------------------
    # Comparisons (no gradient; return plain arrays)
    # ------------------------------------------------------------------
    def argmax(self, axis: int | None = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __gt__(self, other: Any) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other: Any) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data


def _raise_item() -> float:
    raise ShapeError("item() requires a single-element tensor")


def tensor(data: Any, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    arrays = [t.data for t in tensors]
    out_data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index: list[Any] = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward, "concatenate")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            index: list[Any] = [slice(None)] * grad.ndim
            index[axis] = i
            t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward, "stack")
