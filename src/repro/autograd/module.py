"""``nn.Module``-style containers for the autograd engine.

A :class:`Module` discovers its :class:`Parameter` and sub-module
attributes by inspecting ``__dict__`` (and lists/tuples of modules), so
model classes read exactly like their PyTorch counterparts:

>>> class TinyNet(Module):
...     def __init__(self):
...         super().__init__()
...         self.weight = Parameter(np.zeros((2, 2)))
...     def forward(self, x):
...         return x @ self.weight
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigError

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor; ``requires_grad`` defaults to True."""

    __slots__ = ()

    def __init__(self, data: Any, requires_grad: bool = True):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=requires_grad)


class Module:
    """Base class for layers and models.

    Provides parameter traversal, train/eval mode switching, gradient
    zeroing and a flat ``state_dict`` keyed by dotted attribute paths.
    """

    def __init__(self):
        self.training = True

    # -- forward ---------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)

    # -- traversal -------------------------------------------------------
    def _children(self) -> Iterator[tuple[str, "Module"]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{index}", item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}{name}", value)
        for child_name, child in self._children():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, depth-first."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.data.size for p in self.parameters()))

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for _, child in self._children():
            yield from child.modules()

    # -- training state ----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects Dropout/BatchNorm/quant observers)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- persistence -----------------------------------------------------
    def extra_state(self) -> dict[str, np.ndarray]:
        """Non-parameter state to persist (e.g. BatchNorm running stats).

        Subclasses with buffers override this together with
        :meth:`load_extra_state`.
        """
        return {}

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`extra_state`."""

    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Flat mapping of dotted names to parameter/buffer arrays (copies)."""
        state: dict[str, np.ndarray] = {}
        for name, param in vars(self).items():
            if isinstance(param, Parameter):
                state[f"{prefix}{name}"] = param.data.copy()
        for name, value in self.extra_state().items():
            state[f"{prefix}{name}"] = np.asarray(value).copy()
        for child_name, child in self._children():
            state.update(child.state_dict(prefix=f"{prefix}{child_name}."))
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        """Load arrays saved by :meth:`state_dict` (strict on shapes)."""
        own_extra = self.extra_state()
        extra_update: dict[str, np.ndarray] = {}
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                key = f"{prefix}{name}"
                if key not in state:
                    raise ConfigError(f"state_dict is missing parameter {key!r}")
                loaded = np.asarray(state[key], dtype=np.float64)
                if loaded.shape != value.data.shape:
                    raise ConfigError(
                        f"shape mismatch for {key!r}: saved {loaded.shape}, "
                        f"expected {value.data.shape}"
                    )
                value.data = loaded.copy()
        for name in own_extra:
            key = f"{prefix}{name}"
            if key in state:
                extra_update[name] = np.asarray(state[key])
        if extra_update:
            self.load_extra_state(extra_update)
        for child_name, child in self._children():
            child.load_state_dict(state, prefix=f"{prefix}{child_name}.")

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {child!r}".replace("\n", "\n  ") for name, child in self._children()]
        if not child_lines:
            return f"{type(self).__name__}()"
        return f"{type(self).__name__}(\n" + "\n".join(child_lines) + "\n)"
