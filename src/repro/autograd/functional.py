"""Losses and stateless neural-network functions.

Everything here is composed from :class:`~repro.autograd.tensor.Tensor`
primitives so gradients are derived automatically; the numerically
delicate pieces (log-sum-exp, BCE-with-logits) use the standard stable
formulations.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError

__all__ = [
    "softmax",
    "log_softmax",
    "logsumexp",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l1_loss",
    "accuracy",
    "one_hot",
]


def logsumexp(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    shift = Tensor(logits.data.max(axis=axis, keepdims=True))
    shifted = logits - shift
    return shifted.exp().sum(axis=axis, keepdims=True).log() + shift


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax distribution along ``axis``."""
    return logits - logsumexp(logits, axis=axis)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Softmax distribution along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    class_weights: np.ndarray | None = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``labels`` (N,).

    Parameters
    ----------
    class_weights:
        Optional per-class weights (C,), used to counter class imbalance
        (attack frames are a minority of CAN traffic).  Weighted losses
        are normalised by the total weight of the batch, matching
        ``torch.nn.CrossEntropyLoss``.
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"labels shape {labels.shape} does not match logits batch {logits.shape[0]}"
        )
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[(np.arange(logits.shape[0]), labels.astype(np.int64))]
    if class_weights is None:
        return -picked.mean()
    weights = np.asarray(class_weights, dtype=np.float64)[labels.astype(np.int64)]
    total = float(weights.sum())
    return -(picked * Tensor(weights)).sum() * (1.0 / total)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Stable elementwise BCE on raw logits, averaged over the batch.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))``, the standard
    overflow-free identity.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    softplus_term = ((-logits.abs()).exp() + 1.0).log()
    loss = logits.relu() - logits * targets_t + softplus_term
    return loss.mean()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean absolute error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target_t).abs().mean()


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy of (N, C) logits against (N,) labels."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=-1)
    return float((predictions == np.asarray(labels)).mean())


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels to an (N, C) float array."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
