"""Standard neural-network layers built on the autograd engine.

The layers mirror their PyTorch namesakes closely enough that the model
definitions in :mod:`repro.models` and :mod:`repro.baselines` read like
the papers they reproduce.  Convolution and pooling carry hand-written
backward passes (im2col / index scatter) for speed; everything else is
composed from differentiable primitives.
"""

from __future__ import annotations

import math
import numpy as np

from repro.autograd import init as initialisers
from repro.autograd.module import Module, Parameter
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError, ShapeError
from repro.utils.rng import new_rng

__all__ = [
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Flatten",
    "Sequential",
    "BatchNorm1d",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
]


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with PyTorch-default init.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Whether to learn an additive bias.
    seed:
        Seed for the weight initialiser (kept explicit for reproducible
        experiments).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: int = 0):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigError(
                f"Linear dims must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        rng = new_rng(seed, f"linear-{in_features}x{out_features}")
        self.weight = Parameter(initialisers.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias: Parameter | None = Parameter(rng.uniform(-bound, bound, size=out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected {self.in_features} input features, got {x.shape[-1]}"
            )
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """Elementwise rectifier."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky rectifier with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sigmoid(Module):
    """Elementwise logistic function."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(seed, "dropout")

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)


class BatchNorm1d(Module):
    """Batch normalisation over feature dimension of (N, C) inputs.

    Keeps running mean/var buffers for eval mode; these are persisted
    through :meth:`extra_state` so saved models normalise identically.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def extra_state(self) -> dict[str, np.ndarray]:
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        if "running_mean" in state:
            self.running_mean = np.asarray(state["running_mean"], dtype=np.float64)
        if "running_var" in state:
            self.running_var = np.asarray(state["running_var"], dtype=np.float64)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1d expected (N, {self.num_features}), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=0)
            centred = x - mean
            var = (centred * centred).mean(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data
            )
            batch = x.shape[0]
            unbiased = var.data * batch / max(batch - 1, 1)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * unbiased
            )
            inv_std = (var + self.eps) ** -0.5
            normalised = centred * inv_std
        else:
            normalised = (x - Tensor(self.running_mean)) * Tensor(
                1.0 / np.sqrt(self.running_var + self.eps)
            )
        return normalised * self.gamma + self.beta


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: tuple[int, int] | int
) -> tuple[np.ndarray, int, int]:
    """Rearrange (N, C, H, W) into (N, out_h, out_w, C*kh*kw) patches."""
    pad_h, pad_w = (padding, padding) if isinstance(padding, int) else padding
    n, c, h, w = x.shape
    if pad_h or pad_w:
        x = np.pad(x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
    ph, pw = x.shape[2], x.shape[3]
    out_h = (ph - kh) // stride + 1
    out_w = (pw - kw) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]  # (N, C, out_h, out_w, kh, kw)
    col = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(col), out_h, out_w


def _col2im(
    col_grad: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: int,
    padding: tuple[int, int] | int,
) -> np.ndarray:
    """Scatter patch gradients back to the (N, C, H, W) input layout."""
    pad_h, pad_w = (padding, padding) if isinstance(padding, int) else padding
    n, c, h, w = x_shape
    ph, pw = h + 2 * pad_h, w + 2 * pad_w
    out_h = (ph - kh) // stride + 1
    out_w = (pw - kw) // stride + 1
    grad_padded = np.zeros((n, c, ph, pw), dtype=np.float64)
    col_grad = col_grad.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            grad_padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += col_grad[
                :, :, :, :, i, j
            ]
    return grad_padded[:, :, pad_h : ph - pad_h, pad_w : pw - pad_w]


class Conv2d(Module):
    """2-D convolution via im2col with a hand-written backward pass.

    Used by the DCNN baseline (Song et al.'s reduced Inception-style
    network operates on 29x29 CAN-ID bit grids).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = True,
        seed: int = 0,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kernel_size, kernel_size) if isinstance(kernel_size, int) else tuple(kernel_size)
        self.stride = stride
        self.padding = (padding, padding) if isinstance(padding, int) else tuple(padding)
        kh, kw = self.kernel_size
        rng = new_rng(seed, f"conv-{in_channels}x{out_channels}x{kh}x{kw}")
        shape = (out_channels, in_channels, kh, kw)
        self.weight = Parameter(initialisers.kaiming_uniform(shape, rng))
        if bias:
            fan_in = in_channels * kh * kw
            bound = 1.0 / math.sqrt(fan_in)
            self.bias: Parameter | None = Parameter(rng.uniform(-bound, bound, size=out_channels))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        weight = self.weight
        bias = self.bias
        (kh, kw), s, p = self.kernel_size, self.stride, self.padding
        col, out_h, out_w = _im2col(x.data, kh, kw, s, p)
        w_mat = weight.data.reshape(self.out_channels, -1)  # (OC, C*k*k)
        out = col @ w_mat.T  # (N, out_h, out_w, OC)
        if bias is not None:
            out = out + bias.data
        out = out.transpose(0, 3, 1, 2)
        x_shape = x.shape

        def backward(grad: np.ndarray) -> None:
            grad_hw = grad.transpose(0, 2, 3, 1)  # (N, out_h, out_w, OC)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_hw.sum(axis=(0, 1, 2)))
            if weight.requires_grad:
                flat_grad = grad_hw.reshape(-1, self.out_channels)
                flat_col = col.reshape(-1, col.shape[-1])
                weight._accumulate((flat_grad.T @ flat_col).reshape(weight.data.shape))
            if x.requires_grad:
                col_grad = grad_hw @ w_mat  # (N, out_h, out_w, C*kh*kw)
                x._accumulate(_col2im(col_grad, x_shape, kh, kw, s, p))

        parents = [x, weight] + ([bias] if bias is not None else [])
        return Tensor._make(out, parents, backward, "conv2d")

    def __repr__(self) -> str:
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride).

    Input spatial dims must be divisible by the kernel size; the DCNN
    baseline pads its grids accordingly.
    """

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ShapeError(f"MaxPool2d kernel {k} does not divide spatial dims {h}x{w}")
        blocks = x.data.reshape(n, c, h // k, k, w // k, k)
        out = blocks.max(axis=(3, 5))
        mask = blocks == out[:, :, :, None, :, None]
        # Break ties towards the first max so gradients are not double counted.
        flat = mask.reshape(n, c, h // k, w // k, k * k)
        first = np.zeros_like(flat)
        first[
            tuple(np.indices(flat.shape[:-1]))
            + (flat.argmax(axis=-1),)
        ] = True
        mask = first.reshape(mask.shape)

        def backward(grad: np.ndarray) -> None:
            expanded = mask * grad[:, :, :, None, :, None]
            x._accumulate(expanded.reshape(n, c, h, w))

        return Tensor._make(out, (x,), backward, "maxpool2d")


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ShapeError(f"AvgPool2d kernel {k} does not divide spatial dims {h}x{w}")
        blocks = x.data.reshape(n, c, h // k, k, w // k, k)
        out = blocks.mean(axis=(3, 5))

        def backward(grad: np.ndarray) -> None:
            expanded = np.broadcast_to(
                grad[:, :, :, None, :, None] / (k * k), (n, c, h // k, k, w // k, k)
            )
            x._accumulate(expanded.reshape(n, c, h, w))

        return Tensor._make(out, (x,), backward, "avgpool2d")
