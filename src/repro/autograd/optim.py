"""Optimisers and learning-rate schedules.

SGD (with momentum/Nesterov/weight decay) and Adam cover everything the
paper's training recipes need; schedulers follow the PyTorch convention
of mutating ``optimizer.lr`` on ``step()``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.autograd.module import Parameter
from repro.errors import ConfigError

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "ExponentialLR",
    "clip_grad_norm",
]


class Optimizer:
    """Base class holding the parameter list and the learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(parameters, lr)
        if nesterov and momentum == 0.0:
            raise ConfigError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(param.data)
                velocity = self._velocity[index]
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ConfigError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: list[np.ndarray | None] = [None] * len(self.parameters)
        self._v: list[np.ndarray | None] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[index] is None:
                self._m[index] = np.zeros_like(param.data)
                self._v[index] = np.zeros_like(param.data)
            m, v = self._m[index], self._v[index]
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for divergence monitoring in RNN
    baselines).
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float((g * g).sum()) for g in grads))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialLR(_Scheduler):
    """Multiply the LR by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        super().__init__(optimizer)
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma**epoch)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def _lr_at(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        return self.eta_min + (self.base_lr - self.eta_min) * 0.5 * (
            1 + math.cos(math.pi * t / self.t_max)
        )
