"""A small numpy-backed reverse-mode automatic differentiation engine.

This package is the reproduction's substitute for PyTorch: enough of a
tensor library to express and train the paper's quantised MLP, the
convolutional/recurrent baselines, and the straight-through estimators
used in quantisation-aware training.

Public surface
--------------
* :class:`~repro.autograd.tensor.Tensor` — the differentiable array.
* :mod:`~repro.autograd.functional` — losses and activations.
* :class:`~repro.autograd.module.Module` / layers — ``nn``-style modules.
* :mod:`~repro.autograd.optim` — SGD/Adam and LR schedules.
"""

from repro.autograd import functional, init, optim
from repro.autograd.layers import (
    AvgPool2d,
    BatchNorm1d,
    Conv2d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.autograd.module import Module, Parameter
from repro.autograd.tensor import Tensor, concatenate, no_grad, stack, tensor

__all__ = [
    "AvgPool2d",
    "BatchNorm1d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "concatenate",
    "functional",
    "init",
    "no_grad",
    "optim",
    "stack",
    "tensor",
]
