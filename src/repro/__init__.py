"""repro — reproduction of "Quantised Neural Network Accelerators for
Low-Power IDS in Automotive Networks" (Khandelwal, Walsh & Shreejith,
DATE 2023; arXiv:2401.12240).

The package is organised as a stack of subsystems (see DESIGN.md):

- :mod:`repro.autograd` / :mod:`repro.quant` — PyTorch/Brevitas
  substitute: numpy autograd and quantisation-aware training.
- :mod:`repro.can` / :mod:`repro.datasets` — CAN bus simulation and a
  synthetic Car-Hacking dataset with the public CSV schema.
- :mod:`repro.models` / :mod:`repro.training` — the paper's quantised
  MLP IDS and its training recipes.
- :mod:`repro.finn` — FINN substitute: dataflow compiler, folding,
  resource estimation, cycle-accurate simulation.
- :mod:`repro.soc` — Zynq UltraScale+ ECU platform model: AXI driver,
  power/energy, latency.
- :mod:`repro.baselines` / :mod:`repro.dse` /
  :mod:`repro.experiments` — evaluation harnesses reproducing every
  table, figure and in-text metric of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
