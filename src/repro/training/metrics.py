"""Classification metrics for intrusion detection.

Conventions match the paper (and the IDS literature it compares
against): the **attack class is positive** (label 1), metrics are
reported in percent, and the false-negative rate — the
safety-critical "missed attack" rate — accompanies precision/recall/F1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError

__all__ = ["ConfusionMatrix", "confusion_matrix", "ids_metrics"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts with attack (1) as the positive class."""

    true_negative: int
    false_positive: int
    false_negative: int
    true_positive: int

    @property
    def total(self) -> int:
        return self.true_negative + self.false_positive + self.false_negative + self.true_positive

    @property
    def accuracy(self) -> float:
        return (self.true_positive + self.true_negative) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_negative_rate(self) -> float:
        """FNR = FN / (FN + TP) = 1 - recall; the missed-attack rate."""
        denominator = self.true_positive + self.false_negative
        return self.false_negative / denominator if denominator else 0.0

    @property
    def false_positive_rate(self) -> float:
        denominator = self.true_negative + self.false_positive
        return self.false_positive / denominator if denominator else 0.0


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionMatrix:
    """Binary confusion matrix; labels must be 0 (normal) / 1 (attack)."""
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise TrainingError(f"shape mismatch: y_true {y_true.shape}, y_pred {y_pred.shape}")
    for name, values in (("y_true", y_true), ("y_pred", y_pred)):
        bad = set(np.unique(values)) - {0, 1}
        if bad:
            raise TrainingError(f"{name} contains non-binary labels {sorted(bad)}")
    return ConfusionMatrix(
        true_negative=int(np.sum((y_true == 0) & (y_pred == 0))),
        false_positive=int(np.sum((y_true == 0) & (y_pred == 1))),
        false_negative=int(np.sum((y_true == 1) & (y_pred == 0))),
        true_positive=int(np.sum((y_true == 1) & (y_pred == 1))),
    )


def ids_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, float]:
    """The paper's Table I metric set, in percent.

    Returns ``{"precision", "recall", "f1", "fnr", "accuracy"}`` — all
    multiplied by 100 to match the table formatting.
    """
    cm = confusion_matrix(y_true, y_pred)
    return {
        "precision": 100.0 * cm.precision,
        "recall": 100.0 * cm.recall,
        "f1": 100.0 * cm.f1,
        "fnr": 100.0 * cm.false_negative_rate,
        "accuracy": 100.0 * cm.accuracy,
    }
