"""Training loops and IDS evaluation metrics.

:class:`~repro.training.trainer.Trainer` provides the mini-batch QAT
recipe used for every model in the reproduction (Adam, class-balanced
cross-entropy, early stopping on validation F1);
:mod:`~repro.training.metrics` implements the exact metric set of the
paper's Table I (precision, recall, F1, false-negative rate, with the
attack class as the positive class).
"""

from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.metrics import (
    ConfusionMatrix,
    confusion_matrix,
    ids_metrics,
)
from repro.training.pipeline import IDSModelResult, train_ids_model
from repro.training.trainer import TrainConfig, Trainer, TrainHistory

__all__ = [
    "ConfusionMatrix",
    "IDSModelResult",
    "TrainConfig",
    "TrainHistory",
    "Trainer",
    "confusion_matrix",
    "ids_metrics",
    "load_checkpoint",
    "save_checkpoint",
    "train_ids_model",
]
