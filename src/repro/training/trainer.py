"""Mini-batch trainer with early stopping.

One recipe serves every model in the reproduction (QMLPs at all bit
widths and the trainable baselines): Adam on class-weighted
cross-entropy, optional gradient clipping for the recurrent baselines,
early stopping on validation F1 with best-state restoration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.autograd import functional as F
from repro.autograd.module import Module
from repro.autograd.optim import SGD, Adam, clip_grad_norm
from repro.autograd.tensor import Tensor, no_grad
from repro.errors import ConfigError, TrainingError
from repro.training.metrics import ids_metrics
from repro.utils.logutil import get_logger
from repro.utils.rng import new_rng

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]

_LOG = get_logger("training")


@dataclass
class TrainConfig:
    """Hyper-parameters of the QAT training recipe."""

    epochs: int = 20
    batch_size: int = 256
    lr: float = 1e-3
    optimizer: str = "adam"  # "adam" | "sgd"
    weight_decay: float = 0.0
    momentum: float = 0.9  # SGD only
    class_balanced: bool = True
    clip_norm: float | None = None
    early_stopping_patience: int | None = 5
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.optimizer not in ("adam", "sgd"):
            raise ConfigError(f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}")
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    val_f1: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_f1: float = -1.0
    wall_seconds: float = 0.0

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


def _class_weights(labels: np.ndarray) -> np.ndarray:
    """Inverse-frequency class weights normalised to mean 1."""
    counts = np.bincount(labels.astype(np.int64), minlength=2).astype(np.float64)
    if np.any(counts == 0):
        raise TrainingError(
            f"training labels contain a missing class (counts {counts.tolist()}); "
            "widen the capture or lower the split fraction"
        )
    weights = counts.sum() / (len(counts) * counts)
    return weights / weights.mean()


class Trainer:
    """Train and evaluate classification models on (X, y) numpy data."""

    def __init__(self, config: TrainConfig | None = None):
        self.config = config or TrainConfig()

    # ------------------------------------------------------------------
    # Inference helpers
    # ------------------------------------------------------------------
    @staticmethod
    def predict_logits(model: Module, features: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Forward a dataset in eval mode, batched; returns (N, C) logits."""
        model.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(features), batch_size):
                batch = Tensor(features[start : start + batch_size])
                outputs.append(model(batch).data)
        return np.concatenate(outputs, axis=0)

    @classmethod
    def predict(cls, model: Module, features: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Predicted class labels."""
        return cls.predict_logits(model, features, batch_size).argmax(axis=1)

    @classmethod
    def evaluate(cls, model: Module, features: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        """The paper's metric set on a dataset split."""
        return ids_metrics(labels, cls.predict(model, features))

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def fit(
        self,
        model: Module,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> TrainHistory:
        """Train ``model``; restores the best-validation-F1 state on exit.

        When no validation split is given, early stopping is disabled
        and the final state is kept.
        """
        config = self.config
        if len(x_train) != len(y_train):
            raise TrainingError("x_train and y_train lengths differ")
        has_val = x_val is not None and y_val is not None

        if config.optimizer == "adam":
            optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        else:
            optimizer = SGD(
                model.parameters(),
                lr=config.lr,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
            )
        class_weights = _class_weights(y_train) if config.class_balanced else None
        rng = new_rng(config.seed, "trainer-shuffle")
        history = TrainHistory()
        best_state: dict[str, np.ndarray] | None = None
        patience_left = config.early_stopping_patience
        started = time.perf_counter()

        for epoch in range(config.epochs):
            model.train()
            order = rng.permutation(len(x_train))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(order), config.batch_size):
                batch_idx = order[start : start + config.batch_size]
                if len(batch_idx) < 2:
                    continue  # BatchNorm-style layers need > 1 sample
                optimizer.zero_grad()
                logits = model(Tensor(x_train[batch_idx]))
                loss = F.cross_entropy(logits, y_train[batch_idx], class_weights=class_weights)
                loss.backward()
                if config.clip_norm is not None:
                    clip_grad_norm(optimizer.parameters, config.clip_norm)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            mean_loss = epoch_loss / max(batches, 1)
            if not np.isfinite(mean_loss):
                raise TrainingError(f"training diverged at epoch {epoch} (loss={mean_loss})")
            history.train_loss.append(mean_loss)

            if has_val:
                val_logits = self.predict_logits(model, x_val)
                val_loss = F.cross_entropy(Tensor(val_logits), y_val).item()
                val_f1 = ids_metrics(y_val, val_logits.argmax(axis=1))["f1"]
                history.val_loss.append(val_loss)
                history.val_f1.append(val_f1)
                if config.verbose:
                    _LOG.info(
                        "epoch %d: loss %.4f, val loss %.4f, val F1 %.3f",
                        epoch, mean_loss, val_loss, val_f1,
                    )
                if val_f1 > history.best_val_f1:
                    history.best_val_f1 = val_f1
                    history.best_epoch = epoch
                    best_state = model.state_dict()
                    patience_left = config.early_stopping_patience
                elif config.early_stopping_patience is not None:
                    patience_left -= 1
                    if patience_left <= 0:
                        if config.verbose:
                            _LOG.info("early stopping at epoch %d", epoch)
                        break
            elif config.verbose:
                _LOG.info("epoch %d: loss %.4f", epoch, mean_loss)

        if best_state is not None:
            model.load_state_dict(best_state)
        model.eval()
        history.wall_seconds = time.perf_counter() - started
        return history
