"""Model persistence: save/load trained detectors as JSON artefacts.

A checkpoint bundles the :class:`~repro.models.qmlp.QMLPConfig`, the
full parameter/observer state and the recorded test metrics, so a
deployed detector can be rebuilt (and recompiled to a bit-identical
accelerator) without retraining.  JSON keeps artefacts diffable and
dependency-free; weights are small (the deployed model is ~11 k
parameters).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.autograd.layers import Sequential
from repro.errors import ConfigError
from repro.models.qmlp import QMLPConfig, build_qmlp
from repro.utils.serialization import from_json_file, to_json_file

__all__ = ["save_checkpoint", "load_checkpoint", "CHECKPOINT_FORMAT_VERSION"]

CHECKPOINT_FORMAT_VERSION = 1


def save_checkpoint(
    model: Sequential,
    config: QMLPConfig,
    path: str | Path,
    attack: str | None = None,
    metrics: dict[str, float] | None = None,
) -> Path:
    """Persist a trained quantised model to ``path`` (JSON).

    Parameters
    ----------
    model:
        The trained module (its ``state_dict`` includes quantiser
        observer ranges, so inference scales restore exactly).
    config:
        The architecture the model was built from.
    attack, metrics:
        Optional provenance recorded alongside the weights.
    """
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "config": {
            "input_features": config.input_features,
            "hidden": list(config.hidden),
            "num_classes": config.num_classes,
            "weight_bits": config.weight_bits,
            "act_bits": config.act_bits,
            "input_bits": config.input_bits,
            "dropout": config.dropout,
            "scale_mode": config.scale_mode,
            "seed": config.seed,
        },
        "state": {key: value.tolist() for key, value in model.state_dict().items()},
        "attack": attack,
        "metrics": metrics or {},
    }
    return to_json_file(payload, path)


def load_checkpoint(path: str | Path) -> tuple[Sequential, QMLPConfig, dict]:
    """Rebuild a model from a checkpoint written by :func:`save_checkpoint`.

    Returns ``(model, config, provenance)`` with the model in eval mode;
    its predictions (and any accelerator compiled from it) are
    bit-identical to the saved one.
    """
    payload = from_json_file(path)
    version = payload.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ConfigError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_FORMAT_VERSION})"
        )
    raw = payload["config"]
    config = QMLPConfig(
        input_features=int(raw["input_features"]),
        hidden=tuple(int(h) for h in raw["hidden"]),
        num_classes=int(raw["num_classes"]),
        weight_bits=int(raw["weight_bits"]),
        act_bits=int(raw["act_bits"]),
        input_bits=int(raw["input_bits"]),
        dropout=float(raw["dropout"]),
        scale_mode=str(raw["scale_mode"]),
        seed=int(raw["seed"]),
    )
    model = build_qmlp(config)
    state = {key: np.asarray(value, dtype=np.float64) for key, value in payload["state"].items()}
    model.load_state_dict(state)
    model.eval()
    provenance = {"attack": payload.get("attack"), "metrics": payload.get("metrics", {})}
    return model, config, provenance
