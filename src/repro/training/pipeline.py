"""End-to-end IDS training pipeline.

``train_ids_model("dos")`` reproduces the paper's model-production flow
in one call: generate (or load) a capture, encode frames, split, build
the quantised MLP, QAT-train it and evaluate on the held-out test set.
The result object carries everything downstream stages need — the
trained model for FINN compilation, the test metrics for Table I, and
the dataset snapshot for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autograd.layers import Sequential
from repro.datasets.carhacking import CarHackingCapture, generate_capture
from repro.datasets.features import BitFeatureEncoder, FeatureEncoder
from repro.datasets.splits import DatasetSplits, train_val_test_split
from repro.errors import ConfigError
from repro.models.qmlp import QMLPConfig, build_qmlp
from repro.training.trainer import TrainConfig, Trainer, TrainHistory
from repro.utils.rng import derive_seed

__all__ = ["IDSModelResult", "train_ids_model"]


@dataclass
class IDSModelResult:
    """Everything produced by one IDS training run."""

    attack: str
    model: Sequential
    model_config: QMLPConfig
    history: TrainHistory
    metrics: dict[str, float]  # test-split metrics, percent
    splits: DatasetSplits
    capture: CarHackingCapture

    @property
    def test_f1(self) -> float:
        return self.metrics["f1"]

    def summary(self) -> str:
        """One-line result summary for logs and examples."""
        m = self.metrics
        return (
            f"{self.attack}: {self.model_config.describe()} — "
            f"P {m['precision']:.2f} R {m['recall']:.2f} "
            f"F1 {m['f1']:.2f} FNR {m['fnr']:.2f}"
        )


def train_ids_model(
    attack: str,
    model_config: QMLPConfig | None = None,
    train_config: TrainConfig | None = None,
    capture: CarHackingCapture | None = None,
    encoder: FeatureEncoder | None = None,
    duration: float = 20.0,
    seed: int = 0,
) -> IDSModelResult:
    """Train one per-attack quantised IDS model end to end.

    Parameters
    ----------
    attack:
        ``"dos"`` or ``"fuzzy"`` (the paper's two deployed detectors);
        ``"gear"``/``"rpm"`` spoofing detectors also work.
    model_config:
        Architecture/bit-width; defaults to the deployed 4-bit QMLP.
    capture:
        Pre-generated capture (e.g. loaded from the real dataset CSVs);
        generated synthetically when omitted.
    duration:
        Synthetic capture length when generating.
    seed:
        Master seed; dataset, split and trainer seeds derive from it.
    """
    if capture is None:
        capture = generate_capture(attack, duration=duration, seed=derive_seed(seed, "capture"))
    if capture.num_attack == 0:
        raise ConfigError(
            f"capture contains no attack frames for {attack!r}; "
            "increase duration or check attack windows"
        )
    encoder = encoder or BitFeatureEncoder()
    features, labels = encoder.encode(capture.capture)
    splits = train_val_test_split(features, labels, seed=derive_seed(seed, "split"))

    model_config = model_config or QMLPConfig(
        input_features=features.shape[1], seed=derive_seed(seed, "model")
    )
    if model_config.input_features != features.shape[1]:
        raise ConfigError(
            f"model expects {model_config.input_features} features but the "
            f"encoder produced {features.shape[1]}"
        )
    model = build_qmlp(model_config)

    trainer = Trainer(train_config or TrainConfig(seed=derive_seed(seed, "trainer")))
    history = trainer.fit(model, splits.x_train, splits.y_train, splits.x_val, splits.y_val)
    metrics = trainer.evaluate(model, splits.x_test, splits.y_test)
    return IDSModelResult(
        attack=attack,
        model=model,
        model_config=model_config,
        history=history,
        metrics=metrics,
        splits=splits,
        capture=capture,
    )
