"""Design-space exploration.

The paper performs two explorations before deployment: a quantisation
bit-width sweep ("4-bit uniform quantisation achieved best performance
in both DoS and Fuzzying attacks, and hence was chosen for deployment")
and the folding/partitioning choices of the FINN compilation flow
("streaming layer optimisations and partitioning were chosen ... to
optimise the hardware IP").  This package reproduces both sweeps.
"""

from repro.dse.bitwidth import BitwidthPoint, run_bitwidth_sweep, select_deployment_point
from repro.dse.foldingsweep import FoldingPoint, run_folding_sweep

__all__ = [
    "BitwidthPoint",
    "FoldingPoint",
    "run_bitwidth_sweep",
    "run_folding_sweep",
    "select_deployment_point",
]
