"""Folding (PE/SIMD) sweep: throughput vs. resources for one model.

Reproduces the "streaming layer optimisations and partitioning" step of
the FINN compilation flow: for a trained model, sweep the folding
throughput target and record the achieved initiation interval, latency
and resource cost of each point.  The curve shows the classic staircase
(folding halves multiply resources until layers saturate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.finn.ipgen import compile_model
from repro.finn.resources import ResourceEstimate
from repro.quant.export import QNNExport
from repro.soc.device import ZCU104

__all__ = ["FoldingPoint", "run_folding_sweep", "DEFAULT_TARGETS"]

DEFAULT_TARGETS = (1e4, 1e5, 5e5, 1e6, 5e6, 2e7)


@dataclass
class FoldingPoint:
    """One folding sweep point."""

    target_fps: float
    achieved_fps: float
    initiation_interval: int
    latency_us: float
    pe: list[int]
    simd: list[int]
    resources: ResourceEstimate
    max_utilization_pct: float


def run_folding_sweep(
    export: QNNExport,
    targets: tuple[float, ...] = DEFAULT_TARGETS,
    clock_mhz: float = 100.0,
) -> list[FoldingPoint]:
    """Compile the model once per throughput target."""
    if not targets:
        raise ConfigError("folding sweep needs at least one target")
    points = []
    for target in sorted(targets):
        ip = compile_model(
            export,
            name=f"fold-{target:g}",
            target_fps=target,
            clock_mhz=clock_mhz,
            verify=False,  # identical graph every point; verified once elsewhere
        )
        points.append(
            FoldingPoint(
                target_fps=target,
                achieved_fps=ip.throughput_fps,
                initiation_interval=ip.pipeline.initiation_interval,
                latency_us=1e6 * ip.latency_seconds,
                pe=list(ip.folding.pe),
                simd=list(ip.folding.simd),
                resources=ip.resources,
                max_utilization_pct=ZCU104.max_utilization(ip.resources),
            )
        )
    return points
