"""Quantisation bit-width sweep (the paper's pre-deployment DSE).

For each candidate uniform bit width, train one detector per attack,
compile it, and record test metrics together with hardware cost.  The
selection rule mirrors the paper: pick the narrowest bit width whose
accuracy is within a small tolerance of the best observed — quantisation
is free accuracy-wise until it suddenly isn't, and the knee is the
deployment point (4-bit in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.finn.ipgen import compile_model
from repro.finn.resources import ResourceEstimate
from repro.models.qmlp import QMLPConfig
from repro.models.zoo import DSE_BIT_WIDTHS
from repro.soc.device import ZCU104
from repro.training.pipeline import train_ids_model
from repro.training.trainer import TrainConfig
from repro.utils.logutil import get_logger
from repro.utils.rng import derive_seed

__all__ = ["BitwidthPoint", "run_bitwidth_sweep", "select_deployment_point"]

_LOG = get_logger("dse.bitwidth")


@dataclass
class BitwidthPoint:
    """One sweep point: a bit width with its accuracy and cost."""

    bits: int
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)  # attack -> metric set
    resources: ResourceEstimate = field(default_factory=ResourceEstimate)
    max_utilization_pct: float = 0.0

    @property
    def mean_f1(self) -> float:
        """Mean F1 across attacks — the sweep's accuracy axis."""
        return sum(m["f1"] for m in self.metrics.values()) / len(self.metrics)

    @property
    def worst_fnr(self) -> float:
        return max(m["fnr"] for m in self.metrics.values())


def run_bitwidth_sweep(
    bit_widths: tuple[int, ...] = DSE_BIT_WIDTHS,
    attacks: tuple[str, ...] = ("dos", "fuzzy"),
    duration: float = 12.0,
    epochs: int = 8,
    seed: int = 0,
    target_fps: float = 1e6,
) -> list[BitwidthPoint]:
    """Train/compile each bit-width point; returns points in sweep order."""
    if not bit_widths or not attacks:
        raise ConfigError("sweep needs at least one bit width and one attack")
    points: list[BitwidthPoint] = []
    for bits in bit_widths:
        point = BitwidthPoint(bits=bits)
        for attack in attacks:
            result = train_ids_model(
                attack,
                model_config=QMLPConfig(
                    weight_bits=bits, act_bits=bits, seed=derive_seed(seed, f"model-{attack}")
                ),
                train_config=TrainConfig(epochs=epochs, seed=derive_seed(seed, f"train-{attack}-{bits}")),
                duration=duration,
                seed=derive_seed(seed, f"data-{attack}"),
            )
            point.metrics[attack] = result.metrics
            ip = compile_model(result.model, name=f"{attack}-{bits}bit", target_fps=target_fps)
            # Cost of one detector; both attacks share the architecture, so
            # keep the max across attacks as the representative cost.
            if ip.resources.lut > point.resources.lut:
                point.resources = ip.resources
                point.max_utilization_pct = ZCU104.max_utilization(ip.resources)
            _LOG.info(
                "W%dA%d %s: F1 %.2f, LUT %.0f", bits, bits, attack,
                result.metrics["f1"], ip.resources.lut,
            )
        points.append(point)
    return points


def select_deployment_point(points: list[BitwidthPoint], tolerance: float = 0.25) -> BitwidthPoint:
    """The paper's selection rule: narrowest bits within ``tolerance`` F1
    points of the best mean F1 observed across the sweep."""
    if not points:
        raise ConfigError("cannot select from an empty sweep")
    best_f1 = max(point.mean_f1 for point in points)
    eligible = [point for point in points if point.mean_f1 >= best_f1 - tolerance]
    return min(eligible, key=lambda point: point.bits)
