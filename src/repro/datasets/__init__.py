"""Datasets: a statistically matched synthetic Car-Hacking dataset.

The paper trains on the public Car-Hacking dataset (Song, Woo & Kim
2020), an OBD-II capture of a real vehicle with injected DoS, Fuzzy and
spoofing attacks.  That capture cannot ship with this reproduction, so
:mod:`repro.datasets.carhacking` regenerates its structure with the CAN
substrate: ~26 periodic identifiers with realistic periods and payload
dynamics, plus the dataset's exact injection mechanics (0x000 flood
every 0.3 ms; random frames every 0.5 ms; spoofed gauges every 1 ms) in
alternating attack windows.

Files use the same CSV schema as the original, so the real dataset drops
into every loader unchanged.
"""

from repro.datasets.carhacking import (
    CarHackingCapture,
    default_vehicle,
    generate_capture,
    generate_mixed_capture,
)
from repro.datasets.features import (
    BitFeatureEncoder,
    ByteFeatureEncoder,
    FeatureEncoder,
    WindowFeatureEncoder,
)
from repro.datasets.splits import DatasetSplits, train_val_test_split
from repro.datasets.stats import capture_summary

__all__ = [
    "BitFeatureEncoder",
    "ByteFeatureEncoder",
    "CarHackingCapture",
    "DatasetSplits",
    "FeatureEncoder",
    "WindowFeatureEncoder",
    "capture_summary",
    "default_vehicle",
    "generate_capture",
    "generate_mixed_capture",
    "train_val_test_split",
]
