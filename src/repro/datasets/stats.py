"""Capture statistics and dataset summaries.

Used by the experiment harnesses to report what the models were trained
on (frame counts, class balance, identifier inventory, bus rates) — the
reproduction analogue of the dataset table most IDS papers include.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.can.log import CANLogRecord
from repro.errors import DatasetError

__all__ = ["capture_summary", "id_inventory", "message_rate"]


def capture_summary(records: Sequence[CANLogRecord]) -> dict:
    """Aggregate statistics of a capture.

    Returns a dict with: total/normal/attack counts, attack fraction,
    unique identifier count, capture span (s) and mean message rate
    (frames/s).
    """
    if not records:
        raise DatasetError("cannot summarise an empty capture")
    total = len(records)
    attacks = sum(1 for record in records if record.is_attack)
    span = records[-1].timestamp - records[0].timestamp
    return {
        "total_frames": total,
        "normal_frames": total - attacks,
        "attack_frames": attacks,
        "attack_fraction": attacks / total,
        "unique_ids": len({record.can_id for record in records}),
        "span_seconds": span,
        "mean_rate_fps": total / span if span > 0 else float("inf"),
    }


def id_inventory(records: Sequence[CANLogRecord]) -> dict[int, dict]:
    """Per-identifier statistics: count, attack count, mean period.

    The mean period of a legitimate periodic identifier is the key
    normality baseline that DoS floods and fuzzed frames violate.
    """
    if not records:
        raise DatasetError("cannot inventory an empty capture")
    by_id: dict[int, list[CANLogRecord]] = {}
    for record in records:
        by_id.setdefault(record.can_id, []).append(record)
    inventory: dict[int, dict] = {}
    for can_id, group in sorted(by_id.items()):
        times = np.array([record.timestamp for record in group])
        periods = np.diff(times)
        inventory[can_id] = {
            "count": len(group),
            "attack_count": sum(1 for r in group if r.is_attack),
            "mean_period": float(periods.mean()) if periods.size else float("nan"),
        }
    return inventory


def message_rate(records: Sequence[CANLogRecord], window: float = 0.1) -> tuple[np.ndarray, np.ndarray]:
    """Frames/s over time, binned at ``window`` seconds.

    Returns ``(bin_start_times, rates)`` — the time series that makes a
    DoS burst visible as a rate spike.
    """
    if not records:
        raise DatasetError("cannot compute rates of an empty capture")
    if window <= 0:
        raise DatasetError(f"window must be positive, got {window}")
    times = np.array([record.timestamp for record in records])
    start, end = times[0], times[-1]
    edges = np.arange(start, end + window, window)
    counts, _ = np.histogram(times, bins=edges)
    return edges[:-1], counts / window
