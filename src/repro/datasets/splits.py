"""Deterministic train/validation/test splitting.

The IDS datasets are heavily imbalanced (attack frames are a minority of
a capture), so splits are stratified by default: each split preserves
the class ratio, which keeps the reported FNR comparable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import new_rng

__all__ = ["DatasetSplits", "train_val_test_split"]


@dataclass
class DatasetSplits:
    """Feature/label arrays for the three standard splits."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def sizes(self) -> tuple[int, int, int]:
        return (len(self.y_train), len(self.y_val), len(self.y_test))


def train_val_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    fractions: tuple[float, float, float] = (0.7, 0.15, 0.15),
    seed: int = 0,
    stratify: bool = True,
) -> DatasetSplits:
    """Shuffle and split ``(features, labels)`` into train/val/test.

    Parameters
    ----------
    fractions:
        Train/val/test fractions; must sum to 1 (±1e-9).
    stratify:
        Preserve the label ratio in every split (recommended for the
        imbalanced IDS captures).
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    if features.shape[0] != labels.shape[0]:
        raise DatasetError(
            f"features ({features.shape[0]}) and labels ({labels.shape[0]}) disagree"
        )
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise DatasetError(f"split fractions must sum to 1, got {fractions}")
    if features.shape[0] < 3:
        raise DatasetError("need at least 3 samples to make 3 splits")

    rng = new_rng(seed, "dataset-split")
    count = features.shape[0]

    if stratify:
        train_idx: list[np.ndarray] = []
        val_idx: list[np.ndarray] = []
        test_idx: list[np.ndarray] = []
        for value in np.unique(labels):
            class_indices = np.flatnonzero(labels == value)
            rng.shuffle(class_indices)
            n = len(class_indices)
            n_train = int(round(fractions[0] * n))
            n_val = int(round(fractions[1] * n))
            train_idx.append(class_indices[:n_train])
            val_idx.append(class_indices[n_train : n_train + n_val])
            test_idx.append(class_indices[n_train + n_val :])
        order_train = np.concatenate(train_idx)
        order_val = np.concatenate(val_idx)
        order_test = np.concatenate(test_idx)
        # Shuffle within each split so class blocks don't stay contiguous.
        rng.shuffle(order_train)
        rng.shuffle(order_val)
        rng.shuffle(order_test)
    else:
        order = rng.permutation(count)
        n_train = int(round(fractions[0] * count))
        n_val = int(round(fractions[1] * count))
        order_train = order[:n_train]
        order_val = order[n_train : n_train + n_val]
        order_test = order[n_train + n_val :]

    return DatasetSplits(
        x_train=features[order_train],
        y_train=labels[order_train],
        x_val=features[order_val],
        y_val=labels[order_val],
        x_test=features[order_test],
        y_test=labels[order_test],
    )
