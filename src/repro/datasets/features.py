"""Frame → feature-vector encoders for the per-message IDS.

The paper's MLP consumes a whole CAN frame per inference ("the packet is
copied into a FIFO style buffer ... examined by our IDS IP").  Three
encoders are provided:

* :class:`BitFeatureEncoder` — the deployed encoding: 11 identifier bits
  + 4 DLC bits + 64 payload bits = **79 binary inputs**.  Binary inputs
  quantise exactly (the input QuantIdentity is lossless on them) and
  make the first hardware layer cheap, as in FINN-style accelerators.
* :class:`ByteFeatureEncoder` — 10 normalised features (ID, DLC, 8
  payload bytes); a compact ablation encoding.
* :class:`WindowFeatureEncoder` — stacks the features of the last *k*
  frames plus inter-arrival times, for block-based baselines (DCNN,
  GRU, TCAN consume windows; see Table II "Frames" column).

Every encoder has two equivalent paths: the per-frame reference
(``encode_frame``) and a whole-capture vectorised kernel
(``encode_batch``) over the columnar :class:`~repro.can.log.CaptureArray`.
The vectorised path is bit-exact with the reference — pinned by
regression tests — and is what ``encode`` and the ECU pipeline use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.can.frame import MAX_STANDARD_ID
from repro.can.log import CANLogRecord, CaptureArray
from repro.errors import DatasetError
from repro.utils.bitops import bytes_to_bits, int_to_bits

__all__ = [
    "FeatureEncoder",
    "BitFeatureEncoder",
    "ByteFeatureEncoder",
    "WindowFeatureEncoder",
]


class FeatureEncoder:
    """Base interface: encode captures into ``(X, y)`` numpy arrays."""

    #: Number of features produced per frame/window.
    num_features: int

    #: Frames of leading context a chunked/streaming caller must carry
    #: over so chunk-boundary outputs match whole-capture encoding.
    lookback: int = 0

    def encode_frame(self, record: CANLogRecord) -> np.ndarray:
        """Encode one frame to a 1-D feature vector."""
        raise NotImplementedError

    def _empty_batch(self) -> np.ndarray:
        """Correctly-shaped ``(0, F)`` output for a zero-frame capture."""
        return np.zeros((0, self.num_features), dtype=np.float64)

    def encode_batch(self, capture: CaptureArray) -> np.ndarray:
        """Encode a columnar capture to features ``X`` (N, F).

        The base implementation falls back to the per-frame reference;
        subclasses override with vectorised kernels that must stay
        bit-exact with it.  Empty captures encode to ``(0, F)``.
        """
        if len(capture) == 0:
            return self._empty_batch()
        # reprolint: disable=hot-path-purity -- scalar reference fallback; subclasses provide the vectorised kernels
        return np.stack([self.encode_frame(record) for record in capture.to_records()])

    def encode(
        self, records: Sequence[CANLogRecord] | CaptureArray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode a capture into features ``X`` (N, F) and labels ``y`` (N,).

        Labels are 1 for attack ("T") frames, 0 for regular traffic.
        Empty captures yield ``(0, F)`` features and ``(0,)`` labels.
        """
        capture = CaptureArray.coerce(records)
        return self.encode_batch(capture), capture.labels.astype(np.int64)


class BitFeatureEncoder(FeatureEncoder):
    """79 binary features: ID(11) + DLC(4) + payload(64, zero padded)."""

    num_features = 11 + 4 + 64

    def encode_frame(self, record: CANLogRecord) -> np.ndarray:
        if record.can_id > MAX_STANDARD_ID:
            raise DatasetError(f"bit encoder expects standard ids, got 0x{record.can_id:X}")
        id_bits = int_to_bits(record.can_id, 11)
        dlc_bits = int_to_bits(min(record.dlc, 15), 4)
        payload = record.data + bytes(8 - len(record.data))
        data_bits = bytes_to_bits(payload)
        return np.concatenate([id_bits, dlc_bits, data_bits]).astype(np.float64)

    def encode_batch(self, capture: CaptureArray) -> np.ndarray:
        if len(capture) == 0:
            return self._empty_batch()
        if int(capture.can_ids.max()) > MAX_STANDARD_ID:
            bad = int(capture.can_ids.max())
            raise DatasetError(f"bit encoder expects standard ids, got 0x{bad:X}")
        out = np.empty((len(capture), self.num_features), dtype=np.float64)
        # Identifier and DLC bits, MSB first (matches int_to_bits).
        out[:, :11] = (capture.can_ids[:, None] >> np.arange(10, -1, -1)) & 1
        out[:, 11:15] = (np.minimum(capture.dlcs, 15)[:, None] >> np.arange(3, -1, -1)) & 1
        # Payload bits, MSB first per byte (matches bytes_to_bits).
        out[:, 15:] = np.unpackbits(capture.payloads, axis=1)
        return out


class ByteFeatureEncoder(FeatureEncoder):
    """10 features in [0, 1]: ID/0x7FF, DLC/8 and the 8 payload bytes/255."""

    num_features = 10

    def encode_frame(self, record: CANLogRecord) -> np.ndarray:
        payload = record.data + bytes(8 - len(record.data))
        features = np.empty(10, dtype=np.float64)
        features[0] = record.can_id / MAX_STANDARD_ID
        features[1] = record.dlc / 8.0
        features[2:] = np.frombuffer(payload, dtype=np.uint8) / 255.0
        return features

    def encode_batch(self, capture: CaptureArray) -> np.ndarray:
        if len(capture) == 0:
            return self._empty_batch()
        out = np.empty((len(capture), self.num_features), dtype=np.float64)
        out[:, 0] = capture.can_ids / MAX_STANDARD_ID
        out[:, 1] = capture.dlcs / 8.0
        out[:, 2:] = capture.payloads / 255.0
        return out


class WindowFeatureEncoder(FeatureEncoder):
    """Sliding window of per-frame features (+ inter-arrival times).

    The label of a window is the label of its newest frame, matching the
    per-message detection objective; windows shorter than ``window``
    (the first frames of a capture) are left-padded with zeros.
    """

    def __init__(
        self,
        base: FeatureEncoder | None = None,
        window: int = 4,
        include_interarrival: bool = True,
        interarrival_scale: float = 0.01,
    ):
        if window < 1:
            raise DatasetError(f"window must be >= 1, got {window}")
        self.base = base if base is not None else BitFeatureEncoder()
        self.window = window
        self.include_interarrival = include_interarrival
        self.interarrival_scale = interarrival_scale
        per_frame = self.base.num_features + (1 if include_interarrival else 0)
        self.num_features = per_frame * window
        # Inter-arrival gaps reach one frame further back than the
        # window itself (the gap of the oldest in-window frame).
        self.lookback = window if include_interarrival else window - 1

    def encode_frame(self, record: CANLogRecord) -> np.ndarray:
        raise DatasetError("WindowFeatureEncoder encodes captures, not single frames")

    def encode_batch(self, capture: CaptureArray) -> np.ndarray:
        if len(capture) == 0:
            return self._empty_batch()
        base_features = self.base.encode_batch(capture)
        if self.include_interarrival:
            times = capture.timestamps
            gaps = np.diff(times, prepend=times[0])
            gaps = np.clip(gaps / self.interarrival_scale, 0.0, 1.0)
            base_features = np.concatenate([base_features, gaps[:, None]], axis=1)
        count, per_frame = base_features.shape
        window_x = np.zeros((count, self.window * per_frame), dtype=np.float64)
        # reprolint: disable=hot-path-purity -- O(window) offset loop, not O(frames)
        for offset in range(self.window):
            # offset 0 = current frame, 1 = previous, ...
            source = base_features[: count - offset] if offset else base_features
            window_x[offset:, (self.window - 1 - offset) * per_frame : (self.window - offset) * per_frame] = source
        return window_x

    def encode_sequences(
        self, records: Sequence[CANLogRecord] | CaptureArray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode as (N, window, per-frame) sequences for recurrent models."""
        window_x, labels = self.encode(records)
        per_frame = window_x.shape[1] // self.window
        return window_x.reshape(len(labels), self.window, per_frame), labels
