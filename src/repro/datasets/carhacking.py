"""Synthetic Car-Hacking dataset generator.

Reproduces the structure of the public Car-Hacking dataset:

* **Normal traffic** — a fixed population of periodic identifiers (the
  original capture of a Hyundai YF Sonata contains ~26-27 unique IDs)
  with periods between 10 ms and 1 s, payloads mixing alive-counters,
  random-walk sensor values and constant status bytes.
* **DoS capture** — identifier ``0x000`` with an 8-byte zero payload
  injected every 0.3 ms during attack windows.
* **Fuzzy capture** — fully random identifier/payload frames injected
  every 0.5 ms during attack windows.
* **Spoofing captures** — gear (0x43F) / RPM (0x316) frames with forged
  payloads injected every 1 ms.

Attack windows alternate with clean intervals (the original performs
attacks in 3-5 s bursts).  All traffic is serialised through the
arbitration-accurate bus simulator, so attack side effects (queueing
delay on legitimate frames during a DoS flood) are present in the
timestamps exactly as in a real capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.can.attacks import DoSAttacker, FuzzyAttacker, SpoofingAttacker
from repro.can.bus import BITRATE_HS_CAN, BusSimulator
from repro.can.log import (
    CANLogRecord,
    CaptureArray,
    read_car_hacking_csv,
    write_car_hacking_csv,
)
from repro.can.node import (
    PeriodicSender,
    constant_payload,
    counter_payload,
    sensor_payload,
)
from repro.errors import DatasetError
from repro.utils.rng import SeedSequence

__all__ = [
    "VehicleIdSpec",
    "VEHICLE_PROFILES",
    "default_vehicle",
    "build_vehicle_bus",
    "CarHackingCapture",
    "generate_capture",
    "ATTACK_TYPES",
]

ATTACK_TYPES = ("dos", "fuzzy", "gear", "rpm")

#: Vehicle topology profiles, from the full modelled ID population down
#: to an economy vehicle carrying only the fast powertrain cluster.
#: Profiles are strict subsets of :func:`default_vehicle`, and a sender
#: keeps its seed derivation (keyed by CAN id) across profiles — the
#: RPM sender of a "lite" vehicle emits exactly the frames it would on
#: the "full" vehicle with the same ``vehicle_seed``.  Both spoofing
#: targets (0x316 RPM, 0x43F gear) exist in every profile, so any
#: campaign scenario compiles onto any profile.
VEHICLE_PROFILES = ("full", "mid", "lite")

#: Slow status broadcasters dropped by the "mid" profile.
_SLOW_STATUS_IDS = frozenset({0x545, 0x587, 0x59B, 0x5A0, 0x5A2, 0x690})

#: Chassis/body messages additionally dropped by the "lite" profile.
_BODY_IDS = frozenset({0x220, 0x2C0, 0x350, 0x370, 0x440, 0x4B1, 0x4F0, 0x510})


@dataclass(frozen=True)
class VehicleIdSpec:
    """One periodic identifier of the modelled vehicle."""

    can_id: int
    period: float
    kind: str  # "counter" | "sensor" | "constant"


def default_vehicle(profile: str = "full") -> list[VehicleIdSpec]:
    """The modelled ID population (26 periodic identifiers).

    Identifiers and rate classes follow the ranges observed in the
    Car-Hacking capture: a handful of fast 10 ms powertrain messages,
    a body of 20-100 ms chassis/body messages and a few slow status
    broadcasters.

    ``profile`` selects a topology subset (:data:`VEHICLE_PROFILES`):
    ``"full"`` carries everything, ``"mid"`` drops the slow status
    broadcasters, ``"lite"`` keeps only the fast powertrain cluster.
    """
    if profile not in VEHICLE_PROFILES:
        raise DatasetError(
            f"unknown vehicle profile {profile!r}; choose from {VEHICLE_PROFILES}"
        )
    excluded: frozenset[int] = frozenset()
    if profile == "mid":
        excluded = _SLOW_STATUS_IDS
    elif profile == "lite":
        excluded = _SLOW_STATUS_IDS | _BODY_IDS
    return [spec for spec in _full_vehicle() if spec.can_id not in excluded]


def _full_vehicle() -> list[VehicleIdSpec]:
    return [
        # Fast powertrain (10 ms)
        VehicleIdSpec(0x130, 0.010, "sensor"),
        VehicleIdSpec(0x131, 0.010, "sensor"),
        VehicleIdSpec(0x140, 0.010, "counter"),
        VehicleIdSpec(0x153, 0.010, "sensor"),
        VehicleIdSpec(0x316, 0.010, "sensor"),  # RPM (spoofing target)
        VehicleIdSpec(0x329, 0.010, "sensor"),
        VehicleIdSpec(0x43F, 0.010, "counter"),  # gear (spoofing target)
        # Medium rate chassis/body (10-100 ms)
        VehicleIdSpec(0x18F, 0.010, "sensor"),
        VehicleIdSpec(0x1F1, 0.010, "counter"),
        VehicleIdSpec(0x220, 0.050, "sensor"),
        VehicleIdSpec(0x2A0, 0.010, "sensor"),
        VehicleIdSpec(0x2B0, 0.010, "sensor"),
        VehicleIdSpec(0x2C0, 0.050, "counter"),
        VehicleIdSpec(0x350, 0.050, "sensor"),
        VehicleIdSpec(0x370, 0.050, "constant"),
        VehicleIdSpec(0x440, 0.100, "sensor"),
        VehicleIdSpec(0x4B0, 0.010, "sensor"),
        VehicleIdSpec(0x4B1, 0.020, "counter"),
        VehicleIdSpec(0x4F0, 0.100, "sensor"),
        VehicleIdSpec(0x510, 0.100, "constant"),
        # Slow status (200 ms - 1 s)
        VehicleIdSpec(0x545, 0.200, "sensor"),
        VehicleIdSpec(0x587, 0.500, "constant"),
        VehicleIdSpec(0x59B, 0.200, "counter"),
        VehicleIdSpec(0x5A0, 0.500, "sensor"),
        VehicleIdSpec(0x5A2, 0.500, "constant"),
        VehicleIdSpec(0x690, 1.000, "constant"),
    ]


def _payload_model(spec: VehicleIdSpec, seeds: SeedSequence):
    if spec.kind == "counter":
        return counter_payload(dlc=8, counter_byte=0)
    if spec.kind == "sensor":
        return sensor_payload(dlc=8, active_bytes=3, walk_step=4, seed=seeds.seed(f"payload-{spec.can_id:x}"))
    if spec.kind == "constant":
        rng = seeds.rng(f"payload-{spec.can_id:x}")
        return constant_payload(bytes(int(b) for b in rng.integers(0, 256, size=8)))
    raise DatasetError(f"unknown payload kind {spec.kind!r} for id 0x{spec.can_id:X}")


def _attack_windows(
    duration: float, burst: float, gap: float, initial_gap: float
) -> list[tuple[float, float]]:
    """Alternating attack bursts: [gap][burst][gap][burst]..."""
    windows = []
    cursor = initial_gap
    while cursor < duration:
        end = min(cursor + burst, duration)
        if end > cursor:
            windows.append((cursor, end))
        cursor = end + gap
    return windows


def build_vehicle_bus(
    vehicle: Sequence[VehicleIdSpec] | None = None,
    vehicle_seed: int = 0,
    bitrate: float = BITRATE_HS_CAN,
    profile: str = "full",
) -> BusSimulator:
    """A bus with the vehicle's periodic senders attached (no attacker).

    The legitimate traffic is a property of the *vehicle*: buses built
    with the same ``vehicle_seed`` carry the same payload constants and
    sensor dynamics.  ``profile`` picks the topology subset the vehicle
    carries (:data:`VEHICLE_PROFILES`; ignored when an explicit
    ``vehicle`` list is given) — sender seeds key on CAN id, so shared
    ids emit identical frames across profiles.  Callers (capture
    generation, the multi-channel gateway scenario, the fleet runner)
    attach their own attackers on top.
    """
    vehicle_seeds = SeedSequence(vehicle_seed, scope="carhacking-vehicle")
    bus = BusSimulator(bitrate=bitrate)
    for spec in vehicle if vehicle is not None else default_vehicle(profile):
        bus.attach(
            PeriodicSender(
                can_id=spec.can_id,
                period=spec.period,
                payload_model=_payload_model(spec, vehicle_seeds),
                jitter=0.02,
                seed=vehicle_seeds.seed(f"sender-{spec.can_id:x}"),
            )
        )
    return bus


@dataclass
class CarHackingCapture:
    """A labelled capture plus its generation metadata.

    The frames live in a columnar :class:`~repro.can.log.CaptureArray`
    (``.capture``) — the interchange type for every training, streaming
    and experiment path.  ``capture[a:b]`` slicing is forwarded, so
    ``generate_capture(...)[:n]`` hands a zero-copy window straight to
    ``encode_batch``/``process_capture``.  The row-oriented ``.records``
    list is materialised lazily, for display and per-frame reference
    paths only.
    """

    capture: CaptureArray
    attack: str | None
    duration: float
    bitrate: float
    seed: int
    attack_windows: list[tuple[float, float]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.capture)

    def __getitem__(self, index: "int | slice | np.ndarray") -> CaptureArray:
        """Columnar view of the capture (zero-copy for slices)."""
        return self.capture[index]

    @property
    def records(self) -> list[CANLogRecord]:
        """Row-oriented view, materialised on first access and cached."""
        cached = self.__dict__.get("_records")
        if cached is None:
            cached = self.capture.to_records()
            self.__dict__["_records"] = cached
        return cached

    @property
    def num_attack(self) -> int:
        return int(self.capture.labels.sum())

    @property
    def num_normal(self) -> int:
        return len(self.capture) - self.num_attack

    def save_csv(self, path: str | Path) -> Path:
        """Persist in the Car-Hacking CSV schema."""
        return write_car_hacking_csv(self.capture, path)

    @classmethod
    def load_csv(cls, path: str | Path, attack: str | None = None) -> "CarHackingCapture":
        """Load a capture (synthetic or the real dataset's files)."""
        capture = CaptureArray.from_records(read_car_hacking_csv(path))
        duration = (
            float(capture.timestamps[-1] - capture.timestamps[0]) if len(capture) else 0.0
        )
        return cls(capture=capture, attack=attack, duration=duration, bitrate=float("nan"), seed=-1)


def generate_capture(
    attack: str | None,
    duration: float = 20.0,
    seed: int = 0,
    bitrate: float = BITRATE_HS_CAN,
    attack_burst: float = 3.0,
    attack_gap: float = 7.0,
    initial_gap: float = 2.0,
    vehicle: Sequence[VehicleIdSpec] | None = None,
    vehicle_seed: int | None = None,
) -> CarHackingCapture:
    """Generate a labelled capture with the requested attack type.

    Parameters
    ----------
    attack:
        ``"dos"``, ``"fuzzy"``, ``"gear"``, ``"rpm"`` or None for an
        attack-free capture.
    duration:
        Capture length in seconds.  The original dataset's captures span
        30-40 minutes; 20-60 s of synthetic traffic yields tens of
        thousands of frames, plenty for the MLP-scale models here.
    attack_burst, attack_gap, initial_gap:
        Attack window pattern (bursts of ``attack_burst`` seconds with
        ``attack_gap`` clean seconds in between).
    vehicle_seed:
        Seed of the *vehicle* (payload constants, sensor dynamics,
        sender phases); defaults to ``seed``.  Captures sharing a
        vehicle seed record the same car under different sessions —
        the real dataset's situation.
    """
    if attack is not None and attack not in ATTACK_TYPES:
        raise DatasetError(f"unknown attack {attack!r}; expected one of {ATTACK_TYPES}")
    seeds = SeedSequence(seed, scope=f"carhacking-{attack or 'normal'}")
    # The legitimate traffic is a property of the *vehicle*, not of the
    # attack being recorded: captures generated with the same vehicle seed
    # share identifier payload constants and sensor dynamics, exactly like
    # the real dataset's captures, which all come from one car.
    bus = build_vehicle_bus(vehicle, seed if vehicle_seed is None else vehicle_seed, bitrate)
    windows = _attack_windows(duration, attack_burst, attack_gap, initial_gap) if attack else []
    if attack == "dos":
        bus.attach(DoSAttacker(windows, seed=seeds.seed("attacker")))
    elif attack == "fuzzy":
        bus.attach(FuzzyAttacker(windows, seed=seeds.seed("attacker")))
    elif attack == "gear":
        bus.attach(SpoofingAttacker(windows, target_id=0x43F, seed=seeds.seed("attacker")))
    elif attack == "rpm":
        bus.attach(SpoofingAttacker(windows, target_id=0x316, seed=seeds.seed("attacker")))
    # The columnar engine is bit-exact against BusSimulator.run (see
    # repro.can.fastbus), so the recorded capture is identical — only
    # the per-frame simulation cost is gone.  The CaptureArray is kept
    # as-is; no record list is ever materialised on this path.
    return CarHackingCapture(
        capture=bus.capture(duration).capture,
        attack=attack,
        duration=duration,
        bitrate=bitrate,
        seed=seed,
        attack_windows=windows,
    )


def generate_mixed_capture(
    attacks: Sequence[str] = ("dos", "fuzzy"),
    duration: float = 20.0,
    seed: int = 0,
    bitrate: float = BITRATE_HS_CAN,
    attack_burst: float = 2.0,
    attack_gap: float = 2.0,
    initial_gap: float = 1.0,
    vehicle: Sequence[VehicleIdSpec] | None = None,
    vehicle_seed: int | None = None,
) -> CarHackingCapture:
    """Generate a capture with several attack types interleaved.

    Supports the paper's "comprehensive IDS integration" scenario:
    multiple detector IPs monitoring the same bus while different
    attacks occur at different times.  The attack types take turns —
    burst ``i`` belongs to ``attacks[i % len(attacks)]`` — so windows
    never overlap and every burst has a single ground-truth attacker.
    """
    for attack in attacks:
        if attack not in ATTACK_TYPES:
            raise DatasetError(f"unknown attack {attack!r}; expected one of {ATTACK_TYPES}")
    if not attacks:
        raise DatasetError("mixed capture needs at least one attack type")
    seeds = SeedSequence(seed, scope=f"carhacking-mixed-{'-'.join(attacks)}")
    # Same-vehicle convention as generate_capture (see comment there).
    bus = build_vehicle_bus(vehicle, seed if vehicle_seed is None else vehicle_seed, bitrate)
    all_windows = _attack_windows(duration, attack_burst, attack_gap, initial_gap)
    per_attack: dict[str, list[tuple[float, float]]] = {attack: [] for attack in attacks}
    for index, window in enumerate(all_windows):
        per_attack[attacks[index % len(attacks)]].append(window)
    for attack, windows in per_attack.items():
        if not windows:
            continue
        attacker_seed = seeds.seed(f"attacker-{attack}")
        if attack == "dos":
            bus.attach(DoSAttacker(windows, seed=attacker_seed))
        elif attack == "fuzzy":
            bus.attach(FuzzyAttacker(windows, seed=attacker_seed))
        elif attack == "gear":
            bus.attach(SpoofingAttacker(windows, target_id=0x43F, seed=attacker_seed))
        elif attack == "rpm":
            bus.attach(SpoofingAttacker(windows, target_id=0x316, seed=attacker_seed))
    return CarHackingCapture(
        capture=bus.capture(duration).capture,
        attack="+".join(attacks),
        duration=duration,
        bitrate=bitrate,
        seed=seed,
        attack_windows=all_windows,
    )
