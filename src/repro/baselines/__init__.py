"""Baseline IDS implementations and published comparison numbers.

Tables I and II of the paper compare the QMLP against five published
IDSs by quoting their reported numbers; :mod:`published` carries those
verbatim rows.  To make the comparison *regenerable*, this package also
ships reduced trainable implementations of each baseline family on the
same synthetic dataset:

* :mod:`~repro.baselines.dcnn` — DCNN (Song et al.): CNN over 29-frame
  CAN-ID bit grids (block-based detection).
* :mod:`~repro.baselines.recurrent` — GRU (Ma et al.) and MLIDS-style
  LSTM sequence classifiers.
* :mod:`~repro.baselines.tcan` — TCAN-IDS-style temporal convolution
  with attention pooling.
* :mod:`~repro.baselines.mth` — MTH-IDS-style tree ensemble (decision
  trees + bagged forest, implemented from scratch).

"Reduced" means: same input representation and model family at a scale
that trains in seconds on CPU — enough to regenerate the *ordering* of
Table I, not the third decimal of any published number.
"""

from repro.baselines.common import BaselineResult, evaluate_baseline
from repro.baselines.dcnn import DCNNBaseline
from repro.baselines.mth import DecisionTree, MTHBaseline, RandomForest
from repro.baselines.published import (
    PUBLISHED_ACCURACY,
    PUBLISHED_LATENCY,
    PublishedAccuracy,
    PublishedLatency,
)
from repro.baselines.recurrent import GRUBaseline, LSTMBaseline
from repro.baselines.tcan import TCANBaseline

__all__ = [
    "BaselineResult",
    "DCNNBaseline",
    "DecisionTree",
    "GRUBaseline",
    "LSTMBaseline",
    "MTHBaseline",
    "PUBLISHED_ACCURACY",
    "PUBLISHED_LATENCY",
    "PublishedAccuracy",
    "PublishedLatency",
    "RandomForest",
    "TCANBaseline",
    "evaluate_baseline",
]
