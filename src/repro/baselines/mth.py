"""Reduced MTH-IDS baseline (Yang, Moubayed & Shami 2021).

MTH-IDS is a multi-tiered *tree-based* hybrid: four supervised
tree learners (DT/RF/ET/XGBoost) stacked for known attacks, plus a
clustering stage for anomalies, deployed on a Raspberry Pi 3 at
0.574 ms per frame.  The reduction keeps the tree tier: a from-scratch
CART decision tree, a bagged random forest, and a soft-voting ensemble
of both — sufficient to regenerate the comparison row on the synthetic
captures.

The tree implementation is exact CART with Gini impurity and
vectorised split search (sort-based scan per feature), so it handles
tens of thousands of frames in seconds without any external ML
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.utils.rng import new_rng

__all__ = ["DecisionTree", "RandomForest", "MTHBaseline"]


@dataclass
class _TreeNode:
    """One CART node; leaves carry class probabilities."""

    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    probabilities: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.probabilities is not None


def _gini_best_split(
    features: np.ndarray, labels: np.ndarray, feature_indices: np.ndarray, min_leaf: int
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, impurity-decrease) over candidate features.

    Sort-based scan: for each feature, evaluate every distinct midpoint
    threshold with prefix-sum class counts — O(F * N log N).
    """
    n = labels.shape[0]
    total_pos = int(labels.sum())
    parent_gini = 1.0 - ((total_pos / n) ** 2 + ((n - total_pos) / n) ** 2)
    best: tuple[int, float, float] | None = None
    for feature in feature_indices:
        column = features[:, feature]
        order = np.argsort(column, kind="stable")
        sorted_vals = column[order]
        sorted_labels = labels[order]
        pos_prefix = np.cumsum(sorted_labels)
        counts_left = np.arange(1, n + 1)
        # Valid split after position i: left = [0..i], right = [i+1..].
        boundaries = np.flatnonzero(sorted_vals[:-1] < sorted_vals[1:])
        if boundaries.size == 0:
            continue
        left_n = counts_left[boundaries]
        right_n = n - left_n
        valid = (left_n >= min_leaf) & (right_n >= min_leaf)
        if not valid.any():
            continue
        boundaries = boundaries[valid]
        left_n = left_n[valid]
        right_n = n - left_n
        left_pos = pos_prefix[boundaries]
        right_pos = total_pos - left_pos
        gini_left = 1.0 - ((left_pos / left_n) ** 2 + ((left_n - left_pos) / left_n) ** 2)
        gini_right = 1.0 - ((right_pos / right_n) ** 2 + ((right_n - right_pos) / right_n) ** 2)
        weighted = (left_n * gini_left + right_n * gini_right) / n
        gains = parent_gini - weighted
        arg = int(np.argmax(gains))
        if gains[arg] <= 1e-12:
            continue
        boundary = boundaries[arg]
        threshold = 0.5 * (sorted_vals[boundary] + sorted_vals[boundary + 1])
        candidate = (int(feature), float(threshold), float(gains[arg]))
        if best is None or candidate[2] > best[2]:
            best = candidate
    return best


@dataclass
class DecisionTree:
    """CART binary classifier (Gini impurity)."""

    max_depth: int = 10
    min_samples_leaf: int = 2
    max_features: int | None = None  # per-split feature subsample (forests)
    seed: int = 0
    name: str = "DecisionTree"
    _root: _TreeNode | None = field(default=None, repr=False)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2 or features.shape[0] != labels.shape[0]:
            raise TrainingError("DecisionTree.fit expects (N, F) features and (N,) labels")
        rng = new_rng(self.seed, "tree-feature-subsample")
        self._root = self._grow(features, labels, depth=0, rng=rng)

    def _leaf(self, labels: np.ndarray) -> _TreeNode:
        pos = labels.mean() if labels.size else 0.0
        return _TreeNode(probabilities=np.array([1.0 - pos, pos]))

    def _grow(self, features: np.ndarray, labels: np.ndarray, depth: int, rng: np.random.Generator) -> _TreeNode:
        if (
            depth >= self.max_depth
            or labels.size < 2 * self.min_samples_leaf
            or labels.min() == labels.max()
        ):
            return self._leaf(labels)
        num_features = features.shape[1]
        if self.max_features is not None and self.max_features < num_features:
            feature_indices = rng.choice(num_features, size=self.max_features, replace=False)
        else:
            feature_indices = np.arange(num_features)
        split = _gini_best_split(features, labels, feature_indices, self.min_samples_leaf)
        if split is None:
            return self._leaf(labels)
        feature, threshold, _gain = split
        mask = features[:, feature] <= threshold
        node = _TreeNode(feature=feature, threshold=threshold)
        node.left = self._grow(features[mask], labels[mask], depth + 1, rng)
        node.right = self._grow(features[~mask], labels[~mask], depth + 1, rng)
        return node

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities, (N, 2)."""
        if self._root is None:
            raise TrainingError("predict before fit")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty((features.shape[0], 2), dtype=np.float64)
        # Iterative routing: batch indices walk the tree together.
        stack: list[tuple[_TreeNode, np.ndarray]] = [(self._root, np.arange(features.shape[0]))]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                out[indices] = node.probabilities
                continue
            mask = features[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def depth(self) -> int:
        """Actual tree depth after fitting."""

        def walk(node: _TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)


@dataclass
class RandomForest:
    """Bagged CART trees with per-split feature subsampling."""

    n_estimators: int = 7
    max_depth: int = 10
    min_samples_leaf: int = 2
    seed: int = 0
    name: str = "RandomForest"
    _trees: list[DecisionTree] = field(default_factory=list, repr=False)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        rng = new_rng(self.seed, "forest-bootstrap")
        max_features = max(int(np.sqrt(features.shape[1])), 1)
        self._trees = []
        for index in range(self.n_estimators):
            sample = rng.integers(0, features.shape[0], size=features.shape[0])
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed * 1009 + index,
            )
            tree.fit(features[sample], labels[sample])
            self._trees.append(tree)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise TrainingError("predict before fit")
        return np.mean([tree.predict_proba(features) for tree in self._trees], axis=0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)


@dataclass
class MTHBaseline:
    """Soft-voting ensemble of a CART tree and a bagged forest."""

    max_depth: int = 10
    n_estimators: int = 7
    seed: int = 0
    name: str = "MTH-IDS (reduced)"
    _tree: DecisionTree = field(default=None, repr=False)  # type: ignore[assignment]
    _forest: RandomForest = field(default=None, repr=False)  # type: ignore[assignment]

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        self._tree = DecisionTree(max_depth=self.max_depth, seed=self.seed)
        self._forest = RandomForest(
            n_estimators=self.n_estimators, max_depth=self.max_depth, seed=self.seed + 1
        )
        self._tree.fit(features, labels)
        self._forest.fit(features, labels)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._tree is None or self._forest is None:
            raise TrainingError("predict before fit")
        return 0.5 * self._tree.predict_proba(features) + 0.5 * self._forest.predict_proba(features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)
