"""Shared plumbing for trainable baselines.

Every baseline implements the tiny ``fit(X, y)`` / ``predict(X)``
protocol; :func:`evaluate_baseline` runs the standard capture → encode
→ split → train → test pipeline and returns a :class:`BaselineResult`
comparable with the QMLP numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.can.log import CANLogRecord, CaptureArray
from repro.datasets.splits import train_val_test_split
from repro.errors import DatasetError
from repro.training.metrics import ids_metrics

__all__ = ["BaselineClassifier", "BaselineResult", "evaluate_baseline", "id_grid_windows"]


class BaselineClassifier(Protocol):
    """Minimal classifier protocol shared by all baselines."""

    name: str

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None: ...

    def predict(self, features: np.ndarray) -> np.ndarray: ...


@dataclass
class BaselineResult:
    """Test-set outcome of one baseline run."""

    name: str
    attack: str
    metrics: dict[str, float]
    train_seconds: float
    num_samples: int
    notes: str = ""

    def summary(self) -> str:
        m = self.metrics
        return (
            f"{self.name} ({self.attack}): P {m['precision']:.2f} "
            f"R {m['recall']:.2f} F1 {m['f1']:.2f} FNR {m['fnr']:.2f} "
            f"[{self.train_seconds:.1f}s train]"
        )


def evaluate_baseline(
    classifier: BaselineClassifier,
    features: np.ndarray,
    labels: np.ndarray,
    attack: str,
    seed: int = 0,
    notes: str = "",
) -> BaselineResult:
    """Split, train and test a baseline on pre-encoded data."""
    splits = train_val_test_split(features, labels, seed=seed)
    started = time.perf_counter()
    classifier.fit(splits.x_train, splits.y_train)
    train_seconds = time.perf_counter() - started
    predictions = classifier.predict(splits.x_test)
    return BaselineResult(
        name=classifier.name,
        attack=attack,
        metrics=ids_metrics(splits.y_test, predictions),
        train_seconds=train_seconds,
        num_samples=len(labels),
        notes=notes,
    )


def id_grid_windows(
    records: CaptureArray | Sequence[CANLogRecord],
    window: int = 29,
    pad_to: tuple[int, int] = (32, 16),
    stride: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Build DCNN-style CAN-ID bit-grid windows.

    Song et al.'s DCNN consumes blocks of 29 consecutive identifiers as
    a binary image (one row per frame, columns = identifier bits); a
    window is labelled attack if it contains any injected frame
    (block-based detection).  Rows/columns are zero-padded to ``pad_to``
    so the pooling stack divides evenly.

    Returns ``(X, y)`` with ``X`` of shape (N, 1, pad_to[0], pad_to[1]).
    """
    capture = CaptureArray.coerce(records)
    if len(capture) < window:
        raise DatasetError(f"need at least {window} frames, got {len(capture)}")
    height, width = pad_to
    if height < window or width < 11:
        raise DatasetError(f"pad_to {pad_to} cannot hold a {window}x11 grid")
    # MSB-first identifier bits, columnar (bit-exact with int_to_bits).
    id_bits = ((capture.can_ids[:, None] >> np.arange(10, -1, -1)) & 1).astype(np.float64)
    flags = capture.labels.astype(np.int64)
    images = []
    labels = []
    for start in range(0, len(capture) - window + 1, stride):
        grid = np.zeros((height, width), dtype=np.float64)
        grid[:window, :11] = id_bits[start : start + window]
        images.append(grid)
        labels.append(int(flags[start : start + window].any()))
    return np.stack(images)[:, None, :, :], np.asarray(labels, dtype=np.int64)
