"""Reduced DCNN baseline (Song, Woo & Kim 2020).

The original is a reduced Inception-ResNet over 29-frame CAN-ID grids
on a Tesla K80; the reproduction keeps the input representation
(identifier-bit grids, block labels — see
:func:`repro.baselines.common.id_grid_windows`) with a compact
conv/pool stack that trains on CPU in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.rng import derive_seed

__all__ = ["DCNNBaseline", "build_dcnn"]


def build_dcnn(input_shape: tuple[int, int] = (32, 16), seed: int = 0) -> Sequential:
    """A compact CNN for (1, H, W) identifier-bit grids."""
    height, width = input_shape
    flat = 16 * (height // 4) * (width // 4)
    return Sequential(
        Conv2d(1, 8, 3, padding=1, seed=derive_seed(seed, "conv1")),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, padding=1, seed=derive_seed(seed, "conv2")),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(flat, 32, seed=derive_seed(seed, "fc1")),
        ReLU(),
        Linear(32, 2, seed=derive_seed(seed, "fc2")),
    )


class DCNNBaseline:
    """fit/predict wrapper around the compact DCNN."""

    def __init__(self, input_shape: tuple[int, int] = (32, 16), epochs: int = 5, seed: int = 0):
        self.name = "DCNN (reduced)"
        self.model = build_dcnn(input_shape, seed=seed)
        self.config = TrainConfig(
            epochs=epochs, batch_size=128, lr=2e-3, early_stopping_patience=2, seed=seed
        )

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """``features``: (N, 1, H, W) grids from :func:`id_grid_windows`."""
        Trainer(self.config).fit(self.model, features, labels)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return Trainer.predict(self.model, features, batch_size=1024)
