"""Reduced TCAN-IDS baseline (Cheng et al. 2022).

TCAN-IDS is a temporal convolutional network with attention over
64-frame blocks on a Jetson AGX.  The reduction keeps the structure —
causal 1-D convolutions over a frame sequence, attention pooling over
time, linear head — at CPU-trainable scale.  1-D convolutions are
expressed as (1 x k) 2-D convolutions over an (N, F, 1, T) layout.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.layers import Conv2d, Linear
from repro.autograd.module import Module
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.rng import derive_seed

__all__ = ["TCANBaseline", "TCANClassifier"]


class TCANClassifier(Module):
    """Temporal conv encoder + attention pooling + linear head."""

    def __init__(self, input_size: int, channels: int = 16, num_classes: int = 2, seed: int = 0):
        super().__init__()
        self.input_size = input_size
        self.channels = channels
        self.conv1 = Conv2d(input_size, channels, (1, 3), padding=(0, 1), seed=derive_seed(seed, "c1"))
        self.conv2 = Conv2d(channels, channels, (1, 3), padding=(0, 1), seed=derive_seed(seed, "c2"))
        self.attention = Linear(channels, 1, seed=derive_seed(seed, "attn"))
        self.head = Linear(channels, num_classes, seed=derive_seed(seed, "head"))

    def forward(self, sequences: Tensor) -> Tensor:
        if sequences.ndim != 3 or sequences.shape[2] != self.input_size:
            raise ShapeError(f"expected (N, T, {self.input_size}), got {sequences.shape}")
        batch, steps, _ = sequences.shape
        # (N, T, F) -> (N, F, 1, T) for the 1-D-as-2-D convolutions.
        x = sequences.transpose(0, 2, 1).reshape(batch, self.input_size, 1, steps)
        x = self.conv1(x).relu()
        x = self.conv2(x).relu()  # (N, C, 1, T)
        feats = x.reshape(batch, self.channels, steps).transpose(0, 2, 1)  # (N, T, C)
        # Attention pooling: softmax over time of a learned score.
        scores = self.attention(feats.reshape(batch * steps, self.channels))
        weights = F.softmax(scores.reshape(batch, steps), axis=1)
        pooled = (feats * weights.reshape(batch, steps, 1)).sum(axis=1)  # (N, C)
        return self.head(pooled)


class TCANBaseline:
    """fit/predict wrapper over the reduced TCAN classifier."""

    def __init__(self, input_size: int, channels: int = 16, epochs: int = 6, seed: int = 0):
        self.name = "TCAN-IDS (reduced)"
        self.model = TCANClassifier(input_size, channels, seed=derive_seed(seed, "tcan"))
        self.config = TrainConfig(
            epochs=epochs, batch_size=256, lr=2e-3, clip_norm=5.0,
            early_stopping_patience=3, seed=seed,
        )

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """``features``: (N, T, F) sequences."""
        Trainer(self.config).fit(self.model, features, labels)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return Trainer.predict(self.model, features)
