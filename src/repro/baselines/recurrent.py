"""Recurrent baselines: GRU (Ma et al. 2022) and MLIDS-style LSTM.

Both consume short sequences of per-frame features (the
:class:`~repro.datasets.features.WindowFeatureEncoder` sequence form)
and classify the newest frame.  Cells are built from autograd
primitives — gates are explicit, as in the textbook equations — so the
reproduction carries no recurrent black boxes.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.layers import Linear
from repro.autograd.module import Module
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.rng import derive_seed

__all__ = ["GRUCell", "LSTMCell", "GRUBaseline", "LSTMBaseline"]


class GRUCell(Module):
    """Standard GRU: update/reset gates plus candidate state."""

    def __init__(self, input_size: int, hidden_size: int, seed: int = 0):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        mk = lambda tag, fan_in: Linear(fan_in, hidden_size, seed=derive_seed(seed, tag))
        self.w_z, self.u_z = mk("wz", input_size), mk("uz", hidden_size)
        self.w_r, self.u_r = mk("wr", input_size), mk("ur", hidden_size)
        self.w_h, self.u_h = mk("wh", input_size), mk("uh", hidden_size)

    def forward(self, x_t: Tensor, h: Tensor) -> Tensor:
        z = (self.w_z(x_t) + self.u_z(h)).sigmoid()
        r = (self.w_r(x_t) + self.u_r(h)).sigmoid()
        candidate = (self.w_h(x_t) + self.u_h(h * r)).tanh()
        one_minus_z = (z * -1.0) + 1.0
        return z * h + one_minus_z * candidate


class LSTMCell(Module):
    """Standard LSTM with input/forget/output gates."""

    def __init__(self, input_size: int, hidden_size: int, seed: int = 0):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        mk = lambda tag, fan_in: Linear(fan_in, hidden_size, seed=derive_seed(seed, tag))
        self.w_i, self.u_i = mk("wi", input_size), mk("ui", hidden_size)
        self.w_f, self.u_f = mk("wf", input_size), mk("uf", hidden_size)
        self.w_o, self.u_o = mk("wo", input_size), mk("uo", hidden_size)
        self.w_c, self.u_c = mk("wc", input_size), mk("uc", hidden_size)

    def forward(self, x_t: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        i = (self.w_i(x_t) + self.u_i(h)).sigmoid()
        f = (self.w_f(x_t) + self.u_f(h)).sigmoid()
        o = (self.w_o(x_t) + self.u_o(h)).sigmoid()
        g = (self.w_c(x_t) + self.u_c(h)).tanh()
        c_next = f * c + i * g
        return o * c_next.tanh(), c_next


class _RecurrentClassifier(Module):
    """Shared: unroll a cell over (N, T, F) and classify the final state."""

    def __init__(self, input_size: int, hidden_size: int, num_classes: int, seed: int):
        super().__init__()
        self.hidden_size = hidden_size
        self.head = Linear(hidden_size, num_classes, seed=derive_seed(seed, "head"))

    def _unroll(self, sequences: Tensor) -> Tensor:
        raise NotImplementedError

    def forward(self, sequences: Tensor) -> Tensor:
        if sequences.ndim != 3:
            raise ShapeError(f"expected (N, T, F) sequences, got {sequences.shape}")
        return self.head(self._unroll(sequences))


class GRUClassifier(_RecurrentClassifier):
    """GRU encoder + linear head."""

    def __init__(self, input_size: int, hidden_size: int = 32, num_classes: int = 2, seed: int = 0):
        super().__init__(input_size, hidden_size, num_classes, seed)
        self.cell = GRUCell(input_size, hidden_size, seed=derive_seed(seed, "cell"))

    def _unroll(self, sequences: Tensor) -> Tensor:
        batch, steps, _ = sequences.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(steps):
            h = self.cell(Tensor(sequences.data[:, t, :]), h)
        return h


class LSTMClassifier(_RecurrentClassifier):
    """LSTM encoder + linear head (MLIDS consumes raw frame sequences)."""

    def __init__(self, input_size: int, hidden_size: int = 32, num_classes: int = 2, seed: int = 0):
        super().__init__(input_size, hidden_size, num_classes, seed)
        self.cell = LSTMCell(input_size, hidden_size, seed=derive_seed(seed, "cell"))

    def _unroll(self, sequences: Tensor) -> Tensor:
        batch, steps, _ = sequences.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(steps):
            h, c = self.cell(Tensor(sequences.data[:, t, :]), h, c)
        return h


class _RecurrentBaseline:
    """fit/predict adapter over the shared Trainer."""

    def __init__(self, model: _RecurrentClassifier, name: str, epochs: int, seed: int):
        self.model = model
        self.name = name
        self.config = TrainConfig(
            epochs=epochs, batch_size=256, lr=3e-3, clip_norm=5.0,
            early_stopping_patience=3, seed=seed,
        )

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """``features`` are (N, T, F) sequences."""
        Trainer(self.config).fit(self.model, features, labels)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return Trainer.predict(self.model, features)

    def predict_logits(self, features: np.ndarray) -> np.ndarray:
        return Trainer.predict_logits(self.model, features)


class GRUBaseline(_RecurrentBaseline):
    """Reduced GRU IDS (Ma et al.)."""

    def __init__(self, input_size: int, hidden_size: int = 32, epochs: int = 6, seed: int = 0):
        super().__init__(
            GRUClassifier(input_size, hidden_size, seed=derive_seed(seed, "gru")),
            name="GRU (reduced)",
            epochs=epochs,
            seed=seed,
        )


class LSTMBaseline(_RecurrentBaseline):
    """Reduced MLIDS-style LSTM."""

    def __init__(self, input_size: int, hidden_size: int = 32, epochs: int = 6, seed: int = 0):
        super().__init__(
            LSTMClassifier(input_size, hidden_size, seed=derive_seed(seed, "lstm")),
            name="MLIDS-LSTM (reduced)",
            epochs=epochs,
            seed=seed,
        )
