"""Literature-reported numbers quoted in the paper's comparison tables.

These are the rows of Table I (accuracy metrics) and Table II
(per-message latency) exactly as printed in the paper; the experiment
harnesses render them next to our measured QMLP rows, reproducing the
tables' structure.  ``None`` marks metrics the original papers did not
report (printed as "-" in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PublishedAccuracy", "PublishedLatency", "PUBLISHED_ACCURACY", "PUBLISHED_LATENCY"]


@dataclass(frozen=True)
class PublishedAccuracy:
    """One row of Table I (percentages)."""

    attack: str  # "dos" | "fuzzy"
    model: str
    precision: float
    recall: float
    f1: float
    fnr: float | None
    reference: str


@dataclass(frozen=True)
class PublishedLatency:
    """One row of Table II."""

    model: str
    latency_ms: float
    frames: str  # the block size the latency covers
    platform: str
    reference: str

    @property
    def per_frame_ms(self) -> float:
        """Latency normalised per CAN frame (for block-based systems)."""
        block = self.frames.split()[0]
        count = int(block) if block.isdigit() else 1
        return self.latency_ms / count


#: Table I rows (excluding our model, which is measured, not quoted).
PUBLISHED_ACCURACY: list[PublishedAccuracy] = [
    # --- DoS ---
    PublishedAccuracy("dos", "DCNN", 100.0, 99.89, 99.95, 0.13, "Song et al. 2020 [4]"),
    PublishedAccuracy("dos", "MLIDS", 99.9, 100.0, 99.9, None, "Desta et al. 2020 [3]"),
    PublishedAccuracy("dos", "NovelADS", 99.97, 99.91, 99.94, None, "Agrawal et al. 2022 [10]"),
    PublishedAccuracy("dos", "TCAN-IDS", 100.0, 99.97, 99.98, None, "Cheng et al. 2022 [11]"),
    PublishedAccuracy("dos", "GRU", 99.93, 99.91, 99.92, None, "Ma et al. 2022 [2]"),
    # --- Fuzzy ---
    PublishedAccuracy("fuzzy", "DCNN", 99.95, 99.65, 99.80, 0.5, "Song et al. 2020 [4]"),
    PublishedAccuracy("fuzzy", "MLIDS", 99.9, 99.9, 99.9, None, "Desta et al. 2020 [3]"),
    PublishedAccuracy("fuzzy", "NovelADS", 99.99, 100.0, 100.0, None, "Agrawal et al. 2022 [10]"),
    PublishedAccuracy("fuzzy", "TCAN-IDS", 99.96, 99.89, 99.22, None, "Cheng et al. 2022 [11]"),
    PublishedAccuracy("fuzzy", "GRU", 99.32, 99.13, 99.22, None, "Ma et al. 2022 [2]"),
]

#: The paper's own Table I numbers for the 4-bit QMLP (reproduction targets).
PAPER_QMLP_ACCURACY: dict[str, PublishedAccuracy] = {
    "dos": PublishedAccuracy("dos", "4-bit-QMLP (paper)", 99.99, 99.99, 99.99, 0.01, "this paper"),
    "fuzzy": PublishedAccuracy("fuzzy", "4-bit-QMLP (paper)", 99.68, 99.93, 99.80, 0.07, "this paper"),
}

#: Table II rows (excluding our measured row).
PUBLISHED_LATENCY: list[PublishedLatency] = [
    PublishedLatency("GRU", 890.0, "5000 CAN frames", "Jetson Xavier NX", "Ma et al. 2022 [2]"),
    PublishedLatency("MLIDS", 275.0, "per CAN frame", "GTX Titan X", "Desta et al. 2020 [3]"),
    PublishedLatency("NovelADS", 128.7, "100 CAN frames", "Jetson Nano", "Agrawal et al. 2022 [10]"),
    PublishedLatency("DCNN", 5.0, "29 CAN frames", "Tesla K80", "Song et al. 2020 [4]"),
    PublishedLatency("TCAN-IDS", 3.4, "64 CAN frames", "Jetson AGX", "Cheng et al. 2022 [11]"),
    PublishedLatency("MTH-IDS", 0.574, "per CAN frame", "Raspberry Pi 3", "Yang et al. 2021 [9]"),
]

#: The paper's own Table II row (reproduction target).
PAPER_QMLP_LATENCY = PublishedLatency(
    "4-bit-QMLP (paper)", 0.12, "per CAN frame", "Zynq Ultrascale+", "this paper"
)
