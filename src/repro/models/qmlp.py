"""The paper's quantised MLP intrusion detector.

Architecture (Sec. I of the paper): a custom multi-layer perceptron,
quantisation-aware trained with Brevitas, one binary classifier per
attack type.  The paper does not print the exact layer widths; the
reproduction uses ``79 -> 64 -> 64 -> 32 -> 2`` — the whole-frame bit
encoding on the input and three hidden layers, sized to land in the
paper's reported envelope (a few-thousand-LUT accelerator using <4 % of
the XCZU7EV, ~11 k parameters).  Width and depth are configurable for
the design-space exploration.

All weights and activations share one uniform bit width knob each
("4-bit uniform quantisation achieved best performance ... chosen for
deployment"); the input quantiser is 8-bit by default but is exact on
the binary frame encoding regardless.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autograd.layers import Dropout, Sequential
from repro.errors import ConfigError
from repro.quant.layers import QuantIdentity, QuantLinear, QuantReLU
from repro.utils.rng import derive_seed

__all__ = ["QMLPConfig", "build_qmlp"]


@dataclass(frozen=True)
class QMLPConfig:
    """Hyper-parameters of a quantised MLP IDS model."""

    input_features: int = 79
    hidden: tuple[int, ...] = (64, 64, 32)
    num_classes: int = 2
    weight_bits: int = 4
    act_bits: int = 4
    input_bits: int = 8
    dropout: float = 0.0
    scale_mode: str = "po2"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.input_features < 1 or self.num_classes < 2:
            raise ConfigError(
                f"invalid dimensions: {self.input_features} inputs, "
                f"{self.num_classes} classes"
            )
        if not self.hidden:
            raise ConfigError("QMLP needs at least one hidden layer")
        for bits in (self.weight_bits, self.act_bits, self.input_bits):
            if not 1 <= bits <= 16:
                raise ConfigError(f"bit widths must be in [1, 16], got {bits}")

    @property
    def topology(self) -> list[int]:
        """Layer widths including input and output."""
        return [self.input_features, *self.hidden, self.num_classes]

    @property
    def num_weights(self) -> int:
        """Total weight count (excludes biases)."""
        widths = self.topology
        return sum(a * b for a, b in zip(widths[:-1], widths[1:]))

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``W4A4 79-64-64-32-2``."""
        dims = "-".join(str(w) for w in self.topology)
        return f"W{self.weight_bits}A{self.act_bits} {dims}"


def build_qmlp(config: QMLPConfig | None = None) -> Sequential:
    """Build the quantised MLP described by ``config``.

    The returned :class:`~repro.autograd.layers.Sequential` follows the
    canonical FINN-able topology (``QuantIdentity`` then
    ``QuantLinear``/``QuantReLU`` pairs, final ``QuantLinear`` head), so
    it can be handed to :func:`repro.quant.export.export_qnn` and the
    FINN compiler directly after training.
    """
    config = config or QMLPConfig()
    layers = [QuantIdentity(bit_width=config.input_bits, signed=False, scale_mode=config.scale_mode)]
    widths = config.topology
    for index, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
        layer_seed = derive_seed(config.seed, f"qmlp-layer-{index}")
        layers.append(
            QuantLinear(
                fan_in,
                fan_out,
                weight_bit_width=config.weight_bits,
                scale_mode=config.scale_mode,
                seed=layer_seed,
            )
        )
        is_last = index == len(widths) - 2
        if not is_last:
            layers.append(QuantReLU(bit_width=config.act_bits, scale_mode=config.scale_mode))
            if config.dropout > 0.0:
                layers.append(Dropout(config.dropout, seed=derive_seed(config.seed, f"dropout-{index}")))
    return Sequential(*layers)
