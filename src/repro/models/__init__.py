"""IDS model definitions.

:func:`~repro.models.qmlp.build_qmlp` constructs the paper's quantised
multi-layer perceptron at any uniform bit width (4-bit is the deployed
configuration); :mod:`~repro.models.reference` provides the
full-precision twin used for accuracy ablations and the GPU energy
reference; :mod:`~repro.models.zoo` names the exact configurations the
experiments use.
"""

from repro.models.qmlp import QMLPConfig, build_qmlp
from repro.models.reference import build_float_mlp
from repro.models.zoo import ZOO, get_config

__all__ = ["QMLPConfig", "ZOO", "build_float_mlp", "build_qmlp", "get_config"]
