"""Named model configurations used across experiments.

Central registry so every experiment, benchmark and example trains the
same architectures: the deployed 4-bit DoS/Fuzzy detectors, the
bit-width sweep used in the DSE, and the 8-bit variant whose GPU
execution provides the paper's energy reference point.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.models.qmlp import QMLPConfig

__all__ = ["ZOO", "get_config", "DSE_BIT_WIDTHS"]

#: Bit widths explored in the paper's design-space exploration.
DSE_BIT_WIDTHS = (2, 3, 4, 6, 8)


def _qmlp(bits: int, seed: int) -> QMLPConfig:
    return QMLPConfig(weight_bits=bits, act_bits=bits, seed=seed)


ZOO: dict[str, QMLPConfig] = {
    # Deployed configurations (paper Sec. I: 4-bit chosen for deployment).
    "dos-4bit": _qmlp(4, seed=101),
    "fuzzy-4bit": _qmlp(4, seed=202),
    # GPU energy reference ("our 8-bit quantised MLP model on an A6000").
    "gpu-reference-8bit": _qmlp(8, seed=303),
}

# Bit-width sweep entries for both attacks: dse-dos-2bit ... dse-fuzzy-8bit.
for _bits in DSE_BIT_WIDTHS:
    ZOO[f"dse-dos-{_bits}bit"] = _qmlp(_bits, seed=101)
    ZOO[f"dse-fuzzy-{_bits}bit"] = _qmlp(_bits, seed=202)


def get_config(name: str) -> QMLPConfig:
    """Look up a named configuration.

    >>> get_config("dos-4bit").weight_bits
    4
    """
    if name not in ZOO:
        known = ", ".join(sorted(ZOO))
        raise ConfigError(f"unknown model config {name!r}; known: {known}")
    return ZOO[name]
