"""Full-precision reference MLP.

The float twin of the quantised model: identical topology, standard
``Linear``/``ReLU`` layers.  Used (a) as the accuracy upper bound in the
bit-width DSE and (b) as the software model whose GPU execution the
paper quotes for the 9.12 J-per-inference energy comparison.
"""

from __future__ import annotations

from repro.autograd.layers import Dropout, Linear, ReLU, Sequential
from repro.models.qmlp import QMLPConfig
from repro.utils.rng import derive_seed

__all__ = ["build_float_mlp"]


def build_float_mlp(config: QMLPConfig | None = None) -> Sequential:
    """Build the unquantised topology twin of :func:`build_qmlp`."""
    config = config or QMLPConfig()
    layers: list = []
    widths = config.topology
    for index, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
        layer_seed = derive_seed(config.seed, f"qmlp-layer-{index}")
        layers.append(Linear(fan_in, fan_out, seed=layer_seed))
        if index != len(widths) - 2:
            layers.append(ReLU())
            if config.dropout > 0.0:
                layers.append(Dropout(config.dropout, seed=derive_seed(config.seed, f"dropout-{index}")))
    return Sequential(*layers)
