"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError`, so callers can catch a
single exception type at API boundaries.  Subsystems raise the most
specific subclass that applies; error messages always name the offending
value so failures in long experiment sweeps are self-diagnosing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied by the caller."""


class ShapeError(ReproError):
    """Tensor/array shapes are inconsistent for the requested operation."""


class GradError(ReproError):
    """Autograd misuse, e.g. backward through a non-scalar without seed."""


class QuantError(ReproError):
    """Invalid quantiser configuration or out-of-range integer data."""


class CANError(ReproError):
    """Malformed CAN frame or invalid bus configuration."""


class DatasetError(ReproError):
    """Dataset generation, parsing or splitting failed."""


class CompileError(ReproError):
    """FINN-style compilation could not transform or fold the graph."""


class VerificationError(ReproError):
    """Bit-exactness check between model and hardware IR failed."""


class ResourceError(ReproError):
    """A design does not fit the target device or folding constraints."""


class SoCError(ReproError):
    """SoC/driver simulation misuse (bad register, unmapped address...)."""


class TrainingError(ReproError):
    """Training diverged or was configured inconsistently."""
