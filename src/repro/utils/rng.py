"""Deterministic random-number management.

Every stochastic component in the library (dataset generators, weight
initialisers, attack injectors, power-rail noise) receives an explicit
seed.  This module centralises how seeds are derived so that experiment
scripts can fix a single master seed and still give statistically
independent streams to each component.

The scheme follows numpy's ``SeedSequence`` philosophy: a *name* is
hashed together with the master seed, so adding a new consumer never
perturbs the streams of existing ones (unlike ``seed + counter``
schemes).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigError

__all__ = ["derive_seed", "new_rng", "SeedSequence"]

_MAX_SEED = 2**63 - 1


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a component ``name``.

    The derivation is a SHA-256 hash of both inputs, truncated to 63
    bits, so child streams are independent and reproducible across
    platforms and Python versions (``hash()`` is salted, so it is not
    used here).

    >>> derive_seed(42, "dataset") == derive_seed(42, "dataset")
    True
    >>> derive_seed(42, "dataset") != derive_seed(42, "weights")
    True
    """
    if not isinstance(master_seed, (int, np.integer)):
        raise ConfigError(f"master_seed must be an int, got {master_seed!r}")
    digest = hashlib.sha256(f"{int(master_seed)}::{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & _MAX_SEED


def new_rng(seed: int, name: str | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for a component.

    Parameters
    ----------
    seed:
        Master seed shared by the experiment.
    name:
        Optional component name; when given, the stream is derived with
        :func:`derive_seed` so it is independent of other components.
    """
    if name is not None:
        seed = derive_seed(seed, name)
    return np.random.default_rng(seed)


class SeedSequence:
    """A named hierarchy of seeds rooted at one master seed.

    Example
    -------
    >>> seeds = SeedSequence(7)
    >>> rng_a = seeds.rng("dataset")
    >>> rng_b = seeds.rng("weights")
    >>> child = seeds.child("dos-experiment")
    >>> rng_c = child.rng("dataset")   # independent of rng_a
    """

    def __init__(self, master_seed: int, scope: str = "") -> None:
        self.master_seed = int(master_seed)
        self.scope = scope

    def _qualify(self, name: str) -> str:
        return f"{self.scope}/{name}" if self.scope else name

    def seed(self, name: str) -> int:
        """Return the derived integer seed for ``name``."""
        return derive_seed(self.master_seed, self._qualify(name))

    def rng(self, name: str) -> np.random.Generator:
        """Return a generator seeded for ``name`` within this scope."""
        return np.random.default_rng(self.seed(name))

    def child(self, name: str) -> "SeedSequence":
        """Return a sub-scope, e.g. per-experiment or per-trial."""
        return SeedSequence(self.master_seed, self._qualify(name))

    def indexed(self, name: str, index: int) -> "SeedSequence":
        """Return the ``index``-th sub-scope of a named family.

        The fleet primitive: ``seeds.indexed("vehicle", i)`` gives every
        member of an arbitrarily large population its own independent
        scope, derivable from the index alone — no state accumulates, so
        any shard can re-derive any member's streams without having seen
        the members before it.
        """
        if index < 0:
            raise ConfigError(f"scope index must be >= 0, got {index}")
        return self.child(f"{name}[{index}]")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequence(master_seed={self.master_seed}, scope={self.scope!r})"
