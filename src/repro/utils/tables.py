"""Plain-text table rendering for experiment harnesses.

The paper's evaluation is two comparison tables plus a handful of
in-text measurements; every experiment harness in
:mod:`repro.experiments` renders its output through :class:`Table` so
benchmark logs read like the paper.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_si", "format_percent"]

_SI_PREFIXES = [
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix: ``format_si(0.00012, 's')`` → ``'120 us'``.

    >>> format_si(0.00012, "s")
    '120 us'
    >>> format_si(2.09, "W")
    '2.09 W'
    """
    if value == 0:
        return f"0 {unit}".strip()
    if not math.isfinite(value):
        return f"{value} {unit}".strip()
    magnitude = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if magnitude >= factor:
            scaled = value / factor
            text = f"{scaled:.{digits}g}"
            return f"{text} {prefix}{unit}".strip()
    factor, prefix = _SI_PREFIXES[-1]
    return f"{value / factor:.{digits}g} {prefix}{unit}".strip()


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string: ``0.9999`` → ``'99.99'``."""
    return f"{100.0 * value:.{digits}f}"


class Table:
    """A minimal monospace/markdown table builder.

    >>> t = Table(["Model", "F1"], title="Demo")
    >>> t.add_row(["QMLP", 99.99])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Demo
    ...
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        """Append a row; values are rendered with ``str`` (floats get 4 sig figs)."""
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        if len(rendered) != len(self.columns):
            raise ValueError(
                f"row has {len(rendered)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(rendered)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render as an aligned monospace table."""
        widths = self._widths()
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines.append(header)
        lines.append(rule)
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_dicts(self) -> list[dict[str, str]]:
        """Return rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __str__(self) -> str:
        return self.render()
