"""Bit-level helpers shared by the CAN codec and the feature encoders.

Conventions
-----------
* Bit vectors are numpy ``uint8`` arrays of 0/1 values, **most
  significant bit first** (network order), matching how CAN serialises
  identifiers and payload bytes on the wire.
* ``int_to_bits``/``bits_to_int`` are exact inverses for any width.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "bytes_to_bits",
    "bits_to_bytes",
    "popcount",
    "count_stuff_bits",
    "stuff_bits",
    "destuff_bits",
]


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Encode ``value`` as ``width`` bits, MSB first.

    >>> int_to_bits(5, 4).tolist()
    [0, 1, 0, 1]
    """
    if width <= 0:
        raise ConfigError(f"width must be positive, got {width}")
    value = int(value)
    if value < 0 or value >= (1 << width):
        raise ConfigError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: Sequence[int] | np.ndarray) -> int:
    """Decode an MSB-first bit sequence back to an integer.

    >>> bits_to_int([0, 1, 0, 1])
    5
    """
    result = 0
    for bit in np.asarray(bits, dtype=np.uint8).tolist():
        if bit not in (0, 1):
            raise ConfigError(f"bit values must be 0/1, got {bit}")
        result = (result << 1) | bit
    return result


def bytes_to_bits(data: Iterable[int]) -> np.ndarray:
    """Expand a byte sequence into a bit vector, MSB first per byte.

    >>> bytes_to_bits([0x80, 0x01])[:8].tolist()
    [1, 0, 0, 0, 0, 0, 0, 0]
    """
    data = np.asarray(list(data), dtype=np.int64)
    if data.size and (data.min() < 0 or data.max() > 0xFF):
        raise ConfigError("byte values must be in [0, 255]")
    if data.size == 0:
        return np.zeros(0, dtype=np.uint8)
    shifts = np.arange(7, -1, -1, dtype=np.int64)
    return ((data[:, None] >> shifts) & 1).astype(np.uint8).reshape(-1)


def bits_to_bytes(bits: Sequence[int] | np.ndarray) -> bytes:
    """Pack an MSB-first bit vector (length divisible by 8) into bytes."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ConfigError(f"bit vector length {bits.size} is not a multiple of 8")
    shifts = np.arange(7, -1, -1, dtype=np.int64)
    grouped = bits.reshape(-1, 8)
    return bytes(int(v) for v in (grouped << shifts).sum(axis=1))


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ConfigError("popcount requires a non-negative integer")
    return bin(value).count("1")


def stuff_bits(bits: Sequence[int] | np.ndarray) -> np.ndarray:
    """Apply CAN bit stuffing: after 5 identical bits, insert the opposite.

    CAN transmitters insert a complementary *stuff bit* whenever five
    consecutive bits of the same polarity have been sent, so receivers
    can stay synchronised.  Stuff bits themselves count towards the next
    run, which is why ``destuff_bits`` can invert this exactly.

    >>> stuff_bits([0, 0, 0, 0, 0, 0]).tolist()
    [0, 0, 0, 0, 0, 1, 0]
    """
    out: list[int] = []
    run_value = -1
    run_length = 0
    for bit in np.asarray(bits, dtype=np.uint8).tolist():
        out.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            stuffed = 1 - run_value
            out.append(stuffed)
            run_value = stuffed
            run_length = 1
    return np.array(out, dtype=np.uint8)


def destuff_bits(bits: Sequence[int] | np.ndarray) -> np.ndarray:
    """Remove CAN stuff bits inserted by :func:`stuff_bits`."""
    out: list[int] = []
    run_value = -1
    run_length = 0
    skip_next = False
    for bit in np.asarray(bits, dtype=np.uint8).tolist():
        if skip_next:
            skip_next = False
            run_value = bit
            run_length = 1
            continue
        out.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            skip_next = True
    return np.array(out, dtype=np.uint8)


def count_stuff_bits(bits: Sequence[int] | np.ndarray) -> int:
    """Number of stuff bits CAN would insert into ``bits``."""
    return int(stuff_bits(bits).size - np.asarray(bits).size)
