"""Shared utilities: seeded RNG, bit manipulation, tables, serialisation.

These helpers are dependency-free (numpy only) and used across every
subsystem.  Nothing in here is specific to CAN or FPGAs.
"""

from repro.utils.bitops import (
    bits_to_int,
    bytes_to_bits,
    count_stuff_bits,
    int_to_bits,
    popcount,
)
from repro.utils.logutil import get_logger
from repro.utils.rng import SeedSequence, derive_seed, new_rng
from repro.utils.serialization import from_json_file, to_json_file
from repro.utils.tables import Table, format_si

__all__ = [
    "SeedSequence",
    "Table",
    "bits_to_int",
    "bytes_to_bits",
    "count_stuff_bits",
    "derive_seed",
    "format_si",
    "from_json_file",
    "get_logger",
    "int_to_bits",
    "new_rng",
    "popcount",
    "to_json_file",
]
