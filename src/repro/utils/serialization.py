"""JSON (de)serialisation helpers with numpy support.

Models, dataset captures and experiment results are persisted as JSON so
artifacts diff cleanly in version control.  numpy scalars/arrays are
converted to plain Python structures on the way out; the loaders return
plain dicts (callers reconstruct arrays where needed).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "to_json_file", "from_json_file"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert numpy containers/scalars into JSON-safe values."""
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, Path):
        return str(obj)
    return obj


def to_json_file(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialise ``obj`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def from_json_file(path: str | Path) -> Any:
    """Load a JSON file written by :func:`to_json_file`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
