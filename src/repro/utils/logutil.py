"""Library logging setup.

Experiment harnesses log progress (epochs, sweep points, table rows) via
standard :mod:`logging`; the library never prints directly except in the
``render``/report functions that exist to produce human output.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a namespaced logger configured once per process.

    All loggers live under the ``repro`` namespace so applications can
    silence or redirect the whole library with one handler.
    """
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.setLevel(level)
    qualified = name if name.startswith("repro") else f"repro.{name}"
    return logging.getLogger(qualified)
