"""A keyed cache whose entries die with their anchor object.

Two hot-path caches (the compiled-engine cache in
:mod:`repro.finn.compiled` and the AXI reference-trace cache in
:mod:`repro.soc.accelerator`) memoise derived artefacts of long-lived
objects that are not hashable (mutable dataclasses), so they key on
``id()`` — which the interpreter recycles.  This helper centralises the
idiom that makes that safe: each entry holds a weak reference to its
*anchor* object, lookups verify the anchor is still the same object
(identity, not equality), and a weakref callback evicts the entry the
moment the anchor is collected, so a recycled id can never serve a
stale value.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Hashable

__all__ = ["KeyedWeakCache"]


class KeyedWeakCache:
    """Thread-safe ``key -> value`` cache anchored on object lifetime."""

    def __init__(self) -> None:
        self._entries: dict[Hashable, tuple[weakref.ref, Any]] = {}
        self._lock = threading.Lock()

    def get(self, key: Hashable, anchor: Any) -> Any | None:
        """The cached value, or None when absent or anchored elsewhere."""
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is anchor:
            return entry[1]
        return None

    def put(self, key: Hashable, anchor: Any, value: Any) -> None:
        """Store ``value`` until ``anchor`` is garbage-collected."""
        with self._lock:
            # The eviction callback must not take the lock: it can fire
            # from a garbage-collection pass inside the locked region.
            # A bare dict.pop is atomic under the GIL.
            self._entries[key] = (
                weakref.ref(anchor, lambda _ref, _key=key: self._entries.pop(_key, None)),
                value,
            )

    def __len__(self) -> int:
        return len(self._entries)
