"""Deterministic fault injection for the sharded runners.

The fault-tolerance layer (:mod:`repro.fleet.pool`) claims to survive
worker exceptions, hard process crashes and hangs.  Claims about
failure paths rot fastest, so this module makes every one of them a
*scheduled, reproducible event*: a :class:`ChaosPlan` derives, from a
seed alone, exactly which shard attempts fail and how — the same plan
on the same task list injects the same faults on every machine, every
run.  Tests (and operators staging a disaster drill) dial a failure
rate instead of hand-picking shard ids.

Fault kinds:

* ``"raise"`` — the worker raises :class:`ChaosError`: the ordinary
  retryable-failure path.
* ``"crash"`` — the worker process dies with ``os._exit`` (no cleanup,
  no exception): the :class:`BrokenProcessPool` rebuild path.  Only
  meaningful on the process backend; in-process execution downgrades a
  crash draw to ``"raise"`` (an ``os._exit`` there would take the test
  process down with it — exactly what the fault layer exists to
  prevent).
* ``"delay"`` — the worker sleeps ``delay_s`` before proceeding: the
  per-shard timeout path (with ``timeout_s`` set below the delay) or a
  plain slow-worker simulation (without).

Determinism: every draw comes from
``new_rng(seed, "chaos/shard[<index>]")`` — a function of the plan
seed and the shard index only, never of execution order, worker
identity or wall clock — so a chaos run's *results* stay bit-identical
to the fault-free run whenever every shard eventually completes.

**Two fault layers, two modules.**  This module injects *scheduler*
faults — the execution machinery (workers, processes, deadlines)
misbehaves, the simulated world does not.  :mod:`repro.can.faults`
injects *wire* faults — the simulated CAN physical layer misbehaves
(bit errors, error frames, retransmission, bus-off), the execution
machinery does not.  They compose freely: a fleet run may put every
vehicle on a noisy harness (``FleetSpec(wire_faults=...)``) while a
:class:`ChaosPlan` kills its shards, and because wire faults derive
from the vehicle's seed scope (never from which worker or attempt
simulated it), the resumed aggregate stays bit-identical to an
uninterrupted noisy run whenever every shard eventually completes.
``examples/fleet.py`` stages exactly this composed drill.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import ConfigError, ReproError
from repro.utils.rng import new_rng

__all__ = ["CHAOS_KINDS", "ChaosError", "ChaosPlan"]

#: Injectable fault kinds, in the order plans draw them.
CHAOS_KINDS = ("raise", "crash", "delay")


class ChaosError(ReproError):
    """The fault a ``"raise"`` injection throws inside the worker."""


@dataclass(frozen=True)
class ChaosPlan:
    """A seed-derived schedule of worker faults.

    ``rate`` is the probability a shard draws any fault at all;
    a faulted shard's first ``attempts_affected`` attempts each inject
    the same drawn ``kind`` (one of ``kinds``), so
    ``attempts_affected <= max_retries`` exercises retry-then-succeed
    while ``attempts_affected > max_retries`` forces retry exhaustion.
    Plans are frozen dataclasses of primitives: they pickle once into
    the worker state and cross process pools unchanged.
    """

    seed: int
    rate: float = 0.1
    attempts_affected: int = 1
    kinds: tuple[str, ...] = ("raise",)
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"chaos rate must be in [0, 1], got {self.rate}")
        if self.attempts_affected < 1:
            raise ConfigError(
                f"attempts_affected must be >= 1, got {self.attempts_affected}"
            )
        if not self.kinds:
            raise ConfigError("chaos plan needs at least one fault kind")
        for kind in self.kinds:
            if kind not in CHAOS_KINDS:
                raise ConfigError(
                    f"unknown chaos kind {kind!r}; choose from {CHAOS_KINDS}"
                )
        if self.delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {self.delay_s}")

    def fault_for(self, index: int) -> str | None:
        """The fault kind shard ``index`` draws, or None (healthy).

        Pure function of ``(seed, index)`` — the scheduler, the tests
        and the worker all agree on the schedule without coordination.
        """
        rng = new_rng(self.seed, f"chaos/shard[{index}]")
        if float(rng.uniform(0.0, 1.0)) >= self.rate:
            return None
        return self.kinds[int(rng.integers(len(self.kinds)))]

    def faulted_shards(self, num_shards: int) -> tuple[int, ...]:
        """Every shard id in ``range(num_shards)`` scheduled to fault."""
        return tuple(
            index for index in range(num_shards) if self.fault_for(index) is not None
        )

    def inject(self, index: int, attempt: int, in_process: bool) -> None:
        """Apply shard ``index``'s fault to attempt ``attempt``, if any.

        Called by the pool's task wrapper at the top of every attempt.
        ``in_process`` downgrades ``"crash"`` to ``"raise"`` (an
        ``os._exit`` without a process pool around it would kill the
        caller, not simulate a worker loss).
        """
        if attempt >= self.attempts_affected:
            return
        kind = self.fault_for(index)
        if kind is None:
            return
        if kind == "delay":
            time.sleep(self.delay_s)
            return
        if kind == "crash" and not in_process:
            os._exit(13)
        raise ChaosError(
            f"injected {kind!r} fault: shard {index}, attempt {attempt} "
            f"(plan seed {self.seed})"
        )
