"""Fleet-scale campaign execution: thousands of vehicles, one call.

:func:`run_fleet` compiles a :class:`~repro.fleet.spec.FleetSpec` onto
the campaign/gateway stack and simulates every member — each vehicle is
one compiled campaign (scenario, topology profile, seeds, staggered
attack onset) monitored by its own IDS gateway — sharding the
population across the shared pool machinery (:mod:`repro.fleet.pool`).

**Memory model.**  A shard task is ``(spec, start, stop)`` — a few
hundred bytes however large the fleet, because a sampled spec derives
member ``i`` from the fleet seed and the index alone.  The shard worker
folds each vehicle's gateway report into
:class:`~repro.fleet.aggregate.FleetSlice` counters the moment the
vehicle finishes and discards the report, so peak memory is
O(one vehicle per worker), never O(fleet).

**Determinism.**  Every stochastic stream derives from the fleet seed
and the vehicle index — never from shard boundaries, worker identity or
execution order — and shard aggregates merge with an associative,
commutative reduction in shard order, so the fleet aggregate is
bit-identical for any ``shard_size``, ``max_workers`` and backend.

Detectors are trained and compiled once in the parent (the
:class:`~repro.experiments.context.ExperimentContext` cache), then
shipped to workers via the pool initializer; each vehicle deploys the
trained QMLP matching its scenario's attack mechanics
(:func:`~repro.can.campaign.scenario_detector`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.can.campaign import (
    SCENARIOS,
    Campaign,
    ScenarioRegistry,
    scenario_detector,
)
from repro.errors import ConfigError
from repro.finn.compiled import engine_for
from repro.fleet.aggregate import (
    FleetAggregate,
    FleetSlice,
    drop_histogram,
    latency_histogram,
)
from repro.fleet.checkpoint import FleetCheckpoint, fleet_fingerprint
from repro.fleet.health import RunHealth
from repro.fleet.pool import run_sharded, warm_engines, worker_state
from repro.fleet.spec import ExecOptions, FleetSpec, VehicleSpec
from repro.soc.arbiter import SharedAcceleratorArbiter
from repro.soc.gateway import GatewayReport, build_campaign_gateway
from repro.utils.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.context import ExperimentContext
    from repro.fleet.chaos import ChaosPlan

__all__ = ["FleetResult", "fleet_detectors", "run_fleet"]


@dataclass(frozen=True)
class FleetResult:
    """What a fleet run produced and how it actually executed.

    ``options`` is the *resolved* execution configuration: ``backend``
    is the concrete backend that ran (never ``"auto"``), so artifacts
    serialised from this result record what actually happened on the
    host that produced them.
    """

    spec: FleetSpec
    options: ExecOptions
    workers: int
    shards: int
    aggregate: FleetAggregate
    health: RunHealth = field(default_factory=RunHealth)
    resumed_shards: int = 0
    checkpointed: bool = False

    @property
    def vehicles(self) -> int:
        return self.aggregate.total.vehicles

    @property
    def backend(self) -> str:
        """The concrete pool backend the run used."""
        return self.options.backend

    @property
    def engine(self) -> str:
        """The bus-simulation engine the run used."""
        return self.options.engine

    def as_record(self) -> dict[str, Any]:
        """Flat scalars for JSON artifacts (bench lanes, reports).

        Includes the resolved resilience settings and the run's health
        so a degraded artifact is distinguishable from a clean one.
        """
        total = self.aggregate.total
        record = {
            "fleet": self.spec.name,
            "vehicles": self.vehicles,
            "channels": total.channels,
            "shards": self.shards,
            "workers": self.workers,
            "frames_offered": total.frames_offered,
            "frames_processed": total.frames_processed,
            "frames_dropped": total.frames_dropped,
            "frames_corrupted": total.frames_corrupted,
            "retransmissions": total.retransmissions,
            "bus_off_events": total.bus_off_events,
            "alerts": total.alerts,
            "phases_injecting": total.phases_injecting,
            "phases_detected": total.phases_detected,
            "detection_rate": total.detection_rate,
            "drop_rate": total.drop_rate,
        }
        record.update(self.options.as_record())
        record["checkpointed"] = self.checkpointed
        record["resumed_shards"] = self.resumed_shards
        record["health"] = self.health.as_record()
        return record

    def summary(self) -> str:
        header = (
            f"fleet {self.spec.name!r}: {self.shards} shards over "
            f"{self.workers} {self.backend} worker(s), {self.engine} engine"
        )
        lines = [header, self.aggregate.summary()]
        if self.resumed_shards:
            lines.append(
                f"  resumed: {self.resumed_shards} shard(s) from checkpoint"
            )
        if not self.health.ok or self.health.retries:
            lines.append(f"  {self.health.summary()}")
        return "\n".join(lines)


def fleet_detectors(
    spec: FleetSpec, registry: ScenarioRegistry = SCENARIOS
) -> dict[str, str]:
    """``{scenario: detector}`` for every scenario the fleet can draw.

    The mapping every :func:`run_fleet` worker applies: each vehicle
    deploys the trained QMLP matching its scenario's attack mechanics
    (:func:`~repro.can.campaign.scenario_detector`).  Exposed so callers
    can see — and tests can pin — which detectors a fleet trains before
    any vehicle is simulated.
    """
    return {
        name: scenario_detector(registry.build(name))
        for name in spec.scenario_names()
    }


def _vehicle_slice(campaign: Campaign, report: GatewayReport) -> FleetSlice:
    """Fold one vehicle's gateway report into additive fleet counters."""
    latencies = [
        outcome.detection_latency_s
        for outcome in report.phase_outcomes
        if outcome.detection_latency_s is not None
    ]
    return FleetSlice(
        vehicles=1,
        channels=len(report.channels),
        frames_offered=report.total_frames,
        frames_processed=report.total_processed,
        frames_dropped=report.total_dropped,
        frames_corrupted=report.total_corrupted,
        retransmissions=report.total_retransmissions,
        bus_off_events=report.total_bus_off,
        alerts=report.total_alerts,
        phases_total=len(report.phase_outcomes),
        phases_injecting=sum(1 for phase in campaign.phases if phase.injects),
        phases_detected=report.phases_detected,
        latency_hist=latency_histogram(latencies),
        drop_hist=drop_histogram(report.drop_rate),
    )


def _simulate_vehicle(
    vehicle: VehicleSpec,
    ips: Mapping[str, Any],
    registry: ScenarioRegistry,
    options: ExecOptions,
) -> FleetAggregate:
    """Build, run and fold one fleet member; returns counters only."""
    campaign = registry.build(vehicle.scenario, duration=vehicle.duration)
    if vehicle.onset_offset:
        campaign = campaign.shifted(vehicle.onset_offset)
    detector = scenario_detector(campaign)
    gateway = build_campaign_gateway(
        ips[detector],
        campaign,
        vehicle_seed=vehicle.vehicle_seed,
        ecu_seed=derive_seed(vehicle.vehicle_seed, "fleet-ecu"),
        fifo_capacity=options.fifo_capacity,
        profile=vehicle.profile,
        name=vehicle.name,
    )
    report = gateway.monitor(
        duration=campaign.duration,
        chunk_size=options.chunk_size,
        with_metrics=False,
        arbiter=(
            SharedAcceleratorArbiter() if vehicle.deployment == "shared-ip" else None
        ),
        truth=campaign.truth_windows(),
        engine=options.engine,
        # Scoped per vehicle: every member draws an independent
        # corruption stream from one fleet-level fault configuration.
        faults=(
            vehicle.wire_faults.scoped(vehicle.name)
            if vehicle.wire_faults is not None
            else None
        ),
    )
    return FleetAggregate.of_vehicle(
        vehicle.scenario, vehicle.deployment, _vehicle_slice(campaign, report)
    )


@dataclass(frozen=True)
class _FleetShard:
    """One shard's work order: members ``[start, stop)`` of the spec.

    Picklable and O(1) in size — a sampled spec re-derives its own
    members from the fleet seed, so no vehicle state ships with it.
    """

    spec: FleetSpec
    start: int
    stop: int


def _fleet_shard_worker(shard: _FleetShard) -> FleetAggregate:
    """Simulate one shard's vehicles, folding each as it finishes."""
    state = worker_state()
    ips: Mapping[str, Any] = state["ips"]
    registry: ScenarioRegistry = state["registry"]
    options: ExecOptions = state["options"]
    aggregate = FleetAggregate.empty()
    for vehicle in shard.spec.iter_vehicles(shard.start, shard.stop):
        aggregate = aggregate.merge(
            _simulate_vehicle(vehicle, ips, registry, options)
        )
    return aggregate


def run_fleet(
    context: "ExperimentContext",
    spec: FleetSpec,
    options: ExecOptions | None = None,
    *,
    registry: ScenarioRegistry = SCENARIOS,
    shard_size: int = 64,
    checkpoint: "str | os.PathLike[str] | None" = None,
    chaos: "ChaosPlan | None" = None,
) -> FleetResult:
    """Simulate every vehicle of ``spec`` and return merged counters.

    Trains and compiles each needed detector once (the context cache),
    shards the population into ``shard_size``-vehicle tasks, fans the
    shards over the resolved backend (:class:`ExecOptions`; ``"auto"``
    picks process fan-out on multi-core hosts) and merges the per-shard
    aggregates in shard order.  The result is bit-identical for any
    shard size, worker count and backend; an empty fleet returns a
    well-formed empty result without training detectors or spinning up
    a pool.

    **Fault tolerance.**  Shard attempts honour the resilience knobs on
    :class:`ExecOptions` (``timeout_s``/``max_retries``/``strict``);
    shards that exhaust their retries are reported in the result's
    :class:`~repro.fleet.health.RunHealth` rather than raising (unless
    ``strict=True``).  ``checkpoint=path`` persists every completed
    shard's aggregate as it lands; a rerun pointed at the same path
    re-executes only the missing shards and merges in shard order, so
    the resumed aggregate is bit-identical to an uninterrupted run.
    ``chaos`` injects deterministic faults into shard attempts — test
    machinery (:mod:`repro.fleet.chaos`), never used in production runs.
    """
    if shard_size < 1:
        raise ConfigError(f"shard_size must be >= 1, got {shard_size}")
    resolved = (options if options is not None else ExecOptions()).resolved()
    if len(spec) == 0:
        return FleetResult(
            spec=spec,
            options=resolved,
            workers=0,
            shards=0,
            aggregate=FleetAggregate.empty(),
            health=RunHealth.clean(0),
        )

    shards = [
        _FleetShard(spec=spec, start=start, stop=min(start + shard_size, len(spec)))
        for start in range(0, len(spec), shard_size)
    ]

    store: FleetCheckpoint | None = None
    pending_ids = list(range(len(shards)))
    if checkpoint is not None:
        store = FleetCheckpoint.open(
            checkpoint, fleet_fingerprint(spec, shard_size, resolved), len(shards)
        )
        pending_ids = list(store.missing)
    resumed = len(shards) - len(pending_ids)

    if not pending_ids:
        # Every shard already checkpointed: nothing to train or run.
        assert store is not None
        return FleetResult(
            spec=spec,
            options=resolved,
            workers=0,
            shards=len(shards),
            aggregate=store.merged(),
            health=RunHealth.clean(0),
            resumed_shards=resumed,
            checkpointed=True,
        )

    detectors = fleet_detectors(spec, registry)
    ips = {name: context.ip(name) for name in sorted(set(detectors.values()))}
    for ip in ips.values():
        engine_for(ip)  # warm the parent cache for thread/serial backends

    tasks = [shards[shard_id] for shard_id in pending_ids]
    workers = resolved.workers_for(len(tasks))
    state: dict[str, Any] = {
        "ips": ips,
        "registry": registry,
        "options": resolved,
        "warmup": warm_engines,
    }

    on_result = None
    if store is not None:
        bound = store

        def _record(index: int, aggregate: FleetAggregate) -> None:
            bound.record(pending_ids[index], aggregate)

        on_result = _record

    outcome = run_sharded(
        tasks,
        _fleet_shard_worker,
        state,
        resolved.backend,
        workers,
        timeout_s=resolved.timeout_s,
        max_retries=resolved.max_retries,
        strict=resolved.strict,
        retry_seed=derive_seed(spec.seed, "fleet-retry"),
        chaos=chaos,
        on_result=on_result,
    )
    health = outcome.health.relabeled(pending_ids)

    if store is not None:
        # The checkpoint holds every completed shard (resumed and new),
        # keyed by shard id; merging it in id order reproduces the
        # uninterrupted merge exactly.
        aggregate = store.merged()
    else:
        aggregate = FleetAggregate.empty()
        for shard_aggregate in outcome.results:
            if shard_aggregate is not None:
                aggregate = aggregate.merge(shard_aggregate)
    return FleetResult(
        spec=spec,
        options=resolved,
        workers=workers,
        shards=len(shards),
        aggregate=aggregate,
        health=health,
        resumed_shards=resumed,
        checkpointed=store is not None,
    )
