"""Run health: what a fault-tolerant sharded run survived.

A fair-weather runner either returns results or raises; a fleet-scale
service needs a third outcome — *degraded* — where the shards that
could finish did, and the ones that could not are accounted for
instead of taking the whole campaign down.  :class:`RunHealth` is that
account: retry totals, per-shard timeout counts, process-pool rebuilds
and a :class:`ShardFailure` record for every shard that exhausted its
retry budget.  It rides on :class:`ShardedRun` (the
:func:`repro.fleet.pool.run_sharded` return type) and is re-exposed on
``FleetResult`` / ``CampaignSweepResult`` and their JSON artifacts, so
a degraded run *says so* wherever its numbers land.

Strict mode short-circuits the degradation: when a shard exhausts its
retries, :class:`ShardError` is raised (chained from the last worker
exception, when there was one) instead of recording the failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Sequence

from repro.errors import ReproError

__all__ = ["RunHealth", "ShardError", "ShardFailure", "ShardedRun"]


@dataclass(frozen=True)
class ShardFailure:
    """One shard that exhausted its retry budget.

    ``error`` is a one-line ``TypeName: message`` summary of the last
    attempt's failure (a worker exception, a timeout, or a pool crash)
    — a string, never the exception object, so failures serialise into
    JSON artifacts and cross process boundaries without re-pickling
    arbitrary tracebacks.
    """

    shard: int
    attempts: int
    error: str

    def as_record(self) -> dict[str, Any]:
        return {"shard": self.shard, "attempts": self.attempts, "error": self.error}


class ShardError(ReproError):
    """A shard exhausted its retries under ``strict=True``."""

    def __init__(self, failure: ShardFailure) -> None:
        super().__init__(
            f"shard {failure.shard} failed after {failure.attempts} attempt(s): "
            f"{failure.error}"
        )
        self.failure = failure


@dataclass(frozen=True)
class RunHealth:
    """Fault-tolerance accounting for one sharded run.

    ``retries`` counts every resubmission (including those that later
    succeeded); ``timeouts`` counts attempts abandoned at the per-shard
    deadline; ``pool_rebuilds`` counts :class:`BrokenProcessPool`
    recoveries; ``failures`` lists the shards that exhausted the retry
    budget (empty on a healthy run).  Shard ids are indices into the
    task list the run was given — :meth:`relabeled` maps them back to
    caller-level ids when only a subset was executed (checkpoint
    resume).
    """

    shards: int = 0
    completed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    failures: tuple[ShardFailure, ...] = ()

    @classmethod
    def clean(cls, shards: int) -> "RunHealth":
        """The all-healthy record for a run of ``shards`` tasks."""
        return cls(shards=shards, completed=shards)

    @property
    def ok(self) -> bool:
        """True when every shard completed (retried or not)."""
        return not self.failures

    @property
    def failed_shards(self) -> tuple[int, ...]:
        return tuple(failure.shard for failure in self.failures)

    def relabeled(self, shard_ids: Sequence[int]) -> "RunHealth":
        """Map local shard indices onto caller-level ids.

        A resumed run executes only the shards missing from its
        checkpoint; ``shard_ids[i]`` names what local shard ``i`` was in
        the full run, so health records keep meaning across resumes.
        """
        return replace(
            self,
            failures=tuple(
                replace(failure, shard=shard_ids[failure.shard])
                for failure in self.failures
            ),
        )

    def as_record(self) -> dict[str, Any]:
        """Flat JSON-ready summary for artifacts and reports."""
        return {
            "shards": self.shards,
            "completed": self.completed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "failed_shards": list(self.failed_shards),
            "failures": [failure.as_record() for failure in self.failures],
        }

    def summary(self) -> str:
        if self.ok and not (self.retries or self.pool_rebuilds):
            return f"healthy: {self.completed}/{self.shards} shards first try"
        parts = [f"{self.completed}/{self.shards} shards completed"]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuild(s)")
        if self.failures:
            parts.append(f"FAILED shards {list(self.failed_shards)}")
        return ", ".join(parts)


@dataclass(frozen=True)
class ShardedRun:
    """What :func:`repro.fleet.pool.run_sharded` produced.

    ``results`` is index-aligned with the submitted task list; a shard
    that exhausted its retries (non-strict mode only) holds ``None`` at
    its slot and appears in ``health.failures``.
    """

    results: tuple[Any, ...] = ()
    health: RunHealth = field(default_factory=RunHealth)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)
