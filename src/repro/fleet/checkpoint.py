"""Checkpoint/resume for fleet runs: never lose completed shards.

A thousand-vehicle campaign that dies at shard 19 of 20 should not
re-simulate the first nineteen.  ``run_fleet(..., checkpoint=path)``
persists every completed shard's :class:`~repro.fleet.aggregate.FleetAggregate`
to a JSON file as it lands (atomic write-then-rename, so a crash
mid-save leaves the previous checkpoint intact), and a resumed run
re-executes only the missing shards.

**Bit-identical resume.**  The checkpoint stores aggregates *per
shard*, keyed by shard id, and :meth:`FleetCheckpoint.merged` folds
them in shard-id order — the same order an uninterrupted run merges in
— so the final aggregate after any interrupt/resume sequence is
bit-identical to the fault-free run.  Every stored counter is an int
(see :meth:`FleetSlice.as_json_dict`), so the JSON round-trip is exact
by construction.

**Compatibility.**  A checkpoint binds to a *fingerprint* of everything
that shapes per-shard results: the full :class:`FleetSpec`, the shard
size (shard ids change with it) and the result-affecting execution
knobs (``engine``/``fifo_capacity``/``chunk_size`` — backend and
worker count are free to differ between the interrupted and resumed
runs).  Resuming against a mismatched fingerprint raises instead of
silently merging incompatible partial results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.fleet.aggregate import FleetAggregate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.spec import ExecOptions, FleetSpec

__all__ = ["CHECKPOINT_VERSION", "FleetCheckpoint", "fleet_fingerprint"]

CHECKPOINT_VERSION = 1


def fleet_fingerprint(
    spec: "FleetSpec", shard_size: int, options: "ExecOptions"
) -> str:
    """Hash everything that shapes a fleet run's per-shard aggregates.

    ``repr`` of a frozen spec dataclass is deterministic across
    processes and platforms (ints, floats, strings, tuples only).
    Backend and worker count are deliberately excluded: results are
    bit-identical across them, so a thread-backend run may resume a
    process-backend checkpoint and vice versa.
    """
    material = "::".join(
        [
            f"v{CHECKPOINT_VERSION}",
            repr(spec),
            f"shard_size={shard_size}",
            f"engine={options.engine}",
            f"fifo_capacity={options.fifo_capacity}",
            f"chunk_size={options.chunk_size}",
        ]
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class FleetCheckpoint:
    """Completed-shard aggregates for one fingerprinted fleet run."""

    path: Path
    fingerprint: str
    total_shards: int
    completed: dict[int, FleetAggregate] = field(default_factory=dict)

    @classmethod
    def open(
        cls, path: "str | os.PathLike[str]", fingerprint: str, total_shards: int
    ) -> "FleetCheckpoint":
        """Load ``path`` if it exists (validating compatibility), else start empty."""
        resolved = Path(path)
        checkpoint = cls(
            path=resolved, fingerprint=fingerprint, total_shards=total_shards
        )
        if not resolved.exists():
            return checkpoint
        try:
            payload = json.loads(resolved.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ConfigError(f"unreadable fleet checkpoint {resolved}: {exc}") from exc
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ConfigError(
                f"fleet checkpoint {resolved} has version "
                f"{payload.get('version')!r}, expected {CHECKPOINT_VERSION}"
            )
        if payload.get("fingerprint") != fingerprint:
            raise ConfigError(
                f"fleet checkpoint {resolved} was written by a different run "
                "configuration (spec/shard_size/engine mismatch); delete it or "
                "point the resumed run at the original spec"
            )
        if payload.get("total_shards") != total_shards:
            raise ConfigError(
                f"fleet checkpoint {resolved} covers "
                f"{payload.get('total_shards')} shards, this run has {total_shards}"
            )
        for key, value in payload.get("completed", {}).items():
            shard = int(key)
            if not 0 <= shard < total_shards:
                raise ConfigError(
                    f"fleet checkpoint {resolved} names out-of-range shard {shard}"
                )
            checkpoint.completed[shard] = FleetAggregate.from_json_dict(value)
        return checkpoint

    @property
    def missing(self) -> tuple[int, ...]:
        """Shard ids still to run, in shard order."""
        return tuple(
            shard
            for shard in range(self.total_shards)
            if shard not in self.completed
        )

    def record(self, shard: int, aggregate: FleetAggregate) -> None:
        """Store one completed shard and persist the checkpoint."""
        self.completed[shard] = aggregate
        self.save()

    def save(self) -> None:
        """Atomically rewrite the checkpoint file (tmp + rename)."""
        payload: dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "total_shards": self.total_shards,
            "completed": {
                str(shard): self.completed[shard].as_json_dict()
                for shard in sorted(self.completed)
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        scratch = self.path.with_name(self.path.name + ".tmp")
        scratch.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        os.replace(scratch, self.path)

    def merged(self) -> FleetAggregate:
        """Fold completed shards in shard-id order (the uninterrupted order)."""
        aggregate = FleetAggregate.empty()
        for shard in sorted(self.completed):
            aggregate = aggregate.merge(self.completed[shard])
        return aggregate
