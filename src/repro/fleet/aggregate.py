"""Streaming, mergeable fleet statistics: counters, never captures.

A fleet run folds every vehicle's gateway report into a
:class:`FleetSlice` the moment the vehicle finishes, then discards the
report — the aggregate holds detection-rate counters and fixed-bin
histograms only, so peak memory is bounded by one in-flight vehicle per
worker, never by fleet size or frame count.

Merging is exact and order-free: every field is an additive counter
(ints and fixed-bin count tuples), so ``merge`` is associative and
commutative by construction — the property the shard reducer relies on
to produce bit-identical aggregates for any shard count, worker count
or backend.  Histogram *bins* are module constants: two slices are only
mergeable because they bucketed against the same edges.

Value semantics throughout: slices and aggregates are frozen
dataclasses over plain ints, tuples and dicts, so they pickle cheaply
across process pools and compare with ``==`` in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "DROP_BIN_EDGES",
    "LATENCY_BIN_EDGES",
    "FleetAggregate",
    "FleetSlice",
    "drop_histogram",
    "latency_histogram",
]

#: Detection-latency histogram bin edges (seconds): an underflow bin
#: below 100 us, 20 log-spaced bins to 10 s, and an overflow bin.
#: Fixed across the project so any two slices merge bin-for-bin.
LATENCY_BIN_EDGES: tuple[float, ...] = (
    0.0,
    *(float(edge) for edge in np.logspace(-4, 1, 21)),
    float("inf"),
)

#: Per-vehicle RX-FIFO drop-rate histogram bin edges (fraction 0..1).
DROP_BIN_EDGES: tuple[float, ...] = tuple(
    float(edge) for edge in np.linspace(0.0, 1.0, 21)
)

_LATENCY_BINS = len(LATENCY_BIN_EDGES) - 1
_DROP_BINS = len(DROP_BIN_EDGES) - 1


def latency_histogram(latencies_s: Iterable[float]) -> tuple[int, ...]:
    """Bucket detection latencies (seconds) against the fixed edges."""
    values = np.asarray(list(latencies_s), dtype=np.float64)
    if not len(values):
        return (0,) * _LATENCY_BINS
    counts, _ = np.histogram(values, bins=np.asarray(LATENCY_BIN_EDGES))
    return tuple(int(count) for count in counts)


def drop_histogram(drop_rate: float) -> tuple[int, ...]:
    """Bucket one vehicle's drop rate (fraction) against the fixed edges."""
    counts, _ = np.histogram(
        np.asarray([drop_rate], dtype=np.float64), bins=np.asarray(DROP_BIN_EDGES)
    )
    return tuple(int(count) for count in counts)


def _add(left: tuple[int, ...], right: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(a + b for a, b in zip(left, right))


@dataclass(frozen=True)
class FleetSlice:
    """Additive counters for one rollup bucket (a scenario, a deployment,
    the whole fleet...).

    ``latency_hist`` buckets every detected phase's first-alert latency
    against :data:`LATENCY_BIN_EDGES`; ``drop_hist`` buckets each
    vehicle's overall RX-FIFO drop rate against :data:`DROP_BIN_EDGES`.
    """

    vehicles: int = 0
    channels: int = 0
    frames_offered: int = 0
    frames_processed: int = 0
    frames_dropped: int = 0
    #: wire-fault counters (see :mod:`repro.can.faults`): corrupted
    #: attempts observed, successful retransmissions behind them, and
    #: attempts that drove a sender into bus-off
    frames_corrupted: int = 0
    retransmissions: int = 0
    bus_off_events: int = 0
    alerts: int = 0
    phases_total: int = 0
    phases_injecting: int = 0
    phases_detected: int = 0
    latency_hist: tuple[int, ...] = (0,) * _LATENCY_BINS
    drop_hist: tuple[int, ...] = (0,) * _DROP_BINS

    def __post_init__(self) -> None:
        if len(self.latency_hist) != _LATENCY_BINS:
            raise ConfigError(
                f"latency_hist needs {_LATENCY_BINS} bins, got {len(self.latency_hist)}"
            )
        if len(self.drop_hist) != _DROP_BINS:
            raise ConfigError(
                f"drop_hist needs {_DROP_BINS} bins, got {len(self.drop_hist)}"
            )

    def merge(self, other: "FleetSlice") -> "FleetSlice":
        """Elementwise sum — associative, commutative, identity-friendly."""
        return FleetSlice(
            vehicles=self.vehicles + other.vehicles,
            channels=self.channels + other.channels,
            frames_offered=self.frames_offered + other.frames_offered,
            frames_processed=self.frames_processed + other.frames_processed,
            frames_dropped=self.frames_dropped + other.frames_dropped,
            frames_corrupted=self.frames_corrupted + other.frames_corrupted,
            retransmissions=self.retransmissions + other.retransmissions,
            bus_off_events=self.bus_off_events + other.bus_off_events,
            alerts=self.alerts + other.alerts,
            phases_total=self.phases_total + other.phases_total,
            phases_injecting=self.phases_injecting + other.phases_injecting,
            phases_detected=self.phases_detected + other.phases_detected,
            latency_hist=_add(self.latency_hist, other.latency_hist),
            drop_hist=_add(self.drop_hist, other.drop_hist),
        )

    @property
    def detection_rate(self) -> float:
        """Fraction of frame-injecting phases with at least one true alert."""
        if self.phases_injecting == 0:
            return 0.0
        return self.phases_detected / self.phases_injecting

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames lost to RX-FIFO overflow, fleet-wide."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_dropped / self.frames_offered

    @property
    def corruption_rate(self) -> float:
        """Fraction of observed wire records that were corrupted attempts."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_corrupted / self.frames_offered

    def latency_quantile_s(self, q: float) -> float | None:
        """Upper bin edge bounding the ``q``-quantile detection latency.

        Conservative by construction (a histogram cannot reconstruct
        exact order statistics): the returned edge is an upper bound on
        the true quantile.  ``None`` when no phase was detected.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        total = sum(self.latency_hist)
        if total == 0:
            return None
        target = q * total
        cumulative = 0
        for position, count in enumerate(self.latency_hist):
            cumulative += count
            if cumulative >= target:
                return LATENCY_BIN_EDGES[position + 1]
        return LATENCY_BIN_EDGES[-1]

    def as_json_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping that round-trips via :meth:`from_json_dict`.

        Every field is an int or a fixed-width tuple of ints, so the
        round-trip is exact — the property the checkpoint layer's
        bit-identical-resume guarantee rests on.
        """
        payload: dict[str, Any] = {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }
        payload["latency_hist"] = list(self.latency_hist)
        payload["drop_hist"] = list(self.drop_hist)
        return payload

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "FleetSlice":
        # .get(..., 0) keeps checkpoints written before a counter existed
        # loadable: absent counters merge as the additive identity.
        kwargs: dict[str, Any] = {
            spec.name: int(data.get(spec.name, 0))
            for spec in fields(cls)
            if spec.name not in ("latency_hist", "drop_hist")
        }
        kwargs["latency_hist"] = tuple(int(value) for value in data["latency_hist"])
        kwargs["drop_hist"] = tuple(int(value) for value in data["drop_hist"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FleetAggregate:
    """The whole fleet's counters, with per-scenario and per-deployment
    rollups.

    ``merge`` unions the rollup keys and adds the slices; the identity
    is :meth:`empty`.  Keys are sorted when dictionaries are rebuilt, so
    equal aggregates have equal reprs regardless of merge order.
    """

    total: FleetSlice = field(default_factory=FleetSlice)
    by_scenario: Mapping[str, FleetSlice] = field(default_factory=dict)
    by_deployment: Mapping[str, FleetSlice] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "FleetAggregate":
        return cls()

    @classmethod
    def of_vehicle(
        cls, scenario: str, deployment: str, counters: FleetSlice
    ) -> "FleetAggregate":
        """Lift one vehicle's counters into a mergeable aggregate."""
        return cls(
            total=counters,
            by_scenario={scenario: counters},
            by_deployment={deployment: counters},
        )

    def merge(self, other: "FleetAggregate") -> "FleetAggregate":
        return FleetAggregate(
            total=self.total.merge(other.total),
            by_scenario=_merge_rollup(self.by_scenario, other.by_scenario),
            by_deployment=_merge_rollup(self.by_deployment, other.by_deployment),
        )

    def as_json_dict(self) -> dict[str, Any]:
        """JSON-ready form (exact int round-trip; see :class:`FleetSlice`)."""
        return {
            "total": self.total.as_json_dict(),
            "by_scenario": {
                key: self.by_scenario[key].as_json_dict()
                for key in sorted(self.by_scenario)
            },
            "by_deployment": {
                key: self.by_deployment[key].as_json_dict()
                for key in sorted(self.by_deployment)
            },
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "FleetAggregate":
        return cls(
            total=FleetSlice.from_json_dict(data["total"]),
            by_scenario={
                key: FleetSlice.from_json_dict(value)
                for key, value in data["by_scenario"].items()
            },
            by_deployment={
                key: FleetSlice.from_json_dict(value)
                for key, value in data["by_deployment"].items()
            },
        )

    def summary(self) -> str:
        """A terse human-readable digest of the fleet's outcome."""
        total = self.total
        p50 = total.latency_quantile_s(0.5)
        p99 = total.latency_quantile_s(0.99)
        lines = [
            f"fleet: {total.vehicles} vehicles, {total.channels} channels, "
            f"{total.frames_offered:,} frames offered",
            f"  inspected {total.frames_processed:,}, dropped "
            f"{total.frames_dropped:,} ({100.0 * total.drop_rate:.2f}%), "
            f"{total.alerts:,} alerts"
            + (
                f", {total.frames_corrupted:,} corrupted on the wire "
                f"({total.bus_off_events} bus-off)"
                if total.frames_corrupted
                else ""
            ),
            f"  phases: {total.phases_detected}/{total.phases_injecting} "
            f"injecting phases detected "
            f"({100.0 * total.detection_rate:.1f}%)"
            + (
                f", detection latency p50 <= {1e3 * p50:.1f} ms"
                f" / p99 <= {1e3 * p99:.1f} ms"
                if p50 is not None and p99 is not None
                else ""
            ),
        ]
        for title, rollup in (
            ("scenario", self.by_scenario),
            ("deployment", self.by_deployment),
        ):
            for key in sorted(rollup):
                piece = rollup[key]
                lines.append(
                    f"  [{title}: {key}] {piece.vehicles} vehicles, "
                    f"detection {100.0 * piece.detection_rate:.1f}%, "
                    f"drop {100.0 * piece.drop_rate:.2f}%"
                )
        return "\n".join(lines)


def _merge_rollup(
    left: Mapping[str, FleetSlice], right: Mapping[str, FleetSlice]
) -> dict[str, FleetSlice]:
    merged: dict[str, FleetSlice] = {}
    for key in sorted(set(left) | set(right)):
        if key in left and key in right:
            merged[key] = left[key].merge(right[key])
        else:
            merged[key] = left[key] if key in left else right[key]
    return merged
