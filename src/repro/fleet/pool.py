"""Fault-tolerant shard execution for every fan-out entry point.

The campaign sweep (PR 5) grew a process-pool pattern worth keeping:
picklable task dataclasses, heavyweight shared state (trained detector
IPs) shipped *once* per worker process via the pool initializer, and
order-stable results whose seeds derive from task identity, never from
execution order.  This module extracts that pattern — and puts a fault
layer under it, because a thousand-shard campaign meets worker crashes,
hangs and transient failures that a bare ``pool.map`` turns into a
lost run:

* :func:`run_sharded` fans a task list over the chosen backend with a
  submit/wait scheduler: per-shard attempt **timeouts**, capped
  seed-derived exponential-backoff **retries**,
  :class:`~concurrent.futures.process.BrokenProcessPool` detection with
  **pool rebuild** and resubmission of outstanding shards, and graceful
  degradation — shards that exhaust their retry budget land in a
  :class:`~repro.fleet.health.RunHealth` record instead of raising
  (unless ``strict=True``).  Results come back index-aligned with the
  task list regardless of completion order.
* :func:`worker_state` gives workers access to the installed state from
  any backend.  State is scoped **per run**: in-process backends
  register it under a run token and bind it to each task via a
  :class:`~contextvars.ContextVar`, so two concurrent in-process runs
  (e.g. thread-backend fleets inside one test session) never clobber
  each other; process workers receive their single run's state through
  the pool initializer, exactly as before.
* :func:`warm_engines` is the standard warmup hook: compile every
  shipped detector IP once per process, before the first task runs.

Worker callables and warmup hooks MUST be module-top-level functions
(the ``pickle-safety`` lint rule's contract): the process backend
pickles them by reference.  Deterministic fault injection for tests
and disaster drills plugs in via ``chaos=``
(:class:`~repro.fleet.chaos.ChaosPlan`), applied inside the worker
wrapper so every failure path above is exercised end to end.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextvars import ContextVar
from dataclasses import dataclass, replace
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.fleet.health import RunHealth, ShardedRun, ShardError, ShardFailure
from repro.utils.rng import new_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.chaos import ChaosPlan

__all__ = ["run_sharded", "warm_engines", "worker_state"]

#: Exponential-backoff schedule for retries: attempt ``n`` waits a
#: seed-derived uniform draw from ``[window/2, window]`` where
#: ``window = min(CAP, BASE * 2**n)`` — jittered so resubmissions from
#: many failed shards do not stampede the pool in lockstep.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0

#: Per-run worker state, keyed by run token.  In-process backends
#: register the running token directly; each process-pool worker
#: receives its single run's entry through the pool initializer.
_STATES: dict[str, dict[str, Any]] = {}

#: The state bound to the task currently executing on this thread —
#: set by :func:`_run_task` around each worker call, so concurrent
#: in-process runs resolve their own state, never each other's.
_ACTIVE_STATE: ContextVar[dict[str, Any] | None] = ContextVar(
    "repro_fleet_active_state", default=None
)

_RUN_TOKENS = count()


def worker_state() -> dict[str, Any]:
    """The state installed for the current task's run (see :func:`run_sharded`)."""
    active = _ACTIVE_STATE.get()
    if active is not None:
        return active
    # Outside a task (e.g. a warmup hook probing): unambiguous only
    # when exactly one run's state is installed — the process-worker
    # case, where the initializer registered a single entry.
    if len(_STATES) == 1:
        return next(iter(_STATES.values()))
    if not _STATES:
        return {}
    raise RuntimeError(
        "worker_state() called outside a task while multiple runs are "
        "active; read state inside the worker callable"
    )


def warm_engines(state: dict[str, Any]) -> None:
    """Compile every shipped detector IP once, before any task runs."""
    from repro.finn.compiled import engine_for

    for ip in state.get("ips", {}).values():
        engine_for(ip)


def _install_worker_state(token: str, state: dict[str, Any]) -> None:
    """Register ``state`` under ``token`` and run its warmup hook.

    The process-pool initializer (called once per worker process) and
    the in-process registration path share this function, so warmup
    semantics are identical on every backend.
    """
    _STATES[token] = state
    warmup = state.get("warmup")
    if warmup is not None:
        warmup(state)


@dataclass(frozen=True)
class _Submission:
    """One shard attempt in flight: O(1) to pickle, task included."""

    token: str
    index: int
    attempt: int
    task: Any


def _run_task(submission: _Submission) -> Any:
    """Worker-side wrapper: bind run state, inject chaos, run the shard."""
    state = _STATES[submission.token]
    bound = _ACTIVE_STATE.set(state)
    try:
        chaos = state.get("__chaos__")
        if chaos is not None:
            chaos.inject(
                submission.index,
                submission.attempt,
                in_process=bool(state.get("__in_process__", True)),
            )
        worker: Callable[[Any], Any] = state["__worker__"]
        return worker(submission.task)
    finally:
        _ACTIVE_STATE.reset(bound)


def _summarise(exc: BaseException) -> str:
    """One-line ``TypeName: message`` digest for health records."""
    lines = str(exc).strip().splitlines()
    head = lines[0] if lines else ""
    return f"{type(exc).__name__}: {head}"[:200]


def _backoff_delay(retry_seed: int, index: int, attempt: int) -> float:
    """Capped, jittered exponential backoff before retry ``attempt + 1``."""
    window = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2.0**attempt))
    rng = new_rng(retry_seed, f"backoff/shard[{index}]/attempt[{attempt}]")
    return float(rng.uniform(0.5 * window, window))


class _Bookkeeper:
    """Shared retry/failure accounting for the serial and pooled paths."""

    def __init__(
        self,
        shards: int,
        max_retries: int,
        strict: bool,
        retry_seed: int,
        on_result: Callable[[int, Any], None] | None,
    ) -> None:
        self.shards = shards
        self.max_retries = max_retries
        self.strict = strict
        self.retry_seed = retry_seed
        self.on_result = on_result
        self.results: dict[int, Any] = {}
        self.failures: dict[int, ShardFailure] = {}
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0

    def succeed(self, index: int, value: Any) -> None:
        self.results[index] = value
        if self.on_result is not None:
            self.on_result(index, value)

    def next_attempt(
        self,
        submission: _Submission,
        error: str,
        cause: BaseException | None,
        *,
        timed_out: bool = False,
    ) -> tuple[float, _Submission] | None:
        """Book one failed attempt: the backed-off resubmission, or None.

        Returns ``(delay_s, retry_submission)`` while the shard has
        retry budget left; past the budget the shard's failure is
        recorded (or, under ``strict``, raised as :class:`ShardError`
        chained from the causing exception).
        """
        if timed_out:
            self.timeouts += 1
        if submission.attempt < self.max_retries:
            self.retries += 1
            delay = _backoff_delay(self.retry_seed, submission.index, submission.attempt)
            return delay, replace(submission, attempt=submission.attempt + 1)
        failure = ShardFailure(
            shard=submission.index, attempts=submission.attempt + 1, error=error
        )
        if self.strict:
            raise ShardError(failure) from cause
        self.failures[submission.index] = failure
        return None

    def finish(self) -> ShardedRun:
        health = RunHealth(
            shards=self.shards,
            completed=len(self.results),
            retries=self.retries,
            timeouts=self.timeouts,
            pool_rebuilds=self.pool_rebuilds,
            failures=tuple(
                self.failures[index] for index in sorted(self.failures)
            ),
        )
        return ShardedRun(
            results=tuple(self.results.get(index) for index in range(self.shards)),
            health=health,
        )


def _run_serial(token: str, ordered: list[Any], book: _Bookkeeper) -> ShardedRun:
    """In-process fallback: retries with backoff; timeouts need a pool."""
    for index, task in enumerate(ordered):
        submission = _Submission(token=token, index=index, attempt=0, task=task)
        while True:
            try:
                value = _run_task(submission)
            except Exception as exc:
                scheduled = book.next_attempt(submission, _summarise(exc), exc)
                if scheduled is None:
                    break
                delay, submission = scheduled
                time.sleep(delay)
            else:
                book.succeed(index, value)
                break
    return book.finish()


def _run_pooled(
    make_pool: Callable[[], Executor],
    token: str,
    ordered: list[Any],
    book: _Bookkeeper,
    timeout_s: float | None,
    max_workers: int,
    rebuildable: bool,
) -> ShardedRun:
    """The submit/wait scheduler shared by the thread and process backends.

    Completion order is decoupled from task order (results reassemble
    by shard index), per-attempt deadlines abandon hung futures and
    resubmit their shards, backed-off retries launch when due, and — on
    the process backend — a :class:`BrokenProcessPool` tears the pool
    down, rebuilds it and resubmits every outstanding shard (each
    outstanding attempt is charged one retry, so a deterministic
    crasher cannot rebuild-loop forever).

    Submissions are throttled to free worker slots so a shard's
    ``timeout_s`` clock starts when the attempt *runs*, not when it
    queues — twenty shards behind one worker must not charge shard 19
    for shards 0..18's run time.  An abandoned (timed-out) attempt that
    is still executing keeps its slot accounted as a *zombie* until its
    future resolves, so replacements are not queued behind it.
    """
    pool = make_pool()
    ready: list[_Submission] = []  # runnable, waiting for a worker slot
    pending: dict[Future[Any], _Submission] = {}
    deadlines: dict[Future[Any], float] = {}
    delayed: list[tuple[float, _Submission]] = []
    zombies: set[Future[Any]] = set()  # abandoned attempts still on a worker

    def submit(submission: _Submission) -> None:
        try:
            future = pool.submit(_run_task, submission)
        except BrokenProcessPool as exc:
            if not rebuildable:
                raise
            rebuild([submission], exc)
            return
        pending[future] = submission
        if timeout_s is not None:
            deadlines[future] = time.monotonic() + timeout_s

    def rebuild(crashed: list[_Submission], cause: BaseException | None) -> None:
        nonlocal pool
        book.pool_rebuilds += 1
        outstanding = crashed + list(pending.values())
        pending.clear()
        deadlines.clear()
        zombies.clear()  # the dead pool's workers are gone, slots with them
        pool.shutdown(wait=False, cancel_futures=True)
        pool = make_pool()
        for submission in outstanding:
            scheduled = book.next_attempt(
                submission, "BrokenProcessPool: a worker process died", cause
            )
            if scheduled is not None:
                delayed.append((time.monotonic() + scheduled[0], scheduled[1]))

    ready.extend(
        _Submission(token=token, index=index, attempt=0, task=task)
        for index, task in enumerate(ordered)
    )
    try:
        while ready or pending or delayed:
            now = time.monotonic()
            due = [entry for entry in delayed if entry[0] <= now]
            delayed = [entry for entry in delayed if entry[0] > now]
            ready.extend(submission for _, submission in due)
            zombies = {future for future in zombies if not future.done()}
            while ready and len(pending) + len(zombies) < max_workers:
                submit(ready.pop(0))

            if not pending and not zombies:
                if delayed:  # everything waits on backoff: sleep to the next due
                    time.sleep(max(0.0, min(entry[0] for entry in delayed) - now))
                continue

            horizons = [deadline - now for deadline in deadlines.values()]
            horizons.extend(entry[0] - now for entry in delayed)
            wait_timeout = max(0.0, min(horizons)) if horizons else None
            done, _ = wait(
                list(pending) + list(zombies),
                timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )

            crashed: list[_Submission] = []
            crash_cause: BaseException | None = None
            for future in done:
                if future in zombies:
                    zombies.discard(future)  # slot freed; result abandoned
                    continue
                submission = pending.pop(future)
                deadlines.pop(future, None)
                exc = future.exception(timeout=0)
                if exc is None:
                    book.succeed(submission.index, future.result(timeout=0))
                elif rebuildable and isinstance(exc, BrokenProcessPool):
                    crashed.append(submission)
                    crash_cause = exc
                else:
                    scheduled = book.next_attempt(submission, _summarise(exc), exc)
                    if scheduled is not None:
                        delayed.append((time.monotonic() + scheduled[0], scheduled[1]))
            if crashed:
                rebuild(crashed, crash_cause)
                continue

            now = time.monotonic()
            for future in [f for f, d in deadlines.items() if d <= now]:
                if future.done():
                    continue  # completed this instant; next wait collects it
                submission = pending.pop(future)
                deadlines.pop(future)
                if not future.cancel():
                    zombies.add(future)  # running: abandon, but track its slot
                scheduled = book.next_attempt(
                    submission,
                    f"TimeoutError: shard attempt exceeded {timeout_s}s",
                    None,
                    timed_out=True,
                )
                if scheduled is not None:
                    delayed.append((time.monotonic() + scheduled[0], scheduled[1]))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return book.finish()


def run_sharded(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    state: dict[str, Any],
    backend: str,
    max_workers: int,
    *,
    timeout_s: float | None = None,
    max_retries: int = 0,
    strict: bool = True,
    retry_seed: int = 0,
    chaos: "ChaosPlan | None" = None,
    on_result: Callable[[int, Any], None] | None = None,
) -> ShardedRun:
    """Run ``worker`` over ``tasks`` with retries, timeouts and rebuilds.

    ``worker`` must be a module-top-level callable reading its shared
    inputs from :func:`worker_state`; ``state`` is installed before any
    task runs (registered in-process for serial/thread backends, via
    the pool initializer — pickled once per worker — for the process
    backend).  A ``state["warmup"]`` entry, if present, is called with
    the state after installation; :func:`warm_engines` is the standard
    hook.

    Fault tolerance: each shard attempt may take at most ``timeout_s``
    (pool backends only — a serial run cannot preempt itself) and is
    retried up to ``max_retries`` times with capped exponential backoff
    derived from ``retry_seed`` and the shard index.  A shard that
    exhausts its budget lands in the returned
    :class:`~repro.fleet.health.RunHealth` with ``None`` at its result
    slot — unless ``strict=True`` (the default here; the fleet-level
    :class:`~repro.fleet.spec.ExecOptions` defaults to degraded), in
    which case :class:`~repro.fleet.health.ShardError` is raised.  On
    the process backend a dead worker (``BrokenProcessPool``) rebuilds
    the pool and resubmits every outstanding shard.  ``on_result`` is
    invoked in the caller's process as ``(shard_index, result)`` the
    moment each shard completes — the checkpoint hook.

    Results are index-aligned with ``tasks`` whatever order shards
    finish in.  ``backend`` must already be resolved
    (``"thread"``/``"process"``, never ``"auto"`` — see
    :meth:`~repro.fleet.spec.ExecOptions.resolve_backend`).  A single
    task or a single worker always runs serially: no pool is spun up
    for work that cannot use one.  ``chaos`` installs a deterministic
    fault plan (:mod:`repro.fleet.chaos`) inside the worker wrapper.
    """
    ordered = list(tasks)
    if not ordered:
        return ShardedRun(results=(), health=RunHealth.clean(0))
    token = f"run-{next(_RUN_TOKENS)}"
    use_pool = max_workers > 1 and len(ordered) > 1
    in_process = not (backend == "process" and use_pool)
    shipped = dict(state)
    shipped["__worker__"] = worker
    shipped["__in_process__"] = in_process
    if chaos is not None:
        shipped["__chaos__"] = chaos
    book = _Bookkeeper(
        shards=len(ordered),
        max_retries=max_retries,
        strict=strict,
        retry_seed=retry_seed,
        on_result=on_result,
    )
    if not in_process:

        def make_process_pool() -> Executor:
            return ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_install_worker_state,
                initargs=(token, shipped),
            )

        return _run_pooled(
            make_process_pool,
            token,
            ordered,
            book,
            timeout_s,
            max_workers,
            rebuildable=True,
        )
    _install_worker_state(token, shipped)
    try:
        if use_pool:

            def make_thread_pool() -> Executor:
                return ThreadPoolExecutor(
                    max_workers=max_workers, thread_name_prefix="repro-shard"
                )

            return _run_pooled(
                make_thread_pool,
                token,
                ordered,
                book,
                timeout_s,
                max_workers,
                rebuildable=False,
            )
        return _run_serial(token, ordered, book)
    finally:
        _STATES.pop(token, None)
