"""Shared shard-execution machinery for every fan-out entry point.

The campaign sweep (PR 5) grew a process-pool pattern worth keeping:
picklable task dataclasses, heavyweight shared state (trained detector
IPs) shipped *once* per worker process via the pool initializer, and
order-stable results whose seeds derive from task identity, never from
execution order.  This module extracts that pattern so the fleet runner
and the campaign sweep run on one implementation:

* :func:`run_sharded` fans a task list over the chosen backend —
  ``"process"`` (one :class:`~concurrent.futures.ProcessPoolExecutor`,
  state pickled once per worker), ``"thread"`` (numpy kernels release
  the GIL), or serially when the pool would be overhead;
* :func:`worker_state` gives workers access to the installed state from
  any backend — in-process backends install it directly, process
  workers receive it through the initializer;
* :func:`warm_engines` is the standard warmup hook: compile every
  shipped detector IP once per process, before the first task runs.

Worker callables and warmup hooks MUST be module-top-level functions
(the ``pickle-safety`` lint rule's contract): the process backend
pickles them by reference.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

__all__ = ["run_sharded", "warm_engines", "worker_state"]

#: Per-process worker state: installed by :func:`_install_worker_state`
#: (directly for serial/thread runs, via the pool initializer for
#: process runs) so every task in a process reuses the shipped state.
_WORKER_STATE: dict[str, Any] = {}


def worker_state() -> dict[str, Any]:
    """The state installed for the current run (see :func:`run_sharded`)."""
    return _WORKER_STATE


def warm_engines(state: dict[str, Any]) -> None:
    """Compile every shipped detector IP once, before any task runs."""
    from repro.finn.compiled import engine_for

    for ip in state.get("ips", {}).values():
        engine_for(ip)


def _install_worker_state(state: dict[str, Any]) -> None:
    """Install ``state`` for this process and run its warmup hook."""
    _WORKER_STATE.clear()
    _WORKER_STATE.update(state)
    warmup = state.get("warmup")
    if warmup is not None:
        warmup(state)


def run_sharded(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    state: dict[str, Any],
    backend: str,
    max_workers: int,
) -> list[Any]:
    """Run ``worker`` over ``tasks``, returning results in task order.

    ``worker`` must be a module-top-level callable reading its shared
    inputs from :func:`worker_state`; ``state`` is installed before any
    task runs (in-process for serial/thread backends, via the pool
    initializer — pickled once per worker — for the process backend).
    A ``state["warmup"]`` entry, if present, is called with the state
    after installation; :func:`warm_engines` is the standard hook.

    ``backend`` must already be resolved (``"thread"``/``"process"``,
    never ``"auto"`` — see
    :meth:`~repro.fleet.spec.ExecOptions.resolve_backend`).  A single
    task or a single worker always runs serially: no pool is spun up
    for work that cannot use one.
    """
    ordered = list(tasks)
    if not ordered:
        return []
    if backend == "process" and max_workers > 1 and len(ordered) > 1:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_install_worker_state,
            initargs=(state,),
        ) as pool:
            # The worker is this helper's parameter, not a local def: the
            # contract (module-top-level callables only) is documented
            # above and held by every caller; the checker cannot see
            # through the indirection.
            return list(pool.map(worker, ordered))  # reprolint: disable=pickle-safety -- worker is a caller-supplied module-level callable (documented contract)
    _install_worker_state(state)
    if max_workers > 1 and len(ordered) > 1:
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-shard"
        ) as pool:
            return list(pool.map(worker, ordered))
    return [worker(task) for task in ordered]
