"""Run specifications: what a fleet run simulates and how it executes.

Two orthogonal concerns, two frozen dataclasses:

* :class:`ExecOptions` — *how* to execute: pool backend, bus engine,
  worker count, FIFO/chunk sizing.  Shared by every fan-out entry point
  (:func:`repro.fleet.runner.run_fleet`,
  :func:`repro.experiments.campaigns.run_campaign_sweep`), replacing
  the kwarg grab-bags those functions had accreted.
* :class:`VehicleSpec` / :class:`FleetSpec` — *what* to simulate: one
  vehicle's topology profile, scenario, seed scope and attack onset;
  and a population of them, either explicit or sampled on demand from
  the scenario registry.

A sampled :class:`FleetSpec` is generator-friendly by construction:
:meth:`FleetSpec.vehicle` derives the ``i``-th member purely from the
fleet seed and the index (per-vehicle
:class:`~repro.utils.rng.SeedSequence` scopes), so a shard covering
``[start, stop)`` re-derives exactly its own members — no per-vehicle
state is ever materialised fleet-wide, and the pickled shard task is a
few hundred bytes regardless of fleet size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Iterator

from repro.can.faults import WireFaultModel
from repro.errors import ConfigError
from repro.utils.rng import SeedSequence

__all__ = [
    "DEPLOYMENTS",
    "EXEC_BACKENDS",
    "ExecOptions",
    "FleetSpec",
    "VehicleSpec",
]

#: Supported pool backends.  ``"auto"`` resolves at run time: process
#: fan-out where the host has the cores to profit from it, threads on
#: single-core hosts where pickling would be pure overhead.
EXEC_BACKENDS = ("auto", "thread", "process")

#: Gateway deployments a vehicle may run: one detector IP per channel,
#: or every channel time-multiplexing a single shared IP.
DEPLOYMENTS = ("per-ip", "shared-ip")


@dataclass(frozen=True)
class ExecOptions:
    """Execution knobs shared by the fleet and campaign-sweep runners.

    ``backend="auto"`` (default) resolves to ``"process"`` when the
    host reports more than one CPU and ``"thread"`` otherwise; results
    record the backend that actually ran.  ``max_workers=None`` sizes
    the pool to ``min(8, cpu_count, tasks)``.  ``engine`` picks the bus
    simulation path per channel window (``"columnar"`` kernel by
    default, ``"event"`` for the reference loop); ``fifo_capacity`` and
    ``chunk_size`` parameterise each vehicle's RX FIFO and streaming
    chunk.

    **Resilience knobs** (see :mod:`repro.fleet.pool`): each shard
    attempt may take at most ``timeout_s`` (``None`` disables the
    deadline; enforced on pool backends only) and is retried up to
    ``max_retries`` times with capped seed-derived exponential backoff.
    ``strict=False`` (default) degrades gracefully — shards that
    exhaust their retries land in the run's
    :class:`~repro.fleet.health.RunHealth` instead of raising;
    ``strict=True`` raises :class:`~repro.fleet.health.ShardError` on
    the first exhausted shard.
    """

    backend: str = "auto"
    engine: str = "columnar"
    max_workers: int | None = None
    fifo_capacity: int = 64
    chunk_size: int = 4096
    timeout_s: float | None = None
    max_retries: int = 2
    strict: bool = False

    def __post_init__(self) -> None:
        if self.backend not in EXEC_BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; choose from {EXEC_BACKENDS}"
            )
        # Import here keeps spec import-light; gateway owns the canon.
        from repro.soc.gateway import ENGINES

        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.fifo_capacity < 1:
            raise ConfigError(f"fifo_capacity must be >= 1, got {self.fifo_capacity}")
        if self.chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")

    def resolve_backend(self) -> str:
        """The concrete backend this host runs: never ``"auto"``."""
        if self.backend != "auto":
            return self.backend
        return "process" if (os.cpu_count() or 1) > 1 else "thread"

    def resolved(self) -> "ExecOptions":
        """A copy with ``backend`` pinned to the resolved concrete value."""
        return replace(self, backend=self.resolve_backend())

    def workers_for(self, num_tasks: int) -> int:
        """The worker count for a run of ``num_tasks`` independent tasks."""
        if self.max_workers is not None:
            return self.max_workers
        return max(1, min(8, os.cpu_count() or 1, num_tasks))

    def as_record(self) -> dict[str, Any]:
        """Flat scalars for JSON artifacts: how the run actually executed.

        Resilience knobs included, so bench and campaign outputs state
        the fault-tolerance configuration they ran under — a degraded
        run and a strict run are not the same experiment.
        """
        return {
            "backend": self.backend,
            "engine": self.engine,
            "max_workers": self.max_workers,
            "fifo_capacity": self.fifo_capacity,
            "chunk_size": self.chunk_size,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "strict": self.strict,
        }


@dataclass(frozen=True)
class VehicleSpec:
    """One fleet member: topology, scenario, seed scope, attack onset.

    ``vehicle_seed`` roots every stochastic stream of this member
    (senders, attackers, ECU); ``profile`` picks the topology subset it
    carries (:data:`~repro.datasets.carhacking.VEHICLE_PROFILES`);
    ``onset_offset`` delays every attack phase, staggering when the
    population comes under attack; ``duration`` rescales the scenario
    (``None`` keeps the scenario's default); ``wire_faults`` puts this
    member on a noisy harness (:mod:`repro.can.faults` — the runner
    scopes the model per vehicle, so members draw independent
    corruption streams from one fleet-level configuration).
    """

    index: int
    scenario: str
    vehicle_seed: int
    profile: str = "full"
    deployment: str = "per-ip"
    onset_offset: float = 0.0
    duration: float | None = None
    wire_faults: WireFaultModel | None = None

    def __post_init__(self) -> None:
        from repro.datasets.carhacking import VEHICLE_PROFILES

        if self.index < 0:
            raise ConfigError(f"vehicle index must be >= 0, got {self.index}")
        if not self.scenario:
            raise ConfigError("vehicle needs a scenario name")
        if self.profile not in VEHICLE_PROFILES:
            raise ConfigError(
                f"unknown vehicle profile {self.profile!r}; "
                f"choose from {VEHICLE_PROFILES}"
            )
        if self.deployment not in DEPLOYMENTS:
            raise ConfigError(
                f"unknown deployment {self.deployment!r}; choose from {DEPLOYMENTS}"
            )
        if self.onset_offset < 0:
            raise ConfigError(f"onset_offset must be >= 0, got {self.onset_offset}")
        if self.duration is not None and self.duration <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration}")
        if self.wire_faults is not None and not isinstance(
            self.wire_faults, WireFaultModel
        ):
            raise ConfigError(
                f"wire_faults must be a WireFaultModel, got {self.wire_faults!r}"
            )

    @property
    def name(self) -> str:
        return f"vehicle{self.index}-{self.scenario}"


@dataclass(frozen=True)
class FleetSpec:
    """A population of vehicles: explicit list, or sampled on demand.

    **Explicit** — :meth:`explicit` wraps a concrete list of
    :class:`VehicleSpec` members (``size`` is implied).

    **Sampled** — give ``size`` plus the mix to draw from: each member's
    scenario, profile and deployment are drawn uniformly from the
    ``scenarios`` / ``profiles`` / ``deployments`` tuples, its onset
    offset uniformly from ``[0, onset_jitter]``, and its
    ``vehicle_seed`` independently — all from the per-vehicle scope
    ``SeedSequence(seed, "fleet/<name>").indexed("vehicle", i)``, so
    member ``i`` is identical however the fleet is sharded and whichever
    worker derives it.

    ``duration`` rescales every member's scenario (``None`` keeps each
    scenario's own default); ``wire_faults`` puts every sampled member
    on the same noisy-harness configuration (each member's corruption
    stream is still independent — the runner scopes the model by
    vehicle name).
    """

    name: str = "fleet"
    size: int = 0
    seed: int = 0
    scenarios: tuple[str, ...] = ("baseline-dos",)
    profiles: tuple[str, ...] = ("full",)
    deployments: tuple[str, ...] = ("per-ip",)
    duration: float | None = None
    onset_jitter: float = 0.0
    wire_faults: WireFaultModel | None = None
    vehicles: tuple[VehicleSpec, ...] | None = None

    def __post_init__(self) -> None:
        if self.vehicles is not None:
            if self.size not in (0, len(self.vehicles)):
                raise ConfigError(
                    f"explicit fleet of {len(self.vehicles)} vehicles "
                    f"declares size={self.size}"
                )
            object.__setattr__(self, "size", len(self.vehicles))
            return
        if self.size < 0:
            raise ConfigError(f"fleet size must be >= 0, got {self.size}")
        if not self.scenarios:
            raise ConfigError("sampled fleet needs at least one scenario")
        if not self.profiles:
            raise ConfigError("sampled fleet needs at least one profile")
        if not self.deployments:
            raise ConfigError("sampled fleet needs at least one deployment")
        if self.onset_jitter < 0:
            raise ConfigError(f"onset_jitter must be >= 0, got {self.onset_jitter}")
        if self.duration is not None and self.duration <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration}")
        if self.wire_faults is not None and not isinstance(
            self.wire_faults, WireFaultModel
        ):
            raise ConfigError(
                f"wire_faults must be a WireFaultModel, got {self.wire_faults!r}"
            )

    @classmethod
    def explicit(cls, vehicles: "tuple[VehicleSpec, ...] | list[VehicleSpec]", name: str = "fleet") -> "FleetSpec":
        """Wrap a concrete vehicle list as a fleet."""
        members = tuple(vehicles)
        return cls(name=name, size=len(members), vehicles=members)

    def __len__(self) -> int:
        return self.size

    def scenario_names(self) -> tuple[str, ...]:
        """Every scenario this fleet can draw, in stable order."""
        if self.vehicles is not None:
            seen: dict[str, None] = {}
            for vehicle in self.vehicles:
                seen.setdefault(vehicle.scenario, None)
            return tuple(seen)
        return tuple(dict.fromkeys(self.scenarios))

    def _seeds(self) -> SeedSequence:
        return SeedSequence(self.seed, scope=f"fleet/{self.name}")

    def vehicle(self, index: int) -> VehicleSpec:
        """Derive the ``index``-th member (stateless: O(1) per call)."""
        if not 0 <= index < self.size:
            raise ConfigError(
                f"vehicle index {index} out of range for fleet of {self.size}"
            )
        if self.vehicles is not None:
            return self.vehicles[index]
        scope = self._seeds().indexed("vehicle", index)
        rng = scope.rng("sample")
        onset = 0.0
        if self.onset_jitter > 0:
            onset = float(rng.uniform(0.0, self.onset_jitter))
        return VehicleSpec(
            index=index,
            scenario=self.scenarios[int(rng.integers(len(self.scenarios)))],
            vehicle_seed=scope.seed("vehicle-seed"),
            profile=self.profiles[int(rng.integers(len(self.profiles)))],
            deployment=self.deployments[int(rng.integers(len(self.deployments)))],
            onset_offset=onset,
            duration=self.duration,
            wire_faults=self.wire_faults,
        )

    def iter_vehicles(self, start: int = 0, stop: int | None = None) -> Iterator[VehicleSpec]:
        """Generate members ``[start, stop)`` without materialising the rest."""
        end = self.size if stop is None else min(stop, self.size)
        for index in range(start, end):
            yield self.vehicle(index)
