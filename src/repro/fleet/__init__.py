"""Fleet-scale campaign service: simulate thousands of vehicles at once.

The unified run-spec API over the campaign/gateway stack:

* :mod:`repro.fleet.spec` — :class:`VehicleSpec` / :class:`FleetSpec`
  (what to simulate) and :class:`ExecOptions` (how to execute it,
  resilience knobs included), shared with
  :func:`repro.experiments.campaigns.run_campaign_sweep`;
* :mod:`repro.fleet.aggregate` — streaming, mergeable counters whose
  ``merge`` is associative and commutative, so shard order never shows;
* :mod:`repro.fleet.pool` — the fault-tolerant shard-execution
  machinery (retries, timeouts, pool rebuilds; state shipped once per
  worker);
* :mod:`repro.fleet.health` — :class:`RunHealth` / :class:`ShardFailure`
  accounting for degraded runs, and :class:`ShardError` for strict ones;
* :mod:`repro.fleet.checkpoint` — completed-shard persistence behind
  ``run_fleet(..., checkpoint=path)`` with bit-identical resume;
* :mod:`repro.fleet.chaos` — deterministic fault injection for tests
  and disaster drills;
* :mod:`repro.fleet.runner` — :func:`run_fleet`, the one-call entry
  point.
"""

from repro.fleet.aggregate import (
    DROP_BIN_EDGES,
    LATENCY_BIN_EDGES,
    FleetAggregate,
    FleetSlice,
    drop_histogram,
    latency_histogram,
)
from repro.fleet.chaos import CHAOS_KINDS, ChaosError, ChaosPlan
from repro.fleet.checkpoint import CHECKPOINT_VERSION, FleetCheckpoint, fleet_fingerprint
from repro.fleet.health import RunHealth, ShardedRun, ShardError, ShardFailure
from repro.fleet.pool import run_sharded, warm_engines, worker_state
from repro.fleet.runner import FleetResult, fleet_detectors, run_fleet
from repro.fleet.spec import (
    DEPLOYMENTS,
    EXEC_BACKENDS,
    ExecOptions,
    FleetSpec,
    VehicleSpec,
)

__all__ = [
    "CHAOS_KINDS",
    "CHECKPOINT_VERSION",
    "DEPLOYMENTS",
    "DROP_BIN_EDGES",
    "EXEC_BACKENDS",
    "LATENCY_BIN_EDGES",
    "ChaosError",
    "ChaosPlan",
    "ExecOptions",
    "FleetAggregate",
    "FleetCheckpoint",
    "FleetResult",
    "FleetSlice",
    "FleetSpec",
    "RunHealth",
    "ShardError",
    "ShardFailure",
    "ShardedRun",
    "VehicleSpec",
    "drop_histogram",
    "fleet_detectors",
    "fleet_fingerprint",
    "latency_histogram",
    "run_fleet",
    "run_sharded",
    "warm_engines",
    "worker_state",
]
