"""Fleet-scale campaign service: simulate thousands of vehicles at once.

The unified run-spec API over the campaign/gateway stack:

* :mod:`repro.fleet.spec` — :class:`VehicleSpec` / :class:`FleetSpec`
  (what to simulate) and :class:`ExecOptions` (how to execute it),
  shared with :func:`repro.experiments.campaigns.run_campaign_sweep`;
* :mod:`repro.fleet.aggregate` — streaming, mergeable counters whose
  ``merge`` is associative and commutative, so shard order never shows;
* :mod:`repro.fleet.pool` — the shared shard-execution machinery
  (process/thread/serial, state shipped once per worker);
* :mod:`repro.fleet.runner` — :func:`run_fleet`, the one-call entry
  point.
"""

from repro.fleet.aggregate import (
    DROP_BIN_EDGES,
    LATENCY_BIN_EDGES,
    FleetAggregate,
    FleetSlice,
    drop_histogram,
    latency_histogram,
)
from repro.fleet.pool import run_sharded, warm_engines, worker_state
from repro.fleet.runner import FleetResult, fleet_detectors, run_fleet
from repro.fleet.spec import (
    DEPLOYMENTS,
    EXEC_BACKENDS,
    ExecOptions,
    FleetSpec,
    VehicleSpec,
)

__all__ = [
    "DEPLOYMENTS",
    "DROP_BIN_EDGES",
    "EXEC_BACKENDS",
    "LATENCY_BIN_EDGES",
    "ExecOptions",
    "FleetAggregate",
    "FleetResult",
    "FleetSlice",
    "FleetSpec",
    "VehicleSpec",
    "drop_histogram",
    "fleet_detectors",
    "latency_histogram",
    "run_fleet",
    "run_sharded",
    "warm_engines",
    "worker_state",
]
