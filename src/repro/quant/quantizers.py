"""Symmetric uniform quantisers with straight-through gradients.

Terminology (matches Brevitas/FINN):

* *bit width* ``b`` — number of bits of the integer representation.
* *signed* — signed ranges are symmetric around zero; unsigned ranges
  start at zero (used after ReLU).
* *narrow range* — signed range ``[-(2^(b-1)-1), 2^(b-1)-1]`` instead of
  ``[-2^(b-1), 2^(b-1)-1]``; keeps the grid symmetric so that a single
  scale maps integers to reals without a zero point.
* *scale* — positive real mapping integers to reals, ``x ≈ x_int * s``.

Rounding is **round-half-up** (``floor(x + 0.5)``) rather than numpy's
banker's rounding: half-up makes threshold conversion in
:mod:`repro.finn.thresholds` a clean inequality and matches hardware
adders.

Power-of-two scales are the default: multiplying/dividing by a po2 is
exact in float64, which makes the fake-quantised network *bit-exact*
against integer-only execution — the invariant the FINN verifier and the
property-based tests lean on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import QuantError
from repro.quant.calibration import EMAObserver, _Observer

__all__ = [
    "int_range",
    "po2_scale",
    "round_half_up",
    "round_half_up_array",
    "WeightQuantizer",
    "ActQuantizer",
]


def int_range(bit_width: int, signed: bool, narrow_range: bool = True) -> tuple[int, int]:
    """Return the ``(qmin, qmax)`` integer range of a quantiser.

    >>> int_range(4, signed=True)
    (-7, 7)
    >>> int_range(4, signed=True, narrow_range=False)
    (-8, 7)
    >>> int_range(4, signed=False)
    (0, 15)
    """
    if bit_width < 1 or bit_width > 32:
        raise QuantError(f"bit_width must be in [1, 32], got {bit_width}")
    if signed:
        if bit_width == 1:
            # 1-bit signed is the binarised {-1, +1} grid.
            return (-1, 1)
        qmax = 2 ** (bit_width - 1) - 1
        qmin = -qmax if narrow_range else -(qmax + 1)
        return (qmin, qmax)
    return (0, 2**bit_width - 1)


def po2_scale(abs_max: float, qmax: int) -> float:
    """Smallest power-of-two scale covering ``abs_max`` with ``qmax`` levels.

    Choosing ``2^ceil(log2(abs_max / qmax))`` guarantees
    ``abs_max / scale <= qmax`` so nothing clips beyond rounding.

    >>> po2_scale(1.0, 7)
    0.25
    """
    if abs_max <= 0.0:
        return 1.0
    return 2.0 ** math.ceil(math.log2(abs_max / qmax))


def float_scale(abs_max: float, qmax: int) -> float:
    """Exact float scale ``abs_max / qmax`` (Brevitas float-scaling mode)."""
    if abs_max <= 0.0:
        return 1.0
    return abs_max / qmax


def round_half_up(x: Tensor) -> Tensor:
    """Differentiable round-half-up with straight-through gradient."""
    return (x + 0.5).floor_ste()


def round_half_up_array(x: np.ndarray) -> np.ndarray:
    """numpy round-half-up (no autograd), used by integer execution paths."""
    return np.floor(np.asarray(x, dtype=np.float64) + 0.5)


@dataclass
class QuantConfig:
    """Shared quantiser configuration."""

    bit_width: int
    signed: bool
    narrow_range: bool = True
    scale_mode: str = "po2"  # "po2" | "float"

    def __post_init__(self) -> None:
        if self.scale_mode not in ("po2", "float"):
            raise QuantError(f"scale_mode must be 'po2' or 'float', got {self.scale_mode!r}")
        # Validates the range.
        int_range(self.bit_width, self.signed, self.narrow_range)

    @property
    def qmin(self) -> int:
        return int_range(self.bit_width, self.signed, self.narrow_range)[0]

    @property
    def qmax(self) -> int:
        return int_range(self.bit_width, self.signed, self.narrow_range)[1]

    def scale_for(self, abs_max: float) -> float:
        """Convert an observed absolute range into a scale."""
        if self.scale_mode == "po2":
            return po2_scale(abs_max, self.qmax)
        return float_scale(abs_max, self.qmax)


class WeightQuantizer:
    """Fake-quantise a weight tensor from its own statistics.

    The scale is recomputed from ``max(|W|)`` on every forward pass
    (per-tensor, or per-output-channel when ``per_channel=True``), which
    is Brevitas' default weight-scaling behaviour: as the float weights
    shrink or grow during training, the integer grid follows.
    """

    def __init__(
        self,
        bit_width: int,
        narrow_range: bool = True,
        scale_mode: str = "po2",
        per_channel: bool = False,
    ):
        self.config = QuantConfig(bit_width, signed=True, narrow_range=narrow_range, scale_mode=scale_mode)
        self.per_channel = per_channel

    @property
    def bit_width(self) -> int:
        return self.config.bit_width

    def scale_of(self, weight_data: np.ndarray) -> np.ndarray:
        """Scale(s) for a weight array of shape (out, in).

        Returns an array of shape ``(out, 1)`` when per-channel, else a
        0-d array; both broadcast against the weight.
        """
        if self.per_channel:
            abs_max = np.abs(weight_data).max(axis=1, keepdims=True)
            return np.array(
                [[self.config.scale_for(float(m))] for m in abs_max[:, 0]], dtype=np.float64
            )
        return np.float64(self.config.scale_for(float(np.abs(weight_data).max())))

    def quantize(self, weight: Tensor) -> tuple[Tensor, np.ndarray]:
        """Return the fake-quantised weight tensor and the scale used."""
        scale = self.scale_of(weight.data)
        scaled = weight * Tensor(1.0 / scale)
        q = round_half_up(scaled).clamp_ste(self.config.qmin, self.config.qmax)
        return q * Tensor(scale), scale

    def int_weights(self, weight_data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Integer weights and scale for export (no autograd)."""
        scale = self.scale_of(weight_data)
        q = np.clip(
            round_half_up_array(weight_data / scale), self.config.qmin, self.config.qmax
        ).astype(np.int64)
        return q, scale


class ActQuantizer:
    """Fake-quantise activations using an observed range.

    Parameters
    ----------
    bit_width:
        Integer bits of the activation representation.
    signed:
        False after ReLU (range ``[0, qmax]``), True for symmetric
        signed activations (``QuantIdentity``/``QuantHardTanh``).
    observer:
        Range observer instance; defaults to an EMA of batch maxima.
    """

    def __init__(
        self,
        bit_width: int,
        signed: bool = False,
        narrow_range: bool = False,
        scale_mode: str = "po2",
        observer: _Observer | None = None,
    ):
        self.config = QuantConfig(bit_width, signed=signed, narrow_range=narrow_range, scale_mode=scale_mode)
        self.observer = observer if observer is not None else EMAObserver()

    @property
    def bit_width(self) -> int:
        return self.config.bit_width

    @property
    def signed(self) -> bool:
        return self.config.signed

    @property
    def scale(self) -> float:
        """Current activation scale derived from the observed range."""
        return self.config.scale_for(self.observer.range)

    def observe(self, values: np.ndarray) -> None:
        """Feed a batch of pre-quantisation activations to the observer."""
        self.observer.observe(values)

    def quantize(self, x: Tensor, training: bool) -> Tensor:
        """Fake-quantise ``x``; updates the observer when ``training``."""
        if training:
            self.observe(x.data)
        if self.observer.range <= 0.0 and self.observer.num_batches == 0:
            # Un-calibrated quantiser: fall back to observing this batch
            # so inference on a fresh model is still well defined.
            self.observe(x.data)
        scale = self.scale
        scaled = x * Tensor(1.0 / scale)
        q = round_half_up(scaled).clamp_ste(self.config.qmin, self.config.qmax)
        return q * Tensor(scale)

    def quantize_array(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantise a plain array with the frozen scale (inference)."""
        scale = self.scale
        q = np.clip(round_half_up_array(x / scale), self.config.qmin, self.config.qmax)
        return q * scale

    def int_array(self, x: np.ndarray) -> np.ndarray:
        """Integer representation of a plain array under the frozen scale."""
        scale = self.scale
        return np.clip(
            round_half_up_array(x / scale), self.config.qmin, self.config.qmax
        ).astype(np.int64)

    def state(self) -> dict[str, float]:
        """Persistable quantiser state (observer range)."""
        return self.observer.state()

    def load_state(self, state: dict[str, float]) -> None:
        """Restore persisted state."""
        self.observer.load_state(state)
