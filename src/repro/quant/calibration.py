"""Range observers for activation quantisation.

During quantisation-aware training the activation quantiser must pick a
clipping range.  Brevitas tracks runtime statistics with configurable
observers; we provide the three standard choices:

* :class:`MinMaxObserver` — running maximum of ``|x|`` (never shrinks).
* :class:`EMAObserver` — exponential moving average of the batch max,
  robust to early-training outliers (Brevitas/TF default).
* :class:`PercentileObserver` — EMA of a high percentile, clipping
  outliers entirely.

Observers only *collect*; the quantiser converts the observed range to a
scale.  After :meth:`freeze`, the range is fixed (inference behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantError

__all__ = ["MinMaxObserver", "EMAObserver", "PercentileObserver"]


class _Observer:
    """Common state: the currently observed absolute range."""

    def __init__(self, initial: float = 0.0):
        self.range = float(initial)
        self.frozen = False
        self.num_batches = 0

    def observe(self, values: np.ndarray) -> None:
        """Update the range estimate from a batch of activation values."""
        if self.frozen:
            return
        batch_range = self._batch_range(np.asarray(values))
        self._update(batch_range)
        self.num_batches += 1

    def _batch_range(self, values: np.ndarray) -> float:
        if values.size == 0:
            raise QuantError("observer received an empty batch")
        return float(np.abs(values).max())

    def _update(self, batch_range: float) -> None:
        raise NotImplementedError

    def freeze(self) -> None:
        """Stop updating (called when the model enters eval mode)."""
        self.frozen = True

    def unfreeze(self) -> None:
        """Resume updating (back to training mode)."""
        self.frozen = False

    def state(self) -> dict[str, float]:
        """Persistable observer state."""
        return {"range": self.range, "num_batches": self.num_batches}

    def load_state(self, state: dict[str, float]) -> None:
        """Restore persisted state."""
        self.range = float(state["range"])
        self.num_batches = int(state.get("num_batches", 0))


class MinMaxObserver(_Observer):
    """Track the all-time maximum absolute value."""

    def _update(self, batch_range: float) -> None:
        self.range = max(self.range, batch_range)


class EMAObserver(_Observer):
    """Exponential moving average of per-batch maxima.

    ``range <- (1 - momentum) * range + momentum * batch_max``, with the
    first batch initialising the range directly.
    """

    def __init__(self, momentum: float = 0.1, initial: float = 0.0):
        super().__init__(initial)
        if not 0.0 < momentum <= 1.0:
            raise QuantError(f"EMA momentum must be in (0, 1], got {momentum}")
        self.momentum = momentum

    def _update(self, batch_range: float) -> None:
        if self.num_batches == 0 and self.range == 0.0:
            self.range = batch_range
        else:
            self.range = (1 - self.momentum) * self.range + self.momentum * batch_range


class PercentileObserver(EMAObserver):
    """EMA of a high percentile of ``|x|`` — ignores extreme outliers."""

    def __init__(self, percentile: float = 99.9, momentum: float = 0.1):
        super().__init__(momentum=momentum)
        if not 0.0 < percentile <= 100.0:
            raise QuantError(f"percentile must be in (0, 100], got {percentile}")
        self.percentile = percentile

    def _batch_range(self, values: np.ndarray) -> float:
        if values.size == 0:
            raise QuantError("observer received an empty batch")
        return float(np.percentile(np.abs(values), self.percentile))
