"""Extract integer weights and quantisation metadata from a trained QNN.

This is the boundary between training-world (autograd tensors, fake
quantisation) and hardware-world (:mod:`repro.finn`).  The exporter
walks a feed-forward module sequence of the canonical FINN-able shape::

    QuantIdentity, (QuantLinear, QuantReLU)*, QuantLinear

(Dropout/Flatten are skipped — identity at inference) and emits a
:class:`QNNExport` holding, per layer, the integer weight matrix, the
weight scale, the float bias and the activation quantisation parameters.
Everything downstream (threshold conversion, folding, cycle simulation)
consumes only this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.layers import Dropout, Flatten, Sequential
from repro.autograd.module import Module
from repro.errors import CompileError
from repro.quant.layers import QuantIdentity, QuantLinear, QuantReLU

__all__ = ["ActQuantExport", "LayerExport", "QNNExport", "export_qnn"]


@dataclass
class ActQuantExport:
    """Activation quantiser parameters frozen at export time."""

    bit_width: int
    signed: bool
    narrow_range: bool
    scale: float

    @property
    def num_levels(self) -> int:
        """Number of representable levels (steps of the staircase)."""
        return 2**self.bit_width

    def to_dict(self) -> dict:
        return {
            "bit_width": self.bit_width,
            "signed": self.signed,
            "narrow_range": self.narrow_range,
            "scale": self.scale,
        }


@dataclass
class LayerExport:
    """One fully-connected compute layer of the exported network."""

    name: str
    weight_int: np.ndarray  # (out, in) int64
    weight_scale: np.ndarray  # scalar or (out, 1)
    bias: np.ndarray  # (out,) float64 (zeros when the layer had no bias)
    weight_bits: int
    activation: ActQuantExport | None  # None for the final (logit) layer

    @property
    def in_features(self) -> int:
        return int(self.weight_int.shape[1])

    @property
    def out_features(self) -> int:
        return int(self.weight_int.shape[0])

    @property
    def num_weights(self) -> int:
        return int(self.weight_int.size)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight_int": self.weight_int.tolist(),
            "weight_scale": np.asarray(self.weight_scale).tolist(),
            "bias": self.bias.tolist(),
            "weight_bits": self.weight_bits,
            "activation": self.activation.to_dict() if self.activation else None,
        }


@dataclass
class QNNExport:
    """A complete exported quantised MLP."""

    input_quant: ActQuantExport
    layers: list[LayerExport] = field(default_factory=list)

    @property
    def input_features(self) -> int:
        return self.layers[0].in_features

    @property
    def output_features(self) -> int:
        return self.layers[-1].out_features

    @property
    def topology(self) -> list[int]:
        """Layer widths, e.g. ``[79, 64, 64, 32, 2]``."""
        return [self.layers[0].in_features] + [layer.out_features for layer in self.layers]

    def to_dict(self) -> dict:
        return {
            "input_quant": self.input_quant.to_dict(),
            "layers": [layer.to_dict() for layer in self.layers],
        }

    # ------------------------------------------------------------------
    # Reference integer-domain execution
    # ------------------------------------------------------------------
    def execute_float(self, x: np.ndarray) -> np.ndarray:
        """Run the exported network in the fake-quantised float domain.

        This reproduces the QAT model's eval-mode forward exactly and is
        the golden reference the FINN verifier compares against.
        """
        from repro.quant.quantizers import round_half_up_array

        iq = self.input_quant
        qmin = 0 if not iq.signed else -(2 ** (iq.bit_width - 1) - (1 if iq.narrow_range else 0))
        qmax = (2**iq.bit_width - 1) if not iq.signed else 2 ** (iq.bit_width - 1) - 1
        value = np.clip(round_half_up_array(np.asarray(x, dtype=np.float64) / iq.scale), qmin, qmax) * iq.scale
        for layer in self.layers:
            weight = layer.weight_int * np.asarray(layer.weight_scale)
            value = value @ weight.T + layer.bias
            act = layer.activation
            if act is not None:
                value = np.maximum(value, 0.0)
                levels = 2**act.bit_width - 1
                value = np.clip(round_half_up_array(value / act.scale), 0, levels) * act.scale
        return value


def _iterate_layers(model: Module):
    if isinstance(model, Sequential):
        yield from model
    elif hasattr(model, "layers"):
        yield from model.layers
    else:
        raise CompileError(
            f"cannot export {type(model).__name__}: expected a Sequential "
            "or a module with a .layers list"
        )


def export_qnn(model: Module) -> QNNExport:
    """Export a trained quantised MLP to :class:`QNNExport`.

    The model must follow the canonical FINN-able topology (see module
    docstring).  The model is switched to eval mode so observer ranges
    freeze before scales are read.
    """
    model.eval()
    layers = [layer for layer in _iterate_layers(model) if not isinstance(layer, (Dropout, Flatten))]
    if not layers or not isinstance(layers[0], QuantIdentity):
        raise CompileError("exported model must start with QuantIdentity (input quantiser)")
    input_quant = ActQuantExport(
        bit_width=layers[0].quantizer.bit_width,
        signed=layers[0].quantizer.signed,
        narrow_range=layers[0].quantizer.config.narrow_range,
        scale=layers[0].quantizer.scale,
    )

    exported: list[LayerExport] = []
    index = 1
    layer_number = 0
    while index < len(layers):
        layer = layers[index]
        if not isinstance(layer, QuantLinear):
            raise CompileError(
                f"expected QuantLinear at position {index}, found {type(layer).__name__}"
            )
        weight_int, weight_scale = layer.int_weight()
        bias = layer.bias.data.copy() if layer.bias is not None else np.zeros(layer.out_features)
        activation: ActQuantExport | None = None
        if index + 1 < len(layers):
            nxt = layers[index + 1]
            if not isinstance(nxt, QuantReLU):
                raise CompileError(
                    f"expected QuantReLU after layer {layer_number}, found {type(nxt).__name__}"
                )
            activation = ActQuantExport(
                bit_width=nxt.quantizer.bit_width,
                signed=False,
                narrow_range=False,
                scale=nxt.quantizer.scale,
            )
            index += 2
        else:
            index += 1
        exported.append(
            LayerExport(
                name=f"fc{layer_number}",
                weight_int=weight_int,
                weight_scale=np.asarray(weight_scale),
                bias=bias,
                weight_bits=layer.weight_bit_width,
                activation=activation,
            )
        )
        layer_number += 1

    if exported and exported[-1].activation is not None:
        raise CompileError("final layer must be a QuantLinear without activation")
    if not exported:
        raise CompileError("model contains no QuantLinear layers")
    return QNNExport(input_quant=input_quant, layers=exported)
