"""Value-plus-quantisation-metadata container.

:class:`QuantTensor` mirrors Brevitas' structure of the same name: a
(fake-quantised) float payload annotated with scale, bit width and
signedness, convertible to its exact integer representation.  The FINN
compiler consumes these to know what travels over each dataflow edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantError
from repro.quant.quantizers import int_range, round_half_up_array

__all__ = ["QuantTensor"]


@dataclass
class QuantTensor:
    """A float array known to lie on a uniform integer grid.

    Attributes
    ----------
    values:
        Fake-quantised float payload, ``values = int_repr * scale``.
    scale:
        Positive scale; scalar or broadcastable array.
    bit_width, signed, narrow_range:
        The integer grid the payload lives on.
    """

    values: np.ndarray
    scale: float | np.ndarray
    bit_width: int
    signed: bool
    narrow_range: bool = False

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if np.any(np.asarray(self.scale) <= 0):
            raise QuantError("QuantTensor scale must be positive")

    @property
    def qmin(self) -> int:
        return int_range(self.bit_width, self.signed, self.narrow_range)[0]

    @property
    def qmax(self) -> int:
        return int_range(self.bit_width, self.signed, self.narrow_range)[1]

    def int_repr(self, strict: bool = True) -> np.ndarray:
        """Integer representation ``values / scale``.

        With ``strict`` (default), raises :class:`QuantError` if any
        element is off-grid or out of range — the bit-exactness invariant
        the rest of the pipeline relies on.
        """
        ints = self.values / self.scale
        rounded = round_half_up_array(ints)
        if strict:
            if not np.allclose(ints, rounded, atol=1e-9, rtol=0.0):
                worst = float(np.abs(ints - rounded).max())
                raise QuantError(f"values are off the integer grid (max error {worst:g})")
            if rounded.size and (rounded.min() < self.qmin or rounded.max() > self.qmax):
                raise QuantError(
                    f"integer values [{rounded.min()}, {rounded.max()}] exceed "
                    f"range [{self.qmin}, {self.qmax}]"
                )
        return rounded.astype(np.int64)

    @classmethod
    def from_int(
        cls,
        int_values: np.ndarray,
        scale: float | np.ndarray,
        bit_width: int,
        signed: bool,
        narrow_range: bool = False,
    ) -> "QuantTensor":
        """Build from integer payload (the inverse of :meth:`int_repr`)."""
        int_values = np.asarray(int_values)
        qmin, qmax = int_range(bit_width, signed, narrow_range)
        if int_values.size and (int_values.min() < qmin or int_values.max() > qmax):
            raise QuantError(
                f"integer payload [{int_values.min()}, {int_values.max()}] exceeds "
                f"range [{qmin}, {qmax}]"
            )
        return cls(int_values * np.asarray(scale), scale, bit_width, signed, narrow_range)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.values.shape
