"""Quantisation-aware layers (drop-in Brevitas equivalents).

A quantised MLP is written exactly like the paper's Brevitas model:

>>> from repro.autograd import Sequential
>>> model = Sequential(
...     QuantIdentity(bit_width=8, signed=False),
...     QuantLinear(79, 64, weight_bit_width=4, seed=1),
...     QuantReLU(bit_width=4),
...     QuantLinear(64, 2, weight_bit_width=4, seed=2),
... )

Forward passes fake-quantise; gradients use straight-through estimators;
``model.eval()`` freezes the activation observers so inference (and the
FINN export) sees stable scales.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd import init as initialisers
from repro.autograd.module import Module, Parameter
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError, ShapeError
from repro.quant.calibration import EMAObserver, MinMaxObserver
from repro.quant.quantizers import ActQuantizer, WeightQuantizer
from repro.utils.rng import new_rng

__all__ = ["QuantLinear", "QuantReLU", "QuantIdentity", "QuantHardTanh"]


class _QuantActModule(Module):
    """Shared plumbing for activation-quantising modules."""

    def __init__(self, quantizer: ActQuantizer):
        super().__init__()
        self.quantizer = quantizer

    def train(self, mode: bool = True) -> "Module":
        result = super().train(mode)
        if mode:
            self.quantizer.observer.unfreeze()
        else:
            self.quantizer.observer.freeze()
        return result

    @property
    def bit_width(self) -> int:
        return self.quantizer.bit_width

    @property
    def scale(self) -> float:
        return self.quantizer.scale

    def extra_state(self) -> dict[str, np.ndarray]:
        state = self.quantizer.state()
        return {key: np.asarray(value) for key, value in state.items()}

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        self.quantizer.load_state({key: float(np.asarray(v)) for key, v in state.items()})


class QuantIdentity(_QuantActModule):
    """Quantise the values flowing through, without a nonlinearity.

    Placed at the network input so that downstream integer hardware
    receives integer data (bit-vectors of a CAN frame quantise exactly).
    """

    def __init__(
        self,
        bit_width: int = 8,
        signed: bool = False,
        scale_mode: str = "po2",
        ema_momentum: float = 0.1,
    ):
        quantizer = ActQuantizer(
            bit_width,
            signed=signed,
            narrow_range=False,
            scale_mode=scale_mode,
            observer=EMAObserver(momentum=ema_momentum),
        )
        super().__init__(quantizer)

    def forward(self, x: Tensor) -> Tensor:
        return self.quantizer.quantize(x, training=self.training)

    def __repr__(self) -> str:
        return f"QuantIdentity(bits={self.bit_width}, signed={self.quantizer.signed})"


class QuantReLU(_QuantActModule):
    """ReLU followed by unsigned uniform quantisation.

    The composition is what FINN converts into a ``MultiThreshold``
    node: an unsigned ``b``-bit staircase over the accumulator.
    """

    def __init__(self, bit_width: int = 4, scale_mode: str = "po2", ema_momentum: float = 0.1):
        quantizer = ActQuantizer(
            bit_width,
            signed=False,
            narrow_range=False,
            scale_mode=scale_mode,
            observer=EMAObserver(momentum=ema_momentum),
        )
        super().__init__(quantizer)

    def forward(self, x: Tensor) -> Tensor:
        return self.quantizer.quantize(x.relu(), training=self.training)

    def __repr__(self) -> str:
        return f"QuantReLU(bits={self.bit_width})"


class QuantHardTanh(_QuantActModule):
    """Signed hard-tanh with a fixed [-1, 1] quantisation range.

    Used by binarised/low-bit networks with signed activations; the
    range is fixed so the observer is pre-seeded and frozen.
    """

    def __init__(self, bit_width: int = 4, scale_mode: str = "po2"):
        observer = MinMaxObserver(initial=1.0)
        observer.freeze()
        quantizer = ActQuantizer(
            bit_width,
            signed=True,
            narrow_range=True,
            scale_mode=scale_mode,
            observer=observer,
        )
        super().__init__(quantizer)

    def forward(self, x: Tensor) -> Tensor:
        return self.quantizer.quantize(x.clamp(-1.0, 1.0), training=False)

    def __repr__(self) -> str:
        return f"QuantHardTanh(bits={self.bit_width})"


class QuantLinear(Module):
    """Affine layer with fake-quantised weights.

    The float master weights are trained as usual; every forward pass
    quantises them to ``weight_bit_width`` bits (symmetric, narrow
    range) with a scale recomputed from their current magnitude.  The
    bias stays in float — FINN absorbs it into the thresholding stage.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_bit_width: int = 4,
        bias: bool = True,
        narrow_range: bool = True,
        scale_mode: str = "po2",
        per_channel: bool = False,
        seed: int = 0,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigError(
                f"QuantLinear dims must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight_quant = WeightQuantizer(
            weight_bit_width,
            narrow_range=narrow_range,
            scale_mode=scale_mode,
            per_channel=per_channel,
        )
        rng = new_rng(seed, f"quantlinear-{in_features}x{out_features}")
        self.weight = Parameter(initialisers.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias: Parameter | None = Parameter(rng.uniform(-bound, bound, size=out_features))
        else:
            self.bias = None

    @property
    def weight_bit_width(self) -> int:
        return self.weight_quant.bit_width

    def quantized_weight(self) -> tuple[Tensor, np.ndarray]:
        """Fake-quantised weight tensor plus the scale in use."""
        return self.weight_quant.quantize(self.weight)

    def int_weight(self) -> tuple[np.ndarray, np.ndarray]:
        """Integer weights and scale for export (no autograd)."""
        return self.weight_quant.int_weights(self.weight.data)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"QuantLinear expected {self.in_features} inputs, got {x.shape[-1]}"
            )
        weight_q, _ = self.quantized_weight()
        out = x @ weight_q.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"QuantLinear(in={self.in_features}, out={self.out_features}, "
            f"wbits={self.weight_bit_width}, bias={self.bias is not None})"
        )
