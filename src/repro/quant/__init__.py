"""Quantisation-aware training — the library's Brevitas substitute.

The paper trains its MLP with AMD/Xilinx Brevitas: weights and
activations are *fake-quantised* in the forward pass (rounded to a small
integer grid, then rescaled to floats) while gradients flow through
straight-through estimators.  This package reproduces that machinery:

* :mod:`~repro.quant.quantizers` — symmetric uniform weight/activation
  quantisers with float or power-of-two scales.
* :mod:`~repro.quant.calibration` — range observers (min/max, EMA,
  percentile) that track activation statistics during training.
* :mod:`~repro.quant.layers` — ``QuantLinear``, ``QuantReLU``,
  ``QuantIdentity``, ``QuantHardTanh`` drop-in modules.
* :mod:`~repro.quant.qtensor` — :class:`QuantTensor`, a value+scale pair
  with exact integer representation checks.
* :mod:`~repro.quant.export` — extraction of integer weights and
  quantisation parameters for the FINN-style compiler.

Power-of-two scales (the default) make every fake-quantised value
exactly representable in float64, which is what lets
:mod:`repro.finn.verify` prove bit-exactness between the trained model
and the generated hardware IP.
"""

from repro.quant.calibration import EMAObserver, MinMaxObserver, PercentileObserver
from repro.quant.export import ActQuantExport, LayerExport, QNNExport, export_qnn
from repro.quant.layers import (
    QuantHardTanh,
    QuantIdentity,
    QuantLinear,
    QuantReLU,
)
from repro.quant.qtensor import QuantTensor
from repro.quant.quantizers import (
    ActQuantizer,
    WeightQuantizer,
    int_range,
    po2_scale,
    round_half_up,
)

__all__ = [
    "ActQuantExport",
    "ActQuantizer",
    "EMAObserver",
    "LayerExport",
    "MinMaxObserver",
    "PercentileObserver",
    "QNNExport",
    "QuantHardTanh",
    "QuantIdentity",
    "QuantLinear",
    "QuantReLU",
    "QuantTensor",
    "WeightQuantizer",
    "export_qnn",
    "int_range",
    "po2_scale",
    "round_half_up",
]
