"""Zynq UltraScale+ ECU platform model.

The paper integrates its FINN-generated IP next to the ARM cores of a
ZCU104 acting as a standard ECU: CAN frames arrive at the interface,
are copied into a FIFO, and a Linux (PYNQ) driver feeds them to the
accelerator over AXI.  This package models that platform:

* :mod:`~repro.soc.device` — FPGA resource databases (XCZU7EV et al.).
* :mod:`~repro.soc.axi` — AXI-lite transaction costs from userspace.
* :mod:`~repro.soc.accelerator` — the memory-mapped IP wrapper.
* :mod:`~repro.soc.driver` — a PYNQ-style ``Overlay`` facade.
* :mod:`~repro.soc.ecu` — the receive-path pipeline (interface → FIFO
  → feature encode → accelerator → verdict) with latency accounting,
  including the streaming engine (resumable per-channel sessions with
  real FIFO backpressure).
* :mod:`~repro.soc.gateway` — multi-channel gateway: several buses,
  each scanned by its own IDS-ECU, interleaved in virtual-time order
  with aggregate accounting.
* :mod:`~repro.soc.arbiter` — shared-accelerator arbitration: N
  channels time-multiplexing one IDS IP (round-robin/fixed-priority).
* :mod:`~repro.soc.power` — PMBus-style rail sampling and energy.
* :mod:`~repro.soc.latency` — the end-to-end per-message latency model.
* :mod:`~repro.soc.platforms` — GPU/Jetson/RPi comparison platforms.
"""

from repro.soc.accelerator import HWInferenceTrace, MemoryMappedAccelerator
from repro.soc.arbiter import ArbitrationGrant, SharedAcceleratorArbiter
from repro.soc.axi import AXILiteBus, AXIPort
from repro.soc.device import DEVICES, FPGADevice, ZCU104
from repro.soc.driver import Overlay
from repro.soc.ecu import (
    ECUReport,
    ECUStreamSession,
    IDSEnabledECU,
    StreamChunk,
    simulate_fifo_admission,
)
from repro.soc.fifo import RxFIFO
from repro.soc.gateway import (
    ChannelResult,
    GatewayReport,
    IDSGateway,
    PhaseOutcome,
    build_campaign_gateway,
    build_segment_gateway,
)
from repro.soc.latency import LatencyBreakdown, LatencyModel
from repro.soc.platforms import PLATFORMS, PlatformModel
from repro.soc.power import PMBusSampler, PowerModel, PowerReport

__all__ = [
    "AXILiteBus",
    "AXIPort",
    "ArbitrationGrant",
    "ChannelResult",
    "DEVICES",
    "ECUReport",
    "ECUStreamSession",
    "FPGADevice",
    "GatewayReport",
    "HWInferenceTrace",
    "IDSEnabledECU",
    "IDSGateway",
    "SharedAcceleratorArbiter",
    "StreamChunk",
    "LatencyBreakdown",
    "LatencyModel",
    "MemoryMappedAccelerator",
    "Overlay",
    "PLATFORMS",
    "PhaseOutcome",
    "PMBusSampler",
    "PlatformModel",
    "PowerModel",
    "PowerReport",
    "RxFIFO",
    "build_campaign_gateway",
    "build_segment_gateway",
    "ZCU104",
    "simulate_fifo_admission",
]
