"""Memory-mapped accelerator wrapper: the IP as the driver sees it.

The FINN-generated core is integrated "as a slave memory-mapped
peripheral device" (paper, Sec. I).  This wrapper binds an
:class:`~repro.finn.ipgen.AcceleratorIP` to an AXI-lite window and
reproduces the driver-visible protocol:

1. pack the quantised input vector into 32-bit words and write them to
   the input window;
2. write the start bit;
3. poll the status register until done;
4. read the classification result.

Every step is accounted as AXI transactions plus compute time, giving a
per-inference :class:`HWInferenceTrace` — the measured breakdown behind
the paper's 0.12 ms per-message figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CompileError, SoCError
from repro.finn.build import quantize_input
from repro.finn.compiled import engine_for
from repro.finn.ipgen import AcceleratorIP
from repro.soc.axi import AXILiteBus
from repro.utils.weakcache import KeyedWeakCache

__all__ = ["HWInferenceTrace", "MemoryMappedAccelerator", "pack_words"]


def pack_words(values: np.ndarray, bits_per_value: int) -> list[int]:
    """Pack non-negative integers into little-endian 32-bit words.

    Vectorised: values expand to an LSB-first bit matrix that is folded
    32 bits at a time, matching the scalar shift-accumulate layout the
    driver protocol defines.

    >>> pack_words(np.array([1, 0, 1, 1]), 1)
    [13]
    """
    if bits_per_value < 1 or bits_per_value > 32:
        raise SoCError(f"bits_per_value must be in [1, 32], got {bits_per_value}")
    values = np.asarray(values, dtype=np.int64).reshape(-1)
    if values.size == 0:
        return []
    bad = (values < 0) | (values >= (1 << bits_per_value))
    if bad.any():
        offender = int(values[bad][0])
        raise SoCError(f"value {offender} does not fit in {bits_per_value} bits")
    bits = (values[:, None] >> np.arange(bits_per_value, dtype=np.int64)) & 1
    flat = bits.reshape(-1)
    pad = (-flat.size) % 32
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.int64)])
    words = flat.reshape(-1, 32) @ (np.int64(1) << np.arange(32, dtype=np.int64))
    return [int(word) for word in words]


@dataclass(frozen=True)
class HWInferenceTrace:
    """Timing/transaction breakdown of one hardware inference."""

    mmio_writes: int
    mmio_reads: int
    write_seconds: float
    compute_seconds: float
    poll_seconds: float
    readback_seconds: float

    @property
    def total_seconds(self) -> float:
        """Driver-visible accelerator time (write + compute/poll + read)."""
        return self.write_seconds + max(self.compute_seconds, self.poll_seconds) + self.readback_seconds

    def to_dict(self) -> dict[str, float]:
        return {
            "mmio_writes": self.mmio_writes,
            "mmio_reads": self.mmio_reads,
            "write_seconds": self.write_seconds,
            "compute_seconds": self.compute_seconds,
            "poll_seconds": self.poll_seconds,
            "readback_seconds": self.readback_seconds,
            "total_seconds": self.total_seconds,
        }


class MemoryMappedAccelerator:
    """An :class:`AcceleratorIP` attached to an AXI-lite bus window."""

    def __init__(self, ip: AcceleratorIP, bus: AXILiteBus | None = None, base_address: int = 0xA000_0000):
        self.ip = ip
        self.bus = bus if bus is not None else AXILiteBus()
        self.base = base_address
        span = max(ip.register_map.span, 0x1000)
        self.port = self.bus.map_port(ip.name, base_address, span)
        self._input_bits = ip.export.input_quant.bit_width

    # -- register helpers ------------------------------------------------
    def _addr(self, offset: int) -> int:
        return self.base + offset

    def write_input(self, x_int: np.ndarray) -> int:
        """Write one quantised input vector; returns the MMIO write count."""
        words = pack_words(x_int, self._input_bits)
        expected = self.ip.register_map.input_words
        if len(words) != expected:
            raise SoCError(f"packed {len(words)} input words, register map expects {expected}")
        for index, word in enumerate(words):
            self.bus.write(self._addr(self.ip.register_map.INPUT_BASE + 4 * index), word)
        return len(words)

    def start(self) -> None:
        """Set the start bit (CTRL[0])."""
        self.bus.write(self._addr(self.ip.register_map.CTRL), 1)

    def infer(self, features: np.ndarray) -> tuple[int, HWInferenceTrace]:
        """Run one inference on a raw feature vector.

        Returns the predicted label and the timing trace.  Functional
        results come from the bit-exact dataflow graph; timing comes
        from the AXI cost model plus the core's cycle count.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise SoCError("infer() takes a single feature vector; use run_batch for many")
        x_int = quantize_input(self.ip.export, features[None, :])[0]

        writes_before = self.bus.writes
        busy_before = self.bus.busy_seconds
        self.write_input(x_int)
        self.start()
        write_seconds = self.bus.busy_seconds - busy_before
        mmio_writes = self.bus.writes - writes_before

        compute_seconds = self.ip.latency_seconds
        # Poll STATUS until done: one read per access-latency interval.
        polls = max(int(math.ceil(compute_seconds / self.bus.access_latency)), 1)
        reads_before = self.bus.reads
        busy_before = self.bus.busy_seconds
        label = int(self.ip.run(features[None, :])[0])
        for _ in range(polls - 1):
            self.bus.read(self._addr(self.ip.register_map.STATUS))
        self.bus.poke(self._addr(self.ip.register_map.STATUS), 1)  # device raises done
        self.bus.read(self._addr(self.ip.register_map.STATUS))
        poll_seconds = self.bus.busy_seconds - busy_before

        busy_before = self.bus.busy_seconds
        self.bus.poke(self._addr(self.ip.register_map.OUT_LABEL), label)
        result = self.bus.read(self._addr(self.ip.register_map.OUT_LABEL))
        readback_seconds = self.bus.busy_seconds - busy_before
        mmio_reads = self.bus.reads - reads_before

        trace = HWInferenceTrace(
            mmio_writes=mmio_writes,
            mmio_reads=mmio_reads,
            write_seconds=write_seconds,
            compute_seconds=compute_seconds,
            poll_seconds=poll_seconds,
            readback_seconds=readback_seconds,
        )
        return result, trace

    def run_batch(self, features: np.ndarray, compiled: bool = True) -> np.ndarray:
        """Functional batch execution (no per-frame AXI accounting).

        The default path runs the fused integer engine
        (:func:`repro.finn.compiled.engine_for`) — bit-exact against the
        dataflow graph and several times faster; the engine is cached on
        the export, so every ECU sharing this IP shares one compiled
        model.  ``compiled=False`` replays the node-by-node float graph
        (the golden reference, kept for A/B benchmarking).
        """
        if compiled:
            try:
                return engine_for(self.ip).predict(features)
            except CompileError:
                pass  # non-streamlined custom graph: reference path below
        return self.ip.run(features)

    def reference_trace(self) -> HWInferenceTrace:
        """The steady-state per-inference trace (identical every frame).

        The driver protocol is data independent, so one measured trace
        characterises all frames; batch processing reuses it instead of
        replaying millions of AXI transactions.  The replay itself is
        also data independent *across accelerator instances*: the trace
        is a pure function of the IP's latency/register map and the
        bus's access latency, so it is measured once per (IP, bus
        timing) pair and shared — a campaign sweep instantiating dozens
        of ECUs around one IP pays for one protocol replay, not one per
        ECU.
        """
        key = (id(self.ip), float(self.bus.access_latency))
        trace = _TRACE_CACHE.get(key, self.ip)
        if trace is None:
            zeros = np.zeros(self.ip.export.input_features, dtype=np.float64)
            _, trace = self.infer(zeros)
            _TRACE_CACHE.put(key, self.ip, trace)
        return trace


#: (id(ip), bus access latency) -> measured trace, anchored on the IP.
_TRACE_CACHE = KeyedWeakCache()
