"""Memory-mapped accelerator wrapper: the IP as the driver sees it.

The FINN-generated core is integrated "as a slave memory-mapped
peripheral device" (paper, Sec. I).  This wrapper binds an
:class:`~repro.finn.ipgen.AcceleratorIP` to an AXI-lite window and
reproduces the driver-visible protocol:

1. pack the quantised input vector into 32-bit words and write them to
   the input window;
2. write the start bit;
3. poll the status register until done;
4. read the classification result.

Every step is accounted as AXI transactions plus compute time, giving a
per-inference :class:`HWInferenceTrace` — the measured breakdown behind
the paper's 0.12 ms per-message figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SoCError
from repro.finn.build import quantize_input
from repro.finn.ipgen import AcceleratorIP
from repro.soc.axi import AXILiteBus

__all__ = ["HWInferenceTrace", "MemoryMappedAccelerator", "pack_words"]


def pack_words(values: np.ndarray, bits_per_value: int) -> list[int]:
    """Pack non-negative integers into little-endian 32-bit words.

    >>> pack_words(np.array([1, 0, 1, 1]), 1)
    [13]
    """
    if bits_per_value < 1 or bits_per_value > 32:
        raise SoCError(f"bits_per_value must be in [1, 32], got {bits_per_value}")
    words: list[int] = []
    word = 0
    offset = 0
    for value in np.asarray(values).astype(np.int64).tolist():
        if value < 0 or value >= (1 << bits_per_value):
            raise SoCError(f"value {value} does not fit in {bits_per_value} bits")
        word |= value << offset
        offset += bits_per_value
        while offset >= 32:
            words.append(word & 0xFFFFFFFF)
            word >>= 32
            offset -= 32
    if offset:
        words.append(word & 0xFFFFFFFF)
    return words


@dataclass(frozen=True)
class HWInferenceTrace:
    """Timing/transaction breakdown of one hardware inference."""

    mmio_writes: int
    mmio_reads: int
    write_seconds: float
    compute_seconds: float
    poll_seconds: float
    readback_seconds: float

    @property
    def total_seconds(self) -> float:
        """Driver-visible accelerator time (write + compute/poll + read)."""
        return self.write_seconds + max(self.compute_seconds, self.poll_seconds) + self.readback_seconds

    def to_dict(self) -> dict[str, float]:
        return {
            "mmio_writes": self.mmio_writes,
            "mmio_reads": self.mmio_reads,
            "write_seconds": self.write_seconds,
            "compute_seconds": self.compute_seconds,
            "poll_seconds": self.poll_seconds,
            "readback_seconds": self.readback_seconds,
            "total_seconds": self.total_seconds,
        }


class MemoryMappedAccelerator:
    """An :class:`AcceleratorIP` attached to an AXI-lite bus window."""

    def __init__(self, ip: AcceleratorIP, bus: AXILiteBus | None = None, base_address: int = 0xA000_0000):
        self.ip = ip
        self.bus = bus if bus is not None else AXILiteBus()
        self.base = base_address
        span = max(ip.register_map.span, 0x1000)
        self.port = self.bus.map_port(ip.name, base_address, span)
        self._input_bits = ip.export.input_quant.bit_width

    # -- register helpers ------------------------------------------------
    def _addr(self, offset: int) -> int:
        return self.base + offset

    def write_input(self, x_int: np.ndarray) -> int:
        """Write one quantised input vector; returns the MMIO write count."""
        words = pack_words(x_int, self._input_bits)
        expected = self.ip.register_map.input_words
        if len(words) != expected:
            raise SoCError(f"packed {len(words)} input words, register map expects {expected}")
        for index, word in enumerate(words):
            self.bus.write(self._addr(self.ip.register_map.INPUT_BASE + 4 * index), word)
        return len(words)

    def start(self) -> None:
        """Set the start bit (CTRL[0])."""
        self.bus.write(self._addr(self.ip.register_map.CTRL), 1)

    def infer(self, features: np.ndarray) -> tuple[int, HWInferenceTrace]:
        """Run one inference on a raw feature vector.

        Returns the predicted label and the timing trace.  Functional
        results come from the bit-exact dataflow graph; timing comes
        from the AXI cost model plus the core's cycle count.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise SoCError("infer() takes a single feature vector; use run_batch for many")
        x_int = quantize_input(self.ip.export, features[None, :])[0]

        writes_before = self.bus.writes
        busy_before = self.bus.busy_seconds
        self.write_input(x_int)
        self.start()
        write_seconds = self.bus.busy_seconds - busy_before
        mmio_writes = self.bus.writes - writes_before

        compute_seconds = self.ip.latency_seconds
        # Poll STATUS until done: one read per access-latency interval.
        polls = max(int(math.ceil(compute_seconds / self.bus.access_latency)), 1)
        reads_before = self.bus.reads
        busy_before = self.bus.busy_seconds
        label = int(self.ip.run(features[None, :])[0])
        for _ in range(polls - 1):
            self.bus.read(self._addr(self.ip.register_map.STATUS))
        self.bus.poke(self._addr(self.ip.register_map.STATUS), 1)  # device raises done
        self.bus.read(self._addr(self.ip.register_map.STATUS))
        poll_seconds = self.bus.busy_seconds - busy_before

        busy_before = self.bus.busy_seconds
        self.bus.poke(self._addr(self.ip.register_map.OUT_LABEL), label)
        result = self.bus.read(self._addr(self.ip.register_map.OUT_LABEL))
        readback_seconds = self.bus.busy_seconds - busy_before
        mmio_reads = self.bus.reads - reads_before

        trace = HWInferenceTrace(
            mmio_writes=mmio_writes,
            mmio_reads=mmio_reads,
            write_seconds=write_seconds,
            compute_seconds=compute_seconds,
            poll_seconds=poll_seconds,
            readback_seconds=readback_seconds,
        )
        return result, trace

    def run_batch(self, features: np.ndarray) -> np.ndarray:
        """Functional batch execution (no per-frame AXI accounting)."""
        return self.ip.run(features)

    def reference_trace(self) -> HWInferenceTrace:
        """The steady-state per-inference trace (identical every frame).

        The driver protocol is data independent, so one measured trace
        characterises all frames; batch processing reuses it instead of
        replaying millions of AXI transactions.
        """
        zeros = np.zeros(self.ip.export.input_features)
        _, trace = self.infer(zeros)
        return trace
