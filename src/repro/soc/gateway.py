"""Multi-channel CAN gateway with per-channel IDS-enabled ECUs.

The companion architectures (the lightweight IDS-ECU and SecCAN papers)
place the IDS inline on *live multi-channel traffic*: a central gateway
bridges several CAN segments (powertrain, body, telematics) and every
segment is scanned by its own detector instance.  This module makes
that deployment simulable at scale: each channel pairs a
:class:`~repro.can.bus.BusSimulator` with an
:class:`~repro.soc.ecu.IDSEnabledECU`, traffic is generated per segment
and pushed through the ECU's streaming engine, and the gateway
aggregates throughput, drops and alerts across channels.

**Scheduling model.**  :meth:`IDSGateway.monitor` holds one resumable
:class:`~repro.soc.ecu.ECUStreamSession` per channel and, by default,
*interleaves* them in virtual-time order: at every turn the session
with the earliest pending frame arrival advances one chunk (ties break
on attach order).  Channel state is fully per-session, so the
interleaving is prediction-identical to draining each channel
sequentially — what it buys is the correct *concurrency semantics*: a
flooded segment spends its own FIFO budget and drops its own frames,
while quieter segments keep their verdicts and their zero drop counts,
exactly as N independent receive paths behave in hardware.  Pass
``schedule="sequential"`` to reproduce the one-channel-at-a-time loop
(useful for A/B benchmarks).

**Arbitration model.**  With per-channel accelerator IPs every channel
drains at its own sustained rate.  Pass a
:class:`~repro.soc.arbiter.SharedAcceleratorArbiter` to model all
channels time-multiplexing *one* IP over the AXI interconnect instead:
the arbiter plans each channel's slot share (round-robin or
fixed-priority) and the gateway opens that channel's session at the
granted ``effective_drain_fps`` — the arbitration wait is folded into
the drain rate, so FIFO admission, drops and queueing delay all see
the slower shared service.

A channel whose bus produces no traffic in the window yields an *idle*
:class:`ChannelResult` (0 frames, 0 load, no report) rather than
aborting the run: a quiet body segment is an ordinary overnight state,
not an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.can.attacks import DoSAttacker
from repro.can.bus import BusSimulator, bus_load
from repro.can.faults import WireFaultModel
from repro.can.log import CaptureArray
from repro.errors import SoCError
from repro.soc.arbiter import ArbitrationGrant, SharedAcceleratorArbiter
from repro.soc.ecu import ECUReport, ECUStreamSession, IDSEnabledECU

__all__ = [
    "ChannelResult",
    "ENGINES",
    "GatewayReport",
    "IDSGateway",
    "PhaseOutcome",
    "SCHEDULES",
    "build_campaign_gateway",
    "build_segment_gateway",
    "gateway_from_buses",
]

#: Supported channel-advance orders for :meth:`IDSGateway.monitor`.
SCHEDULES = ("interleaved", "sequential")

#: Supported bus-simulation engines for :meth:`IDSGateway.monitor`.
#: ``"columnar"`` runs each channel's window through the vectorised
#: arbitration-replay kernel (:mod:`repro.can.fastbus`), which is
#: bit-exact against the event engine; ``"event"`` keeps the reference
#: per-frame simulator for A/B verification.
ENGINES = ("columnar", "event")


@dataclass(frozen=True)
class PhaseOutcome:
    """One attack phase's verdict on one channel: did the IDS catch it?

    The gateway computes these when :meth:`IDSGateway.monitor` is given
    per-channel ground-truth windows (``truth=``, e.g. from
    :meth:`repro.can.campaign.Campaign.truth_windows`): each serviced
    frame's verdict is attributed to the phase window it falls in —
    and, when the traffic's frame sources name the phase (campaign
    compilation names every attacker after its phase), to the phase
    that actually *produced* the frame, so overlapping phases never
    credit each other's detections.
    """

    phase: str  #: phase label (campaign phase name)
    channel: str
    start: float
    end: float  #: window end, including any label slack for delayed frames
    frames_observed: int  #: frames the channel captured inside the window
    attack_frames: int  #: ground-truth attack frames attributed to this phase
    serviced_attack_frames: int  #: attack frames that survived the RX FIFO
    #: serviced frames flagged inside the window — IDS *activity* during
    #: the phase, whatever provoked it (includes false alarms and
    #: overlapping phases' evidence)
    alerts: int
    #: flagged attack frames attributed to this phase; under queueing a
    #: frame can complete past the window end, so this is not a subset
    #: of ``alerts``
    true_alerts: int
    detection_latency_s: float | None  #: first true alert - phase start
    #: wire-corrupted attempts observed inside the window — counted (the
    #: IDS saw bus activity) but excluded from predictions and alerts
    corrupted_frames: int = 0

    @property
    def detected(self) -> bool:
        """At least one attack-labelled frame in the window was flagged."""
        return self.true_alerts > 0

    @property
    def window_recall(self) -> float:
        """Fraction of *serviced* attack frames in the window flagged."""
        if self.serviced_attack_frames == 0:
            return 0.0
        return self.true_alerts / self.serviced_attack_frames


@dataclass(frozen=True)
class ChannelResult:
    """What one gateway channel saw and did during a monitoring run.

    ``report`` is ``None`` for an idle channel (no traffic in the
    window); ``grant`` is set when a shared-accelerator arbiter was in
    force and records the slot share this channel was granted.
    ``capture`` is the channel's observed traffic in columnar form —
    what downstream phase attribution and labelling consume — and
    ``phase_outcomes`` carries the per-phase verdicts when ground-truth
    windows were supplied to the run.
    """

    name: str
    bus_load: float  #: fraction of wire time occupied on this segment
    report: ECUReport | None
    effective_drain_fps: float | None = None  #: drain rate the session ran at
    grant: ArbitrationGrant | None = None  #: shared-IP slot grant, if any
    capture: CaptureArray | None = None  #: observed traffic (None when idle)
    phase_outcomes: tuple[PhaseOutcome, ...] = ()  #: campaign phase verdicts
    #: wire-fault attribution (see :mod:`repro.can.faults`): corrupted
    #: attempts observed, successful retransmissions behind them, and
    #: attempts that drove a sender into bus-off
    corrupted_frames: int = 0
    retransmissions: int = 0
    bus_off_frames: int = 0

    @property
    def idle(self) -> bool:
        """True when the segment produced no traffic in the window."""
        return self.report is None

    @property
    def num_frames(self) -> int:
        return self.report.num_frames if self.report is not None else 0

    @property
    def num_processed(self) -> int:
        if self.report is None:
            return 0
        if self.report.num_processed is not None:
            return self.report.num_processed
        return self.report.num_frames

    @property
    def dropped(self) -> int:
        return self.report.fifo_dropped if self.report is not None else 0

    @property
    def num_alerts(self) -> int:
        return len(self.report.alerts) if self.report is not None else 0


@dataclass
class GatewayReport:
    """Aggregate view over all channels of one monitoring run."""

    name: str
    duration: float
    channels: list[ChannelResult] = field(default_factory=list)
    schedule: str = "interleaved"  #: channel-advance order used
    arbitration_policy: str | None = None  #: shared-IP policy, if any
    engine: str = "columnar"  #: bus-simulation engine the run used

    @property
    def total_frames(self) -> int:
        return sum(c.num_frames for c in self.channels)

    @property
    def total_processed(self) -> int:
        return sum(c.num_processed for c in self.channels)

    @property
    def total_dropped(self) -> int:
        return sum(c.dropped for c in self.channels)

    @property
    def total_alerts(self) -> int:
        return sum(c.num_alerts for c in self.channels)

    @property
    def total_corrupted(self) -> int:
        """Wire-corrupted attempts observed across all segments."""
        return sum(c.corrupted_frames for c in self.channels)

    @property
    def total_retransmissions(self) -> int:
        """Successful retransmissions behind corrupted attempts."""
        return sum(c.retransmissions for c in self.channels)

    @property
    def total_bus_off(self) -> int:
        """Attempts that drove their sender into bus-off."""
        return sum(c.bus_off_frames for c in self.channels)

    @property
    def aggregate_offered_fps(self) -> float:
        """Frames/second offered to the gateway across all segments."""
        return self.total_frames / self.duration

    @property
    def aggregate_processed_fps(self) -> float:
        """Frames/second actually inspected across all segments."""
        return self.total_processed / self.duration

    @property
    def aggregate_sustained_fps(self) -> float:
        """Sum of the per-channel sustained drain rates (capacity).

        Under shared-IP arbitration each channel's rate is its granted
        share, so this is the shared pipeline's aggregate capacity, not
        N independent copies of it.
        """
        return sum(
            c.report.throughput_fps for c in self.channels if c.report is not None
        )

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames lost to RX-FIFO overflow."""
        return self.total_dropped / self.total_frames if self.total_frames else 0.0

    @property
    def phase_outcomes(self) -> list[PhaseOutcome]:
        """Every channel's phase verdicts, flattened (campaign runs)."""
        return [outcome for c in self.channels for outcome in c.phase_outcomes]

    @property
    def phases_detected(self) -> int:
        """Phases with at least one true alert (of those that inject frames)."""
        return sum(1 for outcome in self.phase_outcomes if outcome.detected)

    def channel(self, name: str) -> ChannelResult:
        """Look one channel's result up by name."""
        for result in self.channels:
            if result.name == name:
                return result
        raise SoCError(f"no channel {name!r} in gateway report")

    def summary(self) -> str:
        mode = self.schedule
        if self.arbitration_policy is not None:
            mode += f", shared IP ({self.arbitration_policy})"
        lines = [
            f"Gateway {self.name!r}: {len(self.channels)} channels, "
            f"{self.duration:g} s of traffic [{mode}]",
            f"  offered:   {self.total_frames} frames "
            f"({self.aggregate_offered_fps:,.0f} msg/s aggregate)",
            f"  inspected: {self.total_processed} frames "
            f"({self.aggregate_processed_fps:,.0f} msg/s), "
            f"dropped {self.total_dropped} ({100.0 * self.drop_rate:.2f}%)",
            f"  capacity:  {self.aggregate_sustained_fps:,.0f} msg/s sustained "
            f"across channels, {self.total_alerts} alerts raised",
        ]
        for channel in self.channels:
            if channel.report is None:
                lines.append(f"  [{channel.name}] idle (no traffic in window)")
                continue
            report = channel.report
            extra = ""
            if channel.grant is not None:
                extra = (
                    f", drain {channel.effective_drain_fps:,.0f} msg/s "
                    f"({100.0 / channel.grant.slot_factor:.0f}% of shared-IP slots)"
                )
            wire_note = (
                f"{channel.corrupted_frames} corrupted, "
                if channel.corrupted_frames
                else ""
            )
            lines.append(
                f"  [{channel.name}] load {100.0 * channel.bus_load:.1f}%, "
                f"{report.num_frames} frames, "
                f"{report.fifo_dropped} dropped, "
                f"{wire_note}"
                f"{len(report.alerts)} alerts"
                + (
                    f", F1 {report.metrics['f1']:.2f}"
                    if report.metrics
                    else ""
                )
                + extra
            )
            for outcome in channel.phase_outcomes:
                latency = (
                    f"{1e3 * outcome.detection_latency_s:.1f} ms"
                    if outcome.detection_latency_s is not None
                    else "n/a"
                )
                lines.append(
                    f"    phase {outcome.phase}: "
                    f"{'DETECTED' if outcome.detected else 'missed'} "
                    f"(latency {latency}, "
                    f"{outcome.true_alerts}/{outcome.serviced_attack_frames} "
                    f"attack frames flagged)"
                )
        return "\n".join(lines)


def _phase_outcomes(
    channel: str,
    capture: CaptureArray,
    sources: np.ndarray,
    report: ECUReport,
    windows: Sequence[tuple[str, float, float]],
    corrupted: np.ndarray | None = None,
) -> tuple[PhaseOutcome, ...]:
    """Attribute one channel's verdicts to its ground-truth phase windows.

    Campaign truth windows carry an ``injects`` flag (4-tuples), and
    campaign-compiled traffic names every attacker after its phase, so
    attack frames attribute purely by *source*: overlapping phases
    never credit each other's detections, and a phase that puts no
    frames on the wire (drop-mode suspension) honestly reports zero —
    never a neighbour's flood.  Hand-written 3-tuple windows (free-form
    labels, no compiled sources) fall back to window containment.
    ``alerts`` stays window-based either way — it counts IDS firings
    during the phase, whatever provoked them.

    Serviced frames are located via ``report.kept_indices`` (identity
    when the FIFO never dropped), so a phase whose attack frames were
    flood casualties is honestly reported: its ``attack_frames`` stay,
    its ``serviced_attack_frames`` shrink.
    """
    kept = (
        report.kept_indices
        if report.kept_indices is not None
        else np.arange(len(capture))
    )
    serviced_ts = capture.timestamps[kept]
    serviced_labels = capture.labels[kept]
    serviced_sources = sources[kept]
    predictions = report.predictions
    outcomes = []
    for window in windows:
        phase_name, start, end = window[0], window[1], window[2]
        from_campaign = len(window) > 3
        observed = (capture.timestamps >= start) & (capture.timestamps < end)
        in_window = (serviced_ts >= start) & (serviced_ts < end)
        if from_campaign:
            # Source attribution: the frames this phase actually put on
            # the wire, wherever arbitration queueing made them
            # *complete* — under a flood, frames released inside the
            # window routinely finish past its end.  A phase without
            # sourced frames (drop-mode suspension) counts zero.
            attack_all = (capture.labels == 1) & (sources == phase_name)
            attack_serviced = (serviced_labels == 1) & (serviced_sources == phase_name)
        else:
            attack_all = observed & (capture.labels == 1)
            attack_serviced = in_window & (serviced_labels == 1)
        alerts = in_window & (predictions == 1)
        true_alerts = (predictions == 1) & attack_serviced
        detection_latency = None
        if np.any(true_alerts):
            detection_latency = float(serviced_ts[true_alerts].min() - start)
        outcomes.append(
            PhaseOutcome(
                phase=phase_name,
                channel=channel,
                start=start,
                end=end,
                frames_observed=int(observed.sum()),
                attack_frames=int(attack_all.sum()),
                serviced_attack_frames=int(attack_serviced.sum()),
                alerts=int(alerts.sum()),
                true_alerts=int(true_alerts.sum()),
                detection_latency_s=detection_latency,
                corrupted_frames=(
                    int((observed & corrupted).sum()) if corrupted is not None else 0
                ),
            )
        )
    return tuple(outcomes)


class IDSGateway:
    """Several CAN segments, each monitored by its own IDS-ECU.

    Channels are independent buses running concurrently (the simulator
    serialises each segment separately, as a real multi-port gateway's
    controllers do); the ECUs may share detector IPs or carry
    per-segment models, and may share one accelerator via a
    :class:`~repro.soc.arbiter.SharedAcceleratorArbiter`.
    """

    def __init__(self, name: str = "can-gateway"):
        self.name = name
        self._channels: dict[str, tuple[BusSimulator, IDSEnabledECU]] = {}

    def attach_channel(self, name: str, bus: BusSimulator, ecu: IDSEnabledECU) -> None:
        """Register a monitored segment under a unique channel name."""
        if not name or not name.replace("-", "_").isidentifier():
            raise SoCError(f"channel name must be identifier-like, got {name!r}")
        if name in self._channels:
            raise SoCError(f"channel {name!r} already attached")
        self._channels[name] = (bus, ecu)

    @property
    def channel_names(self) -> list[str]:
        return list(self._channels)

    def monitor(
        self,
        duration: float,
        chunk_size: int = 4096,
        drain_fps: float | None = None,
        with_metrics: bool = True,
        schedule: str = "interleaved",
        arbiter: SharedAcceleratorArbiter | None = None,
        truth: Mapping[str, Sequence[tuple]] | None = None,
        engine: str = "columnar",
        faults: WireFaultModel | None = None,
    ) -> GatewayReport:
        """Run every segment for ``duration`` seconds and scan its traffic.

        Each channel's frames stream through its ECU with real FIFO
        backpressure (see :meth:`IDSEnabledECU.process_stream`);
        ``drain_fps`` overrides the per-ECU sustained rate, e.g. to
        model a slower shared post-processing stage.

        ``schedule`` picks the channel-advance order: ``"interleaved"``
        (default) steps sessions in virtual-time order of their next
        pending arrival; ``"sequential"`` drains one channel at a time
        in attach order.  Both produce identical per-channel reports —
        sessions are independent — so the sequential path remains
        available for A/B benchmarking of the scheduler itself.

        ``arbiter`` models every active channel time-multiplexing one
        shared accelerator IP: each channel's session drains at its
        granted share of the (possibly ``drain_fps``-overridden) base
        rate instead of the full rate.

        ``truth`` maps channel names to ground-truth phase windows —
        ``(phase_name, start, end, injects)`` from a campaign's
        :meth:`~repro.can.campaign.Campaign.truth_windows` (attack
        frames then attribute by their *source*, the attacker named
        after the phase), or hand-written ``(label, start, end)``
        triples attributed by window containment.  Either turns on
        campaign-aware labelling: each channel's verdicts are reported
        as :class:`PhaseOutcome` rows on the channel result.

        ``engine`` picks the bus simulation path: ``"columnar"``
        (default) runs each channel's window through the vectorised
        arbitration-replay kernel — bit-exact against the event engine,
        without per-frame record objects — while ``"event"`` keeps the
        reference :meth:`~repro.can.bus.BusSimulator.run` loop (buses
        lacking a ``capture`` method fall back to it automatically).

        ``faults`` enables the wire-level fault layer on every segment:
        each channel simulates under ``faults.for_channel(name)`` (an
        independent per-channel corruption stream from one seed).
        Corrupted attempts are flagged by the bus engines, counted on
        the :class:`ChannelResult` (with retransmissions and bus-off
        attempts) and *excluded* from the ECU's predictions — the IDS
        degrades gracefully instead of classifying garbage.  Buses
        whose attached sources inject targeted faults (the bus-off
        attacker) produce the same attribution even with no ``faults``
        model passed here.
        """
        if not self._channels:
            raise SoCError("gateway has no channels attached")
        if duration <= 0:
            raise SoCError(f"duration must be positive, got {duration}")
        if schedule not in SCHEDULES:
            raise SoCError(f"unknown schedule {schedule!r}; choose from {SCHEDULES}")
        if engine not in ENGINES:
            raise SoCError(f"unknown engine {engine!r}; choose from {ENGINES}")
        if truth is not None:
            for channel in truth:
                if channel not in self._channels:
                    raise SoCError(f"truth windows name unknown channel {channel!r}")

        # Phase 1: capture every segment's window, flagging idle ones.
        # For channels with truth windows, frame sources (which node
        # released each frame) ride along for phase attribution:
        # campaign-compiled attackers are named after their phase, so
        # overlapping phases stay distinguishable.  Other channels skip
        # the per-record extraction — it is pure dead weight there.
        traffic: dict[str, tuple[float, CaptureArray, np.ndarray | None]] = {}
        # Wire-fault attribution per channel: (corrupted mask | None,
        # retransmission count, bus-off attempt count).
        wire: dict[str, tuple[np.ndarray | None, int, int]] = {}
        for name, (bus, ecu) in self._channels.items():
            channel_faults = faults.for_channel(name) if faults is not None else None
            want_sources = truth is not None and bool(truth.get(name))
            columnar = getattr(bus, "capture", None) if engine == "columnar" else None
            if columnar is not None:
                # The keyword is only passed when a model is in force so
                # plain caching wrappers (campaign sweeps) stay valid.
                window = (
                    columnar(duration, faults=channel_faults)
                    if channel_faults is not None
                    else columnar(duration)
                )
                corrupted_mask = window.corrupted
                wire[name] = (
                    corrupted_mask,
                    int(window.retry_counts[~window.corrupted_mask].sum()),
                    int(window.bus_off_mask.sum()),
                )
                traffic[name] = (
                    window.bus_load(),
                    window.capture,
                    window.sources if want_sources else None,
                )
                continue
            bus_records = (
                bus.run(duration, faults=channel_faults)
                if channel_faults is not None
                else bus.run(duration)
            )
            sources = None
            if want_sources:
                sources = np.array([record.source for record in bus_records], dtype=str)
            corrupted_mask = np.array(
                [record.corrupted for record in bus_records], dtype=bool
            )
            wire[name] = (
                corrupted_mask if bool(corrupted_mask.any()) else None,
                sum(r.retries for r in bus_records if not r.corrupted),
                sum(1 for r in bus_records if r.bus_off),
            )
            traffic[name] = (
                bus_load(bus_records, duration, bus.bitrate),
                CaptureArray.from_bus_records(bus_records),
                sources,
            )
        # A channel is active when it has at least one *clean* frame to
        # scan; a segment whose every observed frame was corrupted
        # degrades to an idle result carrying the fault counters.
        active = []
        for name, (_, capture, _) in traffic.items():
            corrupted_mask = wire[name][0]
            bad = int(corrupted_mask.sum()) if corrupted_mask is not None else 0
            if len(capture) - bad > 0:
                active.append(name)

        # Phase 2: plan drain rates (shared-IP arbitration, if any).
        grants: dict[str, ArbitrationGrant] = {}
        if arbiter is not None and active:
            base = {
                name: (
                    drain_fps
                    if drain_fps is not None
                    else self._channels[name][1].sustained_fps()
                )
                for name in active
            }
            grants = arbiter.plan(base)

        # Phase 3: open one resumable session per active channel.
        sessions: dict[str, ECUStreamSession] = {}
        for name in active:
            _, ecu = self._channels[name]
            channel_drain = (
                grants[name].effective_drain_fps if name in grants else drain_fps
            )
            sessions[name] = ecu.open_stream(
                traffic[name][1],  # the channel's CaptureArray
                chunk_size=chunk_size,
                drain_fps=channel_drain,
                with_metrics=with_metrics,
                corrupted=wire[name][0],
            )

        # Phase 4: advance sessions to completion in the chosen order.
        order = {name: position for position, name in enumerate(self._channels)}
        if schedule == "sequential":
            for name in active:
                session = sessions[name]
                while not session.done:
                    session.step()
        else:
            pending = [name for name in active if not sessions[name].done]
            while pending:
                name = min(pending, key=lambda n: (sessions[n].next_arrival, order[n]))
                sessions[name].step()
                if sessions[name].done:
                    pending.remove(name)

        # Phase 5: aggregate, attributing verdicts to truth windows.
        results: list[ChannelResult] = []
        for name in self._channels:
            load, capture, sources = traffic[name]
            corrupted_mask, retransmissions, bus_off_frames = wire[name]
            corrupted_frames = (
                int(corrupted_mask.sum()) if corrupted_mask is not None else 0
            )
            if name not in sessions:
                results.append(
                    ChannelResult(
                        name=name,
                        bus_load=load,
                        report=None,
                        capture=capture if len(capture) else None,
                        corrupted_frames=corrupted_frames,
                        retransmissions=retransmissions,
                        bus_off_frames=bus_off_frames,
                    )
                )
                continue
            session = sessions[name]
            report = session.finish()
            outcomes: tuple[PhaseOutcome, ...] = ()
            if truth is not None and truth.get(name):
                outcomes = _phase_outcomes(
                    name, capture, sources, report, truth[name], corrupted_mask
                )
            results.append(
                ChannelResult(
                    name=name,
                    bus_load=load,
                    report=report,
                    effective_drain_fps=session.drain_fps,
                    grant=grants.get(name),
                    capture=capture,
                    phase_outcomes=outcomes,
                    corrupted_frames=corrupted_frames,
                    retransmissions=retransmissions,
                    bus_off_frames=bus_off_frames,
                )
            )
        return GatewayReport(
            name=self.name,
            duration=duration,
            channels=results,
            schedule=schedule,
            arbitration_policy=arbiter.policy if arbiter is not None else None,
            engine=engine,
        )


def build_segment_gateway(
    ip,
    channels: int = 3,
    flood_window: tuple[float, float] | None = None,
    flood_interval: float = 0.0003,
    names: Sequence[str] | None = None,
    vehicle_seed: int = 0,
    ecu_seed: int = 0,
    fifo_capacity: int = 64,
    name: str = "segment-gateway",
) -> IDSGateway:
    """The canonical multi-segment scenario: N buses, channel 0 flooded.

    Builds a gateway of ``channels`` same-family vehicle segments
    (consecutive ``vehicle_seed`` values), each scanned by a fresh
    :class:`~repro.soc.ecu.IDSEnabledECU` carrying ``ip`` behind the
    deployed bit encoding; when ``flood_window`` is given, the first
    segment is DoS-flooded over that interval.  This is the shared
    fixture behind E5's gateway rows, the scheduler tests and the
    gateway benchmark — one place to change the scenario.
    """
    from repro.datasets.carhacking import build_vehicle_bus
    from repro.datasets.features import BitFeatureEncoder

    if names is not None and len(names) != channels:
        raise SoCError(f"expected {channels} channel names, got {len(names)}")
    gateway = IDSGateway(name)
    for index in range(channels):
        channel_name = names[index] if names is not None else f"segment{index}"
        bus = build_vehicle_bus(vehicle_seed=vehicle_seed + index)
        if index == 0 and flood_window is not None:
            bus.attach(
                DoSAttacker([flood_window], interval=flood_interval, seed=vehicle_seed)
            )
        gateway.attach_channel(
            channel_name,
            bus,
            IDSEnabledECU(
                ip,
                BitFeatureEncoder(),
                name=f"{channel_name}-ids",
                seed=ecu_seed + index,
                fifo_capacity=fifo_capacity,
            ),
        )
    return gateway


def gateway_from_buses(
    ip,
    buses: Mapping[str, BusSimulator],
    ecu_seed: int = 0,
    fifo_capacity: int = 64,
    encoder=None,
    name: str = "campaign-gateway",
) -> IDSGateway:
    """A gateway pairing each named bus with a fresh IDS-ECU carrying ``ip``.

    ``buses`` maps channel names to traffic sources (anything with the
    :class:`~repro.can.bus.BusSimulator` run interface — the campaign
    sweep passes caching wrappers so both gateway deployments replay
    one simulated window).
    """
    from repro.datasets.features import BitFeatureEncoder

    gateway = IDSGateway(name)
    for index, (channel, bus) in enumerate(buses.items()):
        gateway.attach_channel(
            channel,
            bus,
            IDSEnabledECU(
                ip,
                encoder if encoder is not None else BitFeatureEncoder(),
                name=f"{channel}-ids",
                seed=ecu_seed + index,
                fifo_capacity=fifo_capacity,
            ),
        )
    return gateway


def build_campaign_gateway(
    ip,
    campaign,
    vehicle_seed: int = 0,
    ecu_seed: int = 0,
    fifo_capacity: int = 64,
    encoder=None,
    name: str | None = None,
    profile: str = "full",
) -> IDSGateway:
    """A gateway with one IDS-ECU per channel of a compiled campaign.

    Compiles ``campaign`` (a :class:`repro.can.campaign.Campaign`) onto
    per-channel buses — each carrying the vehicle topology ``profile``
    (:data:`~repro.datasets.carhacking.VEHICLE_PROFILES`) — and pairs
    each with a fresh :class:`~repro.soc.ecu.IDSEnabledECU` carrying
    ``ip``.  Run it with ``gateway.monitor(duration=campaign.duration,
    truth=campaign.truth_windows())`` to get campaign-aware per-phase
    verdicts on every channel.  This is the fleet runner's per-vehicle
    construction path: one call builds one vehicle's gateway.
    """
    from repro.can.campaign import compile_campaign

    return gateway_from_buses(
        ip,
        compile_campaign(campaign, vehicle_seed=vehicle_seed, profile=profile),
        ecu_seed=ecu_seed,
        fifo_capacity=fifo_capacity,
        encoder=encoder,
        name=name or f"campaign-{campaign.name}",
    )
