"""Multi-channel CAN gateway with per-channel IDS-enabled ECUs.

The companion architectures (the lightweight IDS-ECU and SecCAN papers)
place the IDS inline on *live multi-channel traffic*: a central gateway
bridges several CAN segments (powertrain, body, telematics) and every
segment is scanned by its own detector instance.  This module makes
that deployment simulable at scale: each channel pairs a
:class:`~repro.can.bus.BusSimulator` with an
:class:`~repro.soc.ecu.IDSEnabledECU`, traffic is generated per segment
and pushed through the ECU's streaming engine
(:meth:`~repro.soc.ecu.IDSEnabledECU.process_stream`), and the gateway
aggregates throughput, drops and alerts across channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.can.bus import BusSimulator, bus_load
from repro.can.log import records_from_bus
from repro.errors import SoCError
from repro.soc.ecu import ECUReport, IDSEnabledECU

__all__ = ["ChannelResult", "GatewayReport", "IDSGateway"]


@dataclass(frozen=True)
class ChannelResult:
    """What one gateway channel saw and did during a monitoring run."""

    name: str
    bus_load: float  #: fraction of wire time occupied on this segment
    report: ECUReport

    @property
    def num_frames(self) -> int:
        return self.report.num_frames

    @property
    def dropped(self) -> int:
        return self.report.fifo_dropped


@dataclass
class GatewayReport:
    """Aggregate view over all channels of one monitoring run."""

    name: str
    duration: float
    channels: list[ChannelResult] = field(default_factory=list)

    @property
    def total_frames(self) -> int:
        return sum(c.report.num_frames for c in self.channels)

    @property
    def total_processed(self) -> int:
        return sum(
            c.report.num_processed if c.report.num_processed is not None else c.report.num_frames
            for c in self.channels
        )

    @property
    def total_dropped(self) -> int:
        return sum(c.report.fifo_dropped for c in self.channels)

    @property
    def total_alerts(self) -> int:
        return sum(len(c.report.alerts) for c in self.channels)

    @property
    def aggregate_offered_fps(self) -> float:
        """Frames/second offered to the gateway across all segments."""
        return self.total_frames / self.duration

    @property
    def aggregate_processed_fps(self) -> float:
        """Frames/second actually inspected across all segments."""
        return self.total_processed / self.duration

    @property
    def aggregate_sustained_fps(self) -> float:
        """Sum of the per-channel II-gated sustained rates (capacity)."""
        return sum(c.report.throughput_fps for c in self.channels)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames lost to RX-FIFO overflow."""
        return self.total_dropped / self.total_frames if self.total_frames else 0.0

    def summary(self) -> str:
        lines = [
            f"Gateway {self.name!r}: {len(self.channels)} channels, "
            f"{self.duration:g} s of traffic",
            f"  offered:   {self.total_frames} frames "
            f"({self.aggregate_offered_fps:,.0f} msg/s aggregate)",
            f"  inspected: {self.total_processed} frames "
            f"({self.aggregate_processed_fps:,.0f} msg/s), "
            f"dropped {self.total_dropped} ({100.0 * self.drop_rate:.2f}%)",
            f"  capacity:  {self.aggregate_sustained_fps:,.0f} msg/s sustained "
            f"across channels, {self.total_alerts} alerts raised",
        ]
        for channel in self.channels:
            report = channel.report
            lines.append(
                f"  [{channel.name}] load {100.0 * channel.bus_load:.1f}%, "
                f"{report.num_frames} frames, "
                f"{report.fifo_dropped} dropped, "
                f"{len(report.alerts)} alerts"
                + (
                    f", F1 {report.metrics['f1']:.2f}"
                    if report.metrics
                    else ""
                )
            )
        return "\n".join(lines)


class IDSGateway:
    """Several CAN segments, each monitored by its own IDS-ECU.

    Channels are independent buses running concurrently (the simulator
    serialises each segment separately, as a real multi-port gateway's
    controllers do); the ECUs may share detector IPs or carry
    per-segment models.
    """

    def __init__(self, name: str = "can-gateway"):
        self.name = name
        self._channels: dict[str, tuple[BusSimulator, IDSEnabledECU]] = {}

    def attach_channel(self, name: str, bus: BusSimulator, ecu: IDSEnabledECU) -> None:
        """Register a monitored segment under a unique channel name."""
        if not name or not name.replace("-", "_").isidentifier():
            raise SoCError(f"channel name must be identifier-like, got {name!r}")
        if name in self._channels:
            raise SoCError(f"channel {name!r} already attached")
        self._channels[name] = (bus, ecu)

    @property
    def channel_names(self) -> list[str]:
        return list(self._channels)

    def monitor(
        self,
        duration: float,
        chunk_size: int = 4096,
        drain_fps: float | None = None,
        with_metrics: bool = True,
    ) -> GatewayReport:
        """Run every segment for ``duration`` seconds and scan its traffic.

        Each channel's frames stream through its ECU with real FIFO
        backpressure (see :meth:`IDSEnabledECU.process_stream`);
        ``drain_fps`` overrides the per-ECU sustained rate, e.g. to
        model a slower shared post-processing stage.
        """
        if not self._channels:
            raise SoCError("gateway has no channels attached")
        if duration <= 0:
            raise SoCError(f"duration must be positive, got {duration}")
        results: list[ChannelResult] = []
        for name, (bus, ecu) in self._channels.items():
            bus_records = bus.run(duration)
            records = records_from_bus(bus_records)
            if not records:
                raise SoCError(f"channel {name!r} produced no traffic in {duration} s")
            report = ecu.process_stream(
                records,
                chunk_size=chunk_size,
                drain_fps=drain_fps,
                with_metrics=with_metrics,
            )
            results.append(
                ChannelResult(
                    name=name,
                    bus_load=bus_load(bus_records, duration, bus.bitrate),
                    report=report,
                )
            )
        return GatewayReport(name=self.name, duration=duration, channels=results)
