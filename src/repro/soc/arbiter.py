"""Shared-accelerator arbitration: N channels, one IDS IP.

The multi-model deployment puts several detectors on one overlay, but a
cost-constrained gateway can go further and point several *channels* at
a single accelerator: each CAN segment still has its own RX FIFO and
software path, while inferences time-multiplex over the one core behind
the AXI interconnect.  This module models that contention
deterministically, as a closed-form slowdown per channel rather than a
cycle-accurate interconnect replay:

* every inference occupies the shared core for one *service slot* (the
  channel's standalone service interval, plus an optional arbitration
  overhead for the AXI handover);
* under **round-robin** arbitration each of the ``N`` contending
  channels owns every N-th slot, so its effective service interval
  stretches by a factor of ``N``;
* under **fixed-priority** arbitration a channel of priority rank ``r``
  (0 = highest) waits for the ``r`` higher-priority channels each
  cycle, plus — arbitration being non-preemptive, like CAN itself —
  up to one in-flight lower-priority inference.  Its interval stretches
  by ``r + 1`` slots, ``+ 1`` more when lower-priority channels exist;
  because those per-channel worst-case waits overlap, the raw factors
  would grant more than one inference per service slot in aggregate, so
  they are uniformly scaled up until the granted slot shares
  (``sum of 1/slot_factor``) total at most 1 — the single core is never
  oversubscribed, and the priority ordering is preserved.

The result is an :class:`ArbitrationGrant` per channel whose
``effective_drain_fps`` is what the gateway feeds to
:func:`repro.soc.ecu.simulate_fifo_admission` (via the stream session's
``drain_fps``): the arbitration wait is folded into the channel's drain
rate, so FIFO occupancy, drops and queueing delay all see the slower
shared service without any change to the admission model itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import SoCError

__all__ = ["ARBITRATION_POLICIES", "ArbitrationGrant", "SharedAcceleratorArbiter"]

#: Supported time-multiplexing policies.
ARBITRATION_POLICIES = ("round-robin", "fixed-priority")


@dataclass(frozen=True)
class ArbitrationGrant:
    """One channel's share of the shared accelerator.

    Attributes
    ----------
    channel:
        Channel name the grant applies to.
    rank:
        Service-order position (priority rank for fixed-priority,
        plan order for round-robin).
    slot_factor:
        Effective service-interval multiplier (>= 1): how many service
        slots elapse between this channel's consecutive inferences
        under full contention.  Across all grants of one plan the slot
        shares (``1/slot_factor``) sum to at most 1: the shared core is
        never granted more than one inference per service slot.
    base_drain_fps:
        The channel's standalone sustained rate, had it owned the IP.
    effective_drain_fps:
        The arbitrated rate actually granted (<= ``base_drain_fps``).
    """

    channel: str
    rank: int
    slot_factor: float
    base_drain_fps: float
    effective_drain_fps: float

    @property
    def wait_slots(self) -> float:
        """Service slots spent waiting per inference (0 = no contention)."""
        return self.slot_factor - 1

    @property
    def slowdown(self) -> float:
        """``base_drain_fps / effective_drain_fps`` (>= 1)."""
        return self.base_drain_fps / self.effective_drain_fps


class SharedAcceleratorArbiter:
    """Deterministic time-multiplexing of one accelerator across channels.

    Parameters
    ----------
    policy:
        ``"round-robin"`` (equal slot shares) or ``"fixed-priority"``
        (lower priority number is served first; ties and channels with
        no explicit priority fall back to plan order).
    slot_overhead_s:
        Extra seconds per arbitration slot (AXI handover, driver
        context switch between channel buffers).  Added to each
        channel's standalone service interval before the slot factor
        is applied.
    priorities:
        Optional ``{channel: priority}`` map for the fixed-priority
        policy; unlisted channels rank below all listed ones.
    """

    def __init__(
        self,
        policy: str = "round-robin",
        slot_overhead_s: float = 0.0,
        priorities: Mapping[str, int] | None = None,
    ):
        if policy not in ARBITRATION_POLICIES:
            raise SoCError(
                f"unknown arbitration policy {policy!r}; choose from {ARBITRATION_POLICIES}"
            )
        if slot_overhead_s < 0:
            raise SoCError(f"slot overhead must be >= 0, got {slot_overhead_s}")
        self.policy = policy
        self.slot_overhead_s = float(slot_overhead_s)
        self.priorities = dict(priorities or {})

    def _ranks(self, channels: list[str]) -> dict[str, int]:
        """Service-order rank per channel (0 = served first)."""
        if self.policy == "round-robin":
            return {name: position for position, name in enumerate(channels)}
        explicit = {name: self.priorities[name] for name in channels if name in self.priorities}
        ordered = sorted(
            channels,
            key=lambda name: (
                explicit.get(name, max(explicit.values(), default=0) + 1),
                channels.index(name),
            ),
        )
        return {name: rank for rank, name in enumerate(ordered)}

    def _slot_factor(self, rank: int, num_channels: int) -> int:
        if num_channels == 1:
            return 1
        if self.policy == "round-robin":
            return num_channels
        # Fixed priority, non-preemptive: rank r waits for the r
        # higher-priority channels each cycle, plus one in-flight
        # lower-priority inference when any channel ranks below it.
        return rank + 1 + (1 if rank < num_channels - 1 else 0)

    def plan(self, base_drain_fps: Mapping[str, float]) -> dict[str, ArbitrationGrant]:
        """Grant each channel its arbitrated drain rate.

        ``base_drain_fps`` maps channel name to the sustained rate the
        channel would achieve alone on the IP; iteration order is the
        plan order (the gateway passes channels in attach order).
        """
        if not base_drain_fps:
            raise SoCError("cannot arbitrate zero channels")
        channels = list(base_drain_fps)
        for name, fps in base_drain_fps.items():
            if fps <= 0:
                raise SoCError(f"channel {name!r} base drain rate must be positive, got {fps}")
        ranks = self._ranks(channels)
        raw = {name: self._slot_factor(ranks[name], len(channels)) for name in channels}
        # Conservation: the worst-case waits the raw factors model can
        # overlap (fixed priority: 2,3,3 for three channels grants 7/6
        # of a slot per slot), so scale every factor until the granted
        # shares sum to at most one inference per service slot.
        utilisation = sum(1.0 / factor for factor in raw.values())
        scale = max(1.0, utilisation)
        grants: dict[str, ArbitrationGrant] = {}
        for name in channels:
            base = float(base_drain_fps[name])
            factor = raw[name] * scale
            effective_interval = factor * (1.0 / base + self.slot_overhead_s)
            grants[name] = ArbitrationGrant(
                channel=name,
                rank=ranks[name],
                slot_factor=factor,
                base_drain_fps=base,
                effective_drain_fps=1.0 / effective_interval,
            )
        return grants

    def __repr__(self) -> str:
        return (
            f"SharedAcceleratorArbiter(policy={self.policy!r}, "
            f"slot_overhead_s={self.slot_overhead_s!r})"
        )
