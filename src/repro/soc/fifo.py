"""The receive-side message FIFO.

"the packet is copied into a FIFO style buffer capturing a time-series
of messages, which is examined by our IDS IP" — this is that buffer: a
bounded ring of captured frames between the CAN interface and the
accelerator, with overflow accounting so saturation during DoS floods
is observable rather than silent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.errors import SoCError

__all__ = ["RxFIFO"]

T = TypeVar("T")


@dataclass
class RxFIFO(Generic[T]):
    """Bounded FIFO with drop-oldest overflow policy.

    Drop-oldest matches the hardware buffer the paper describes: the
    IDS always sees the most recent traffic window; old unprocessed
    frames age out.
    """

    capacity: int = 64
    _queue: deque = field(default_factory=deque)
    pushed: int = 0
    popped: int = 0
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SoCError(f"FIFO capacity must be >= 1, got {self.capacity}")

    def push(self, item: T) -> None:
        """Insert an item, evicting the oldest when full."""
        if len(self._queue) >= self.capacity:
            self._queue.popleft()
            self.dropped += 1
        self._queue.append(item)
        self.pushed += 1

    def transfer(self, count: int) -> None:
        """Account a batched push-and-drain of ``count`` items.

        The batch/stream paths service every admitted frame as it
        arrives (push immediately followed by pop), so net occupancy
        never grows; this records the traffic without ``count`` Python
        round-trips through :meth:`push`/:meth:`pop`.
        """
        if count < 0:
            raise SoCError(f"transfer count must be >= 0, got {count}")
        self.pushed += count
        self.popped += count

    def record_overflow(self, count: int) -> None:
        """Account ``count`` frames that entered but were lost to overflow.

        Every arrival counts as a push (mirroring :meth:`push`, where the
        incoming frame is stored and an older one is evicted); the
        evictions accumulate in ``dropped``.
        """
        if count < 0:
            raise SoCError(f"overflow count must be >= 0, got {count}")
        self.pushed += count
        self.dropped += count

    def pop(self) -> T:
        """Remove and return the oldest item."""
        if not self._queue:
            raise SoCError("pop from empty RxFIFO")
        self.popped += 1
        return self._queue.popleft()

    def peek_window(self, count: int, require_full: bool = False) -> list[T]:
        """The newest ``count`` items, oldest first (time-series window).

        Return contract: the result holds ``min(count, len(self))``
        items — during cold start (fewer than ``count`` frames buffered
        yet) the window is *short*, never zero-padded.  Window encoders
        that need exactly ``count`` frames must either check ``len()``
        themselves or pass ``require_full=True``, which raises
        :class:`~repro.errors.SoCError` on a short window instead of
        silently returning one that could be mistaken for a full
        history.
        """
        if count < 1:
            raise SoCError(f"window size must be >= 1, got {count}")
        if require_full and len(self._queue) < count:
            raise SoCError(
                f"peek_window({count}) on a FIFO holding only "
                f"{len(self._queue)} item(s); cold-start window is not full"
            )
        items = list(self._queue)
        return items[-count:]

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> float:
        """Fill level in [0, 1]."""
        return len(self._queue) / self.capacity
