"""Board power model and PMBus-style measurement.

The paper measures 2.09 W "directly from the device's power rails
(using the PYNQ-PMBus package) while performing inference and other
tasks on the ECU (with Linux OS)", giving 0.25 mJ per inference at
0.12 ms.  This module reproduces both the *measurement mechanism* (a
rail sampler with realistic noise, integrated over a workload) and the
*power composition* (PS running Linux + the driver loop, PL static, PL
dynamic scaled by the deployed design's resources and clock).

Component constants are calibration parameters chosen to land the
deployed configuration at the paper's operating point; they are named
and documented so the multi-model deployment experiment can scale them
honestly (dynamic power grows with instantiated logic, the PS/Linux
share does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SoCError
from repro.finn.resources import ResourceEstimate

__all__ = ["PowerModel", "PMBusSampler", "PowerReport", "energy_per_inference"]

# --- calibration constants (watts) -----------------------------------------
#: PS domain: quad A53 with Linux plus the single-core IDS driver loop.
PS_ACTIVE_W = 1.45
#: Board overhead visible on the monitored rails (regulators, clocking).
BOARD_MISC_W = 0.28
#: PL static leakage of the XCZU7EV at nominal temperature.
PL_STATIC_W = 0.31
# Dynamic power coefficients at 100 MHz reference clock.
W_PER_LUT = 0.9e-6
W_PER_FF = 0.3e-6
W_PER_BRAM36 = 0.15e-3
W_PER_DSP = 0.6e-3
REFERENCE_CLOCK_HZ = 100e6


@dataclass
class PowerModel:
    """Composable board power: PS + PL static + per-design PL dynamic."""

    ps_active_w: float = PS_ACTIVE_W
    board_misc_w: float = BOARD_MISC_W
    pl_static_w: float = PL_STATIC_W

    def pl_dynamic_w(self, resources: ResourceEstimate, clock_hz: float = REFERENCE_CLOCK_HZ) -> float:
        """Dynamic PL power of one deployed design at ``clock_hz``."""
        if clock_hz <= 0:
            raise SoCError(f"clock must be positive, got {clock_hz}")
        base = (
            resources.lut * W_PER_LUT
            + resources.ff * W_PER_FF
            + resources.bram36 * W_PER_BRAM36
            + resources.dsp * W_PER_DSP
        )
        return base * (clock_hz / REFERENCE_CLOCK_HZ)

    def total_w(
        self,
        resources: ResourceEstimate | None = None,
        clock_hz: float = REFERENCE_CLOCK_HZ,
        instances: int = 1,
    ) -> float:
        """Board power with ``instances`` copies of the design active."""
        dynamic = self.pl_dynamic_w(resources, clock_hz) * instances if resources else 0.0
        return self.ps_active_w + self.board_misc_w + self.pl_static_w + dynamic


@dataclass(frozen=True)
class PowerReport:
    """Outcome of a PMBus measurement window."""

    mean_w: float
    std_w: float
    num_samples: int
    duration_s: float

    @property
    def energy_j(self) -> float:
        """Total energy over the measurement window."""
        return self.mean_w * self.duration_s


@dataclass
class PMBusSampler:
    """Rail sampler mimicking the PYNQ-PMBus measurement flow.

    The ZCU104's INA226 monitors sample at a few hundred Hz; readings
    carry quantisation + regulator noise.  ``measure`` integrates the
    modelled board power over a window with that noise applied, which
    is how the paper's 2.09 W figure was obtained.
    """

    model: PowerModel = field(default_factory=PowerModel)
    sample_rate_hz: float = 200.0
    noise_fraction: float = 0.01

    def measure(
        self,
        duration_s: float,
        rng: np.random.Generator,
        resources: ResourceEstimate | None = None,
        clock_hz: float = REFERENCE_CLOCK_HZ,
        instances: int = 1,
    ) -> PowerReport:
        """Sample board power for ``duration_s`` seconds (simulated)."""
        if duration_s <= 0:
            raise SoCError(f"duration must be positive, got {duration_s}")
        true_power = self.model.total_w(resources, clock_hz, instances)
        count = max(int(duration_s * self.sample_rate_hz), 2)
        samples = true_power * (1.0 + self.noise_fraction * rng.standard_normal(count))
        return PowerReport(
            mean_w=float(samples.mean()),
            std_w=float(samples.std()),
            num_samples=count,
            duration_s=duration_s,
        )


def energy_per_inference(power_w: float, latency_s: float) -> float:
    """Joules per inference at a given board power and per-message latency.

    >>> round(energy_per_inference(2.09, 0.12e-3) * 1e3, 3)  # mJ
    0.251
    """
    if power_w <= 0 or latency_s <= 0:
        raise SoCError("power and latency must be positive")
    return power_w * latency_s
