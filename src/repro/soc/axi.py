"""AXI-lite transaction model.

The IDS IP hangs off the Zynq PS as a slave memory-mapped peripheral;
the driver touches it through ``/dev/mem``-mapped registers using the
Xilinx run-time (XRT) low-level API.  Each userspace access is a
single-beat AXI-lite transaction whose cost is dominated by the
PS-to-PL path (GP port, ~300 MHz interconnect) plus the load/store and
barrier on the A53 — of the order of **0.2-0.5 µs per access** from
Linux userspace, which is the number the latency budget uses.

The bus object counts transactions and accumulated time so latency
reports can show exactly where the software path spends its budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SoCError

__all__ = ["AXIPort", "AXILiteBus"]

#: Seconds per single-beat AXI-lite read/write from Linux userspace
#: (mmap'd register, A53 @ 1.2 GHz, GP0 port). Calibration constant.
DEFAULT_ACCESS_LATENCY = 0.35e-6


@dataclass
class AXIPort:
    """One mapped slave window (base address + span in bytes)."""

    name: str
    base: int
    span: int

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.span


@dataclass
class AXILiteBus:
    """A PS general-purpose master port with attached slave windows.

    Models only what the reproduction needs: address decode, per-access
    latency accounting and transaction counting.  Values are 32-bit
    words; addresses are byte addresses (word aligned).
    """

    access_latency: float = DEFAULT_ACCESS_LATENCY
    ports: list[AXIPort] = field(default_factory=list)
    reads: int = 0
    writes: int = 0
    busy_seconds: float = 0.0
    _memory: dict[int, int] = field(default_factory=dict)

    def map_port(self, name: str, base: int, span: int) -> AXIPort:
        """Attach a slave window; overlapping windows are rejected."""
        if base % 4 or span % 4:
            raise SoCError(f"port {name}: base/span must be word aligned")
        new_port = AXIPort(name, base, span)
        for port in self.ports:
            if port.base < base + span and base < port.base + port.span:
                raise SoCError(f"port {name} overlaps {port.name}")
        self.ports.append(new_port)
        return new_port

    def _decode(self, address: int) -> AXIPort:
        if address % 4:
            raise SoCError(f"unaligned AXI-lite access at 0x{address:08X}")
        for port in self.ports:
            if port.contains(address):
                return port
        raise SoCError(f"AXI decode error: no slave at 0x{address:08X}")

    def write(self, address: int, value: int) -> None:
        """Single-beat write (32-bit)."""
        self._decode(address)
        if not 0 <= value < 2**32:
            raise SoCError(f"AXI write value 0x{value:X} exceeds 32 bits")
        self._memory[address] = value
        self.writes += 1
        self.busy_seconds += self.access_latency

    def read(self, address: int) -> int:
        """Single-beat read (32-bit)."""
        self._decode(address)
        self.reads += 1
        self.busy_seconds += self.access_latency
        return self._memory.get(address, 0)

    # Back-door access for device models (no latency, no counting).
    def poke(self, address: int, value: int) -> None:
        """Device-side register update (status/result registers)."""
        self._memory[address] = value & 0xFFFFFFFF

    def peek(self, address: int) -> int:
        """Device-side register inspection."""
        return self._memory.get(address, 0)

    @property
    def transactions(self) -> int:
        return self.reads + self.writes
