"""PYNQ-style driver facade.

The paper runs "a Linux operating system (from the PYNQ image) with
low-level Xilinx run-time tools integrated" and drives the IP through
the FINN-generated APIs.  This module offers the same programming
model: load an ``Overlay`` (the bitstream), look up the IP by name, and
call it — so the examples read like PYNQ notebooks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SoCError
from repro.finn.ipgen import AcceleratorIP
from repro.soc.accelerator import MemoryMappedAccelerator
from repro.soc.axi import AXILiteBus

__all__ = ["Overlay"]


class Overlay:
    """A "programmed bitstream" holding one or more accelerator IPs.

    >>> # doctest-style sketch (see examples/ for runnable code):
    >>> # overlay = Overlay({"dos_ids": dos_ip, "fuzzy_ids": fuzzy_ip})
    >>> # label = overlay.dos_ids.classify(features)
    """

    _RESERVED = {"bus", "ip_dict", "_cores"}

    def __init__(self, ips: dict[str, AcceleratorIP], bus: AXILiteBus | None = None):
        if not ips:
            raise SoCError("Overlay needs at least one IP core")
        self.bus = bus if bus is not None else AXILiteBus()
        self._cores: dict[str, _BoundIP] = {}
        base = 0xA000_0000
        for name, ip in ips.items():
            if name in self._RESERVED or not name.isidentifier():
                raise SoCError(f"invalid IP name {name!r}")
            wrapped = MemoryMappedAccelerator(ip, bus=self.bus, base_address=base)
            self._cores[name] = _BoundIP(name, wrapped)
            base += 0x0001_0000

    def __getattr__(self, name: str):
        cores = object.__getattribute__(self, "_cores")
        if name in cores:
            return cores[name]
        raise AttributeError(f"overlay has no IP named {name!r}")

    @property
    def ip_dict(self) -> dict[str, dict]:
        """PYNQ-style metadata map of the loaded cores."""
        return {
            name: {
                "phys_addr": core.mmio.base,
                "addr_range": core.mmio.port.span,
                "type": "finn-ids-accelerator",
                **core.mmio.ip.to_dict(),
            }
            for name, core in self._cores.items()
        }


class _BoundIP:
    """One IP as exposed on the overlay (thin convenience wrapper)."""

    def __init__(self, name: str, mmio: MemoryMappedAccelerator):
        self.name = name
        self.mmio = mmio

    def classify(self, features: np.ndarray) -> int:
        """Single-frame classification through the full driver protocol."""
        label, _ = self.mmio.infer(np.asarray(features))
        return label

    def classify_batch(self, features: np.ndarray) -> np.ndarray:
        """Batched functional classification."""
        return self.mmio.run_batch(features)

    def register_read(self, offset: int) -> int:
        """Raw register access (debug), PYNQ ``mmio.read`` style."""
        return self.mmio.bus.read(self.mmio.base + offset)
