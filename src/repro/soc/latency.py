"""End-to-end per-message latency model.

The paper measures "per-message processing latency ... starting from
the arrival of the CAN message at the interface" and reports 0.12 ms on
the Zynq UltraScale+ ECU.  At that scale the FPGA compute (a few µs) is
a footnote: the budget is the Linux software path.  This model makes
each segment explicit:

===================  =======================================================
segment              what it covers (calibration rationale)
===================  =======================================================
can_rx_path          CAN controller IRQ, SocketCAN skb handling, wakeup of
                     the IDS task (Zynq A53 Linux: tens of µs)
task_dispatch        scheduler dispatch + syscall return to the IDS process
fifo_copy            copying the frame into the IDS ring buffer
feature_encode       frame -> 79-bit feature vector (C driver loop)
accelerator          driver MMIO writes + core compute + poll + readback
                     (measured from :class:`HWInferenceTrace`)
decision             thresholding the label, bookkeeping, safe-mode flag
===================  =======================================================

Constants are calibrated so the deployed 4-bit QMLP configuration totals
~0.12 ms, the paper's measurement; they are exposed for sensitivity
studies rather than buried.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SoCError
from repro.soc.accelerator import HWInferenceTrace

__all__ = ["LatencyModel", "LatencyBreakdown"]

#: Default software-segment costs (seconds); see module docstring.
DEFAULT_SEGMENTS = {
    "can_rx_path": 55e-6,
    "task_dispatch": 28e-6,
    "fifo_copy": 2e-6,
    "feature_encode": 8e-6,
    "decision": 5e-6,
}


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-segment latency of one message, in seconds."""

    segments: dict[str, float]

    @property
    def total_seconds(self) -> float:
        return float(sum(self.segments.values()))

    @property
    def total_ms(self) -> float:
        return 1e3 * self.total_seconds

    def dominant(self) -> str:
        """Name of the largest segment."""
        return max(self.segments, key=self.segments.get)

    def table_rows(self) -> list[tuple[str, float, float]]:
        """(segment, µs, percent-of-total) rows for reporting."""
        total = self.total_seconds
        return [
            (name, 1e6 * value, 100.0 * value / total)
            for name, value in self.segments.items()
        ]


@dataclass
class LatencyModel:
    """Software-path latency constants plus jitter model."""

    segments: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_SEGMENTS))
    #: Lognormal sigma of OS-related segments (IRQ/scheduler jitter).
    jitter_sigma: float = 0.18
    #: Segments subject to OS jitter.
    jittered: tuple[str, ...] = ("can_rx_path", "task_dispatch")

    def end_to_end(self, accelerator_trace: HWInferenceTrace) -> LatencyBreakdown:
        """Nominal per-message latency including the accelerator trace."""
        breakdown = dict(self.segments)
        breakdown["accelerator"] = accelerator_trace.total_seconds
        return LatencyBreakdown(segments=breakdown)

    def sample(
        self,
        accelerator_trace: HWInferenceTrace,
        count: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw ``count`` per-message latencies with OS jitter applied.

        Jittered segments are multiplied by lognormal(0, sigma) noise —
        the right-skewed shape IRQ latency distributions exhibit; other
        segments are deterministic.
        """
        if count < 1:
            raise SoCError("sample count must be >= 1")
        nominal = self.end_to_end(accelerator_trace).segments
        total = np.zeros(count, dtype=np.float64)
        for name, value in nominal.items():
            if name in self.jittered:
                total += value * rng.lognormal(mean=0.0, sigma=self.jitter_sigma, size=count)
            else:
                total += value
        return total

    def service_interval(
        self,
        accelerator_trace: HWInferenceTrace,
        core_ii_seconds: float = 0.0,
    ) -> float:
        """Per-message initiation interval of the ECU pipeline (seconds).

        The receive path is a pipeline: while the accelerator core works
        on frame *n*, the CPU prepares frame *n+1*.  The sustained rate
        is therefore gated by the slowest stage — the CPU software path,
        the driver's MMIO occupancy of the AXI port, or the core's own
        initiation interval — not by the end-to-end latency sum (the
        same II-gated definition ``SimReport.throughput_fps`` uses for
        the core alone).
        """
        software = float(sum(self.segments.values()))
        mmio = accelerator_trace.write_seconds + accelerator_trace.readback_seconds
        return max(software, mmio, core_ii_seconds)

    def sustained_fps(
        self,
        accelerator_trace: HWInferenceTrace,
        core_ii_seconds: float = 0.0,
    ) -> float:
        """II-gated sustained messages/second of the ECU pipeline."""
        return 1.0 / self.service_interval(accelerator_trace, core_ii_seconds)

    def throughput_fps(self, accelerator_trace: HWInferenceTrace) -> float:
        """Sustained messages/second of the single-threaded driver loop.

        The paper derives its ">8300 messages per second" throughput as
        the inverse of the per-message latency (one frame fully
        processed before the next); the same convention is used here.
        """
        return 1.0 / self.end_to_end(accelerator_trace).total_seconds
