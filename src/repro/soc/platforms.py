"""Comparison platform models (GPU / edge accelerators / embedded CPU).

Table II compares the paper's Zynq-integrated IDS against published
systems running on very different hardware; the in-text energy
comparison pits the 0.25 mJ FPGA inference against 9.12 J for the same
(8-bit) MLP on an NVIDIA A6000.  These models carry the power
characteristics needed to reproduce those energy numbers: published
board/TDP power levels plus the measured per-inference latency where
the paper reports one.

The A6000 entry is calibrated to the paper's own measurement: a
single-frame (batch-1) inference through a Python GPU stack costs
milliseconds of wall time at hundreds of watts of board power — hence
joules per inference, 4-5 orders of magnitude above the coupled
accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["PlatformModel", "PLATFORMS", "A6000", "ZYNQ_ULTRASCALE"]


@dataclass(frozen=True)
class PlatformModel:
    """Power/latency characteristics of one inference platform."""

    name: str
    category: str  # "gpu" | "edge" | "embedded-cpu" | "fpga-soc"
    active_power_w: float
    idle_power_w: float
    #: Measured single-inference wall latency on this platform, when known.
    inference_latency_s: float | None = None
    note: str = ""

    def energy_per_inference(self, latency_s: float | None = None) -> float:
        """Joules per single inference (active power x wall latency)."""
        latency = latency_s if latency_s is not None else self.inference_latency_s
        if latency is None or latency <= 0:
            raise ConfigError(f"{self.name}: no inference latency available")
        return self.active_power_w * latency


#: Calibrated to the paper's measured 9.12 J per inference (304 W x 30 ms:
#: batch-1 PyTorch inference incl. host-device transfers and kernel launch).
A6000 = PlatformModel(
    name="NVIDIA A6000",
    category="gpu",
    active_power_w=304.0,
    idle_power_w=70.0,
    inference_latency_s=0.030,
    note="paper's GPU reference for the 8-bit QMLP (9.12 J/inference)",
)

GTX_TITAN_X = PlatformModel("GTX Titan X", "gpu", 250.0, 15.0, note="MLIDS platform")
TESLA_K80 = PlatformModel("Tesla K80", "gpu", 300.0, 25.0, note="DCNN platform")
JETSON_XAVIER_NX = PlatformModel("Jetson Xavier NX", "edge", 15.0, 5.0, note="GRU platform")
JETSON_NANO = PlatformModel("Jetson Nano", "edge", 10.0, 2.0, note="NovelADS platform")
JETSON_AGX = PlatformModel("Jetson AGX", "edge", 30.0, 8.0, note="TCAN-IDS platform")
RASPBERRY_PI_3 = PlatformModel("Raspberry Pi 3", "embedded-cpu", 3.7, 1.4, note="MTH-IDS platform")

#: Ours: the ZCU104 ECU at the paper's measured operating point.
ZYNQ_ULTRASCALE = PlatformModel(
    name="Zynq UltraScale+ (ZCU104)",
    category="fpga-soc",
    active_power_w=2.09,
    idle_power_w=1.9,
    inference_latency_s=0.12e-3,
    note="coupled IDS ECU, measured via PMBus",
)

PLATFORMS: dict[str, PlatformModel] = {
    "a6000": A6000,
    "gtx-titan-x": GTX_TITAN_X,
    "tesla-k80": TESLA_K80,
    "jetson-xavier-nx": JETSON_XAVIER_NX,
    "jetson-nano": JETSON_NANO,
    "jetson-agx": JETSON_AGX,
    "raspberry-pi-3": RASPBERRY_PI_3,
    "zynq-ultrascale": ZYNQ_ULTRASCALE,
}
