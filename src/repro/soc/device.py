"""FPGA device resource databases.

The paper deploys on a ZCU104 evaluation board (Zynq UltraScale+
XCZU7EV-2FFVC1156).  Resource totals below are the published device
capacities used for the "<4 % of resources" utilisation claims; a few
other parts common in the CAN-IDS literature are included so the DSE
harness can report portability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError
from repro.finn.resources import ResourceEstimate

__all__ = ["FPGADevice", "ZCU104", "DEVICES"]


@dataclass(frozen=True)
class FPGADevice:
    """Programmable-logic capacity of one device."""

    name: str
    part: str
    lut: int
    ff: int
    bram36: int
    dsp: int
    uram: int = 0

    def utilization(self, resources: ResourceEstimate) -> dict[str, float]:
        """Percent utilisation per resource class.

        >>> ZCU104.utilization(ResourceEstimate(lut=2304))["lut"]
        1.0
        """
        return {
            "lut": 100.0 * resources.lut / self.lut,
            "ff": 100.0 * resources.ff / self.ff,
            "bram36": 100.0 * resources.bram36 / self.bram36,
            "dsp": 100.0 * resources.dsp / self.dsp,
        }

    def max_utilization(self, resources: ResourceEstimate) -> float:
        """Worst resource-class utilisation (the binding constraint)."""
        return max(self.utilization(resources).values())

    def check_fits(self, resources: ResourceEstimate, margin: float = 1.0) -> None:
        """Raise :class:`ResourceError` if the design exceeds ``margin`` x capacity."""
        for kind, percent in self.utilization(resources).items():
            if percent > 100.0 * margin:
                raise ResourceError(
                    f"{self.name}: {kind} over capacity ({percent:.1f}% > {100 * margin:.0f}%)"
                )

    def instances_that_fit(self, resources: ResourceEstimate, margin: float = 0.9) -> int:
        """How many copies of a design fit (the multi-IDS deployment claim)."""
        worst = self.max_utilization(resources)
        if worst <= 0:
            raise ResourceError("design reports zero resource usage")
        return int((100.0 * margin) // worst)


#: The paper's target: ZCU104 board, XCZU7EV device.
ZCU104 = FPGADevice(
    name="ZCU104",
    part="XCZU7EV-2FFVC1156",
    lut=230_400,
    ff=460_800,
    bram36=312,
    dsp=1_728,
    uram=96,
)

#: Smaller hybrid FPGA used in the authors' earlier FPL'22 work.
PYNQ_Z2 = FPGADevice(name="PYNQ-Z2", part="XC7Z020-1CLG400C", lut=53_200, ff=106_400, bram36=140, dsp=220)

#: Larger UltraScale+ evaluation platform.
ZCU102 = FPGADevice(name="ZCU102", part="XCZU9EG-2FFVB1156", lut=274_080, ff=548_160, bram36=912, dsp=2_520)

DEVICES: dict[str, FPGADevice] = {
    "zcu104": ZCU104,
    "pynq-z2": PYNQ_Z2,
    "zcu102": ZCU102,
}
