"""The IDS-enabled ECU: the paper's receive-path pipeline, end to end.

"CAN packets received in the interface are handled as usual by the ECU
to perform its task; additionally, the packet is copied into a FIFO
style buffer ... examined by our IDS IP for threat signatures."

:class:`IDSEnabledECU` wires the pieces together: capture records enter
the RX FIFO, are feature-encoded, classified by the memory-mapped
accelerator, and accounted with the latency and power models.
``process_capture`` is the workhorse behind Table II, the throughput
claim, the energy claim and the Fig.-1 network demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.can.log import CANLogRecord
from repro.datasets.features import FeatureEncoder
from repro.errors import SoCError
from repro.finn.ipgen import AcceleratorIP
from repro.soc.accelerator import HWInferenceTrace, MemoryMappedAccelerator
from repro.soc.axi import AXILiteBus
from repro.soc.fifo import RxFIFO
from repro.soc.latency import LatencyBreakdown, LatencyModel
from repro.soc.power import PMBusSampler, PowerModel, energy_per_inference
from repro.training.metrics import ids_metrics
from repro.utils.rng import new_rng

__all__ = ["ECUReport", "IDSEnabledECU"]


@dataclass
class ECUReport:
    """Measurements from processing one capture through the ECU."""

    name: str
    num_frames: int
    predictions: np.ndarray
    labels: np.ndarray | None
    latency_breakdown: LatencyBreakdown
    latency_samples: np.ndarray
    mean_power_w: float
    fifo_dropped: int
    metrics: dict[str, float] | None = None
    alerts: list[int] = field(default_factory=list)  # indices of detected attacks

    @property
    def mean_latency_s(self) -> float:
        return float(self.latency_samples.mean())

    @property
    def p99_latency_s(self) -> float:
        return float(np.percentile(self.latency_samples, 99))

    @property
    def throughput_fps(self) -> float:
        """Messages/second sustained (inverse mean per-message latency)."""
        return 1.0 / self.mean_latency_s

    @property
    def energy_per_inference_j(self) -> float:
        return energy_per_inference(self.mean_power_w, self.mean_latency_s)

    def summary(self) -> str:
        lines = [
            f"ECU {self.name!r}: {self.num_frames} frames",
            f"  latency: mean {1e3 * self.mean_latency_s:.3f} ms, "
            f"p99 {1e3 * self.p99_latency_s:.3f} ms "
            f"(dominant: {self.latency_breakdown.dominant()})",
            f"  throughput: {self.throughput_fps:,.0f} msg/s",
            f"  power: {self.mean_power_w:.2f} W, "
            f"energy/inference: {1e3 * self.energy_per_inference_j:.3f} mJ",
        ]
        if self.metrics:
            m = self.metrics
            lines.append(
                f"  detection: P {m['precision']:.2f} R {m['recall']:.2f} "
                f"F1 {m['f1']:.2f} FNR {m['fnr']:.2f}"
            )
        return "\n".join(lines)


class IDSEnabledECU:
    """A Zynq-based ECU with the IDS accelerator on its receive path."""

    def __init__(
        self,
        ip: AcceleratorIP,
        encoder: FeatureEncoder,
        name: str = "ids-ecu",
        bus: AXILiteBus | None = None,
        fifo_capacity: int = 64,
        latency_model: LatencyModel | None = None,
        power_model: PowerModel | None = None,
        seed: int = 0,
    ):
        self.name = name
        self.encoder = encoder
        self.accelerator = MemoryMappedAccelerator(ip, bus=bus)
        self.fifo: RxFIFO[CANLogRecord] = RxFIFO(capacity=fifo_capacity)
        self.latency_model = latency_model or LatencyModel()
        self.power_model = power_model or PowerModel()
        self.sampler = PMBusSampler(model=self.power_model)
        self._rng = new_rng(seed, f"ecu-{name}")

    def classify_frame(self, record: CANLogRecord) -> tuple[int, LatencyBreakdown]:
        """Process a single frame with full per-frame accounting."""
        self.fifo.push(record)
        features = self.encoder.encode_frame(self.fifo.pop())
        label, trace = self.accelerator.infer(features)
        return label, self.latency_model.end_to_end(trace)

    def process_capture(
        self,
        records: Sequence[CANLogRecord],
        with_metrics: bool = True,
    ) -> ECUReport:
        """Run a whole capture through the IDS path.

        Functional classification is batched through the bit-exact graph
        (the driver protocol is data independent, so one measured AXI
        trace characterises every frame); latency samples add OS jitter
        per frame.
        """
        if not records:
            raise SoCError("cannot process an empty capture")
        for record in records:
            self.fifo.push(record)
        features = np.stack([self.encoder.encode_frame(record) for record in records])
        predictions = self.accelerator.run_batch(features)

        trace: HWInferenceTrace = self.accelerator.reference_trace()
        breakdown = self.latency_model.end_to_end(trace)
        latency_samples = self.latency_model.sample(trace, len(records), self._rng)

        measurement = self.sampler.measure(
            duration_s=max(float(latency_samples.sum()), 0.1),
            rng=self._rng,
            resources=self.accelerator.ip.resources,
            clock_hz=self.accelerator.ip.clock_hz,
        )

        labels = np.array([1 if record.is_attack else 0 for record in records])
        metrics = ids_metrics(labels, predictions) if with_metrics else None
        alerts = [index for index, label in enumerate(predictions) if label == 1]
        return ECUReport(
            name=self.name,
            num_frames=len(records),
            predictions=predictions,
            labels=labels,
            latency_breakdown=breakdown,
            latency_samples=latency_samples,
            mean_power_w=measurement.mean_w,
            fifo_dropped=self.fifo.dropped,
            metrics=metrics,
            alerts=alerts,
        )
