"""The IDS-enabled ECU: the paper's receive-path pipeline, end to end.

"CAN packets received in the interface are handled as usual by the ECU
to perform its task; additionally, the packet is copied into a FIFO
style buffer ... examined by our IDS IP for threat signatures."

:class:`IDSEnabledECU` wires the pieces together: capture records enter
the RX FIFO, are feature-encoded, classified by the memory-mapped
accelerator, and accounted with the latency and power models.  Two
capture-scale entry points exist:

* :meth:`IDSEnabledECU.process_capture` — offline batch: every frame is
  serviced (the batch path drains the FIFO as it fills it), the
  vectorised encoder and the dataflow graph run whole-capture kernels.
  This is the workhorse behind Table II, the throughput claim, the
  energy claim and the Fig.-1 network demonstration.
* :meth:`IDSEnabledECU.process_stream` — online streaming: frames
  arrive at their capture timestamps, the ECU drains at its sustained
  (II-gated) service rate, and the RX FIFO's bounded occupancy is
  simulated faithfully — under a DoS flood the oldest queued frames
  age out exactly as the hardware buffer's drop-oldest policy dictates,
  and dropped frames are excluded from predictions and metrics.

The streaming engine is built on a *resumable stepper*:
:meth:`IDSEnabledECU.open_stream` returns an :class:`ECUStreamSession`
that encodes and classifies one chunk per :meth:`~ECUStreamSession.step`
call and reports the chunk's virtual-time window and FIFO state.
:meth:`process_stream` simply runs a session to completion; the
multi-channel gateway (:mod:`repro.soc.gateway`) instead holds one
session per channel and advances them in virtual-time order, so a
flooded segment cannot delay another segment's verdicts.  A session's
``drain_fps`` may be the channel's arbitrated share of a *shared*
accelerator (:mod:`repro.soc.arbiter`): the arbitration wait is folded
into the effective service interval, so :func:`simulate_fifo_admission`
sees the slower shared service without modification.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.can.log import CANLogRecord, CaptureArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.can.fastbus import ArbitrationResult
from repro.datasets.features import FeatureEncoder
from repro.errors import SoCError
from repro.finn.ipgen import AcceleratorIP
from repro.soc.accelerator import HWInferenceTrace, MemoryMappedAccelerator
from repro.soc.axi import AXILiteBus
from repro.soc.fifo import RxFIFO
from repro.soc.latency import LatencyBreakdown, LatencyModel
from repro.soc.power import PMBusSampler, PowerModel, energy_per_inference
from repro.training.metrics import ids_metrics
from repro.utils.rng import new_rng

__all__ = [
    "ECUReport",
    "ECUStreamSession",
    "IDSEnabledECU",
    "StreamChunk",
    "simulate_fifo_admission",
]


def _simulate_fifo_admission_events(
    timestamps: np.ndarray,
    service_seconds: float,
    capacity: int,
) -> tuple[np.ndarray, int, np.ndarray, np.ndarray]:
    """:func:`simulate_fifo_admission` plus per-frame eviction times.

    The fourth return value maps each frame to the virtual time the
    drop-oldest policy evicted it from the buffer; kept frames carry
    ``+inf`` (they leave by being serviced, at ``timestamp + wait``).
    Dropped frames *occupy FIFO slots until that instant*, which is why
    occupancy reconstruction needs it.
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    n = timestamps.shape[0]
    if n == 0:
        return (
            np.zeros(0, dtype=bool),
            0,
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.float64),
        )
    if service_seconds <= 0:
        raise SoCError(f"service time must be positive, got {service_seconds}")
    if np.any(np.diff(timestamps) < 0):
        raise SoCError("stream timestamps must be non-decreasing")

    index = np.arange(n, dtype=np.int64)
    # Service-start times under an unbounded queue: starts[k] = g[k] + s*k
    # with g = running max of (t[k] - s*k)  <=>  f[k] = max(t[k], f[k-1]) + s.
    g = np.maximum.accumulate(timestamps - service_seconds * index)
    starts = g + service_seconds * index
    # Occupancy seen by arrival k: earlier frames whose service has not
    # begun strictly before t[k] are still sitting in the FIFO.
    waiting = index - np.searchsorted(starts, timestamps, side="left")
    peak = int(waiting.max()) + 1  # occupancy just after the push
    if peak <= capacity:
        return (
            np.ones(n, dtype=bool),
            peak,
            starts - timestamps,
            np.full(n, np.inf, dtype=np.float64),
        )

    # Overflow: exact drop-oldest replay (only under floods).
    kept = np.ones(n, dtype=bool)
    waits = np.zeros(n, dtype=np.float64)
    evictions = np.full(n, np.inf, dtype=np.float64)
    queue: deque[int] = deque()
    t_free = -np.inf
    max_occupancy = 0

    def serve(head: int, begin: float) -> float:
        waits[head] = begin - timestamps[head]
        return begin + service_seconds

    for i in range(n):
        t_arrival = timestamps[i]
        while queue:
            head_arrival = timestamps[queue[0]]
            begin = t_free if t_free > head_arrival else head_arrival
            if begin >= t_arrival:
                break
            t_free = serve(queue.popleft(), begin)
        if len(queue) >= capacity:
            victim = queue.popleft()
            kept[victim] = False
            evictions[victim] = t_arrival
        queue.append(i)
        if len(queue) > max_occupancy:
            max_occupancy = len(queue)
    while queue:  # end of capture: the ECU finishes its backlog
        head = queue.popleft()
        begin = t_free if t_free > timestamps[head] else timestamps[head]
        t_free = serve(head, begin)
    return kept, max_occupancy, waits, evictions


def simulate_fifo_admission(
    timestamps: np.ndarray,
    service_seconds: float,
    capacity: int,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Which arrivals survive a bounded drop-oldest FIFO, and at what delay?

    Models the receive buffer as a single-server queue: the IDS drains
    one frame every ``service_seconds`` (work-conserving), frames enter
    at ``timestamps``, and an arrival finding ``capacity`` frames
    waiting evicts the oldest queued frame.  Frames still queued when
    the capture ends are drained (the ECU finishes its backlog).

    Returns ``(kept_mask, max_occupancy, queue_wait_seconds)``: a
    boolean mask of frames actually serviced, the peak FIFO fill level
    observed, and the per-frame time spent queued before service starts
    (0.0 for dropped frames).

    The common drop-free case is fully vectorised (the completion-time
    recurrence ``f[n] = max(t[n], f[n-1]) + s`` is a prefix-maximum);
    the exact per-frame drop-oldest simulation only runs when the
    vectorised occupancy check shows the buffer would overflow.
    """
    kept, max_occupancy, waits, _ = _simulate_fifo_admission_events(
        timestamps, service_seconds, capacity
    )
    return kept, max_occupancy, waits


@dataclass
class ECUReport:
    """Measurements from processing one capture through the ECU."""

    name: str
    num_frames: int  #: frames that arrived at the CAN interface
    predictions: np.ndarray  #: one label per *serviced* frame
    labels: np.ndarray | None
    latency_breakdown: LatencyBreakdown
    latency_samples: np.ndarray
    mean_power_w: float
    fifo_dropped: int  #: frames actually lost to RX-FIFO overflow
    metrics: dict[str, float] | None = None
    alerts: list[int] = field(default_factory=list)  # indices of detected attacks
    sustained_fps_value: float | None = None  #: II-gated pipeline rate
    num_processed: int | None = None  #: serviced frames, excluding corruption
    max_fifo_occupancy: int | None = None  #: peak RX-FIFO fill (stream path)
    #: wire-corrupted attempts observed but never admitted (CRC fails at
    #: the controller, so they are excluded from predictions and metrics)
    corrupted_frames: int = 0
    #: Capture positions of the serviced frames (stream path with drops);
    #: None means the identity mapping — every frame was serviced.
    kept_indices: np.ndarray | None = None

    @property
    def mean_latency_s(self) -> float:
        return float(self.latency_samples.mean())

    @property
    def p99_latency_s(self) -> float:
        return float(np.percentile(self.latency_samples, 99))

    @property
    def inverse_latency_fps(self) -> float:
        """1 / mean end-to-end latency — the paper's ">8300 msg/s" convention.

        This is a latency figure wearing a rate unit: it assumes no
        overlap between pipeline stages, so it understates what the
        pipelined ECU sustains.  Kept for honest comparison with the
        paper's derivation.
        """
        return 1.0 / self.mean_latency_s

    @property
    def throughput_fps(self) -> float:
        """Messages/second sustained, gated by the slowest pipeline stage.

        Uses the initiation-interval definition (as
        ``SimReport.throughput_fps`` does for the core alone): the CPU
        software path, the driver MMIO occupancy and the core II bound
        the steady-state rate, not the end-to-end latency sum.  See
        :attr:`inverse_latency_fps` for the paper's inverse-latency
        figure.
        """
        if self.sustained_fps_value is not None:
            return self.sustained_fps_value
        return self.inverse_latency_fps

    @property
    def energy_per_inference_j(self) -> float:
        """Board power x nominal per-message processing time.

        Uses the nominal pipeline latency rather than the observed mean:
        time a frame spends *queued* in the RX FIFO (stream path under
        load) costs no extra inference energy.
        """
        return energy_per_inference(self.mean_power_w, self.latency_breakdown.total_seconds)

    def summary(self) -> str:
        processed = self.num_processed if self.num_processed is not None else self.num_frames
        corrupted = f", {self.corrupted_frames} corrupted" if self.corrupted_frames else ""
        lines = [
            f"ECU {self.name!r}: {self.num_frames} frames "
            f"({processed} serviced, {self.fifo_dropped} dropped{corrupted})",
            f"  latency: mean {1e3 * self.mean_latency_s:.3f} ms, "
            f"p99 {1e3 * self.p99_latency_s:.3f} ms "
            f"(dominant: {self.latency_breakdown.dominant()})",
            f"  throughput: {self.throughput_fps:,.0f} msg/s sustained "
            f"(1/latency: {self.inverse_latency_fps:,.0f} msg/s)",
            f"  power: {self.mean_power_w:.2f} W, "
            f"energy/inference: {1e3 * self.energy_per_inference_j:.3f} mJ",
        ]
        if self.max_fifo_occupancy is not None:
            lines.append(f"  rx-fifo peak occupancy: {self.max_fifo_occupancy}")
        if self.metrics:
            m = self.metrics
            lines.append(
                f"  detection: P {m['precision']:.2f} R {m['recall']:.2f} "
                f"F1 {m['f1']:.2f} FNR {m['fnr']:.2f}"
            )
        return "\n".join(lines)


class IDSEnabledECU:
    """A Zynq-based ECU with the IDS accelerator on its receive path."""

    def __init__(
        self,
        ip: AcceleratorIP,
        encoder: FeatureEncoder,
        name: str = "ids-ecu",
        bus: AXILiteBus | None = None,
        fifo_capacity: int = 64,
        latency_model: LatencyModel | None = None,
        power_model: PowerModel | None = None,
        seed: int = 0,
    ):
        self.name = name
        self.encoder = encoder
        self.accelerator = MemoryMappedAccelerator(ip, bus=bus)
        self.fifo: RxFIFO[CANLogRecord] = RxFIFO(capacity=fifo_capacity)
        self.latency_model = latency_model or LatencyModel()
        self.power_model = power_model or PowerModel()
        self.sampler = PMBusSampler(model=self.power_model)
        self._rng = new_rng(seed, f"ecu-{name}")
        self._reference_trace: HWInferenceTrace | None = None

    def classify_frame(self, record: CANLogRecord) -> tuple[int, LatencyBreakdown]:
        """Process a single frame with full per-frame accounting."""
        self.fifo.push(record)
        features = self.encoder.encode_frame(self.fifo.pop())
        label, trace = self.accelerator.infer(features)
        return label, self.latency_model.end_to_end(trace)

    # -- shared accounting ------------------------------------------------
    def reference_trace(self) -> HWInferenceTrace:
        """The steady-state per-inference AXI trace (measured once).

        Cached per ECU, and the accelerator layer additionally shares
        the measurement across every ECU bound to the same IP at the
        same bus timing (see
        :meth:`MemoryMappedAccelerator.reference_trace`), so a gateway
        or campaign sweep replays the AXI protocol once, not per ECU.
        """
        if self._reference_trace is None:
            self._reference_trace = self.accelerator.reference_trace()
        return self._reference_trace

    def sustained_fps(self) -> float:
        """II-gated sustained rate of the whole receive pipeline."""
        core_ii_s = 1.0 / self.accelerator.ip.throughput_fps
        return self.latency_model.sustained_fps(self.reference_trace(), core_ii_s)

    def _measure(
        self,
        capture: CaptureArray,
        predictions: np.ndarray,
        num_frames: int,
        fifo_dropped: int,
        with_metrics: bool,
        max_fifo_occupancy: int | None = None,
        queue_waits: np.ndarray | None = None,
        kept_indices: np.ndarray | None = None,
        sustained_fps: float | None = None,
        corrupted_frames: int = 0,
    ) -> ECUReport:
        """Assemble the report for ``capture`` = the serviced frames.

        ``queue_waits`` (stream path) is the per-frame time spent in the
        RX FIFO before service; it is added to the latency samples so
        the reported latency stays end-to-end from interface arrival.
        ``sustained_fps`` overrides the reported sustained rate (stream
        path: the drain rate actually in force, e.g. an arbitrated
        share of a shared accelerator).
        """
        trace = self.reference_trace()
        breakdown = self.latency_model.end_to_end(trace)
        latency_samples = self.latency_model.sample(trace, len(capture), self._rng)
        if queue_waits is not None:
            latency_samples = latency_samples + queue_waits
        measurement = self.sampler.measure(
            duration_s=max(float(latency_samples.sum()), 0.1),
            rng=self._rng,
            resources=self.accelerator.ip.resources,
            clock_hz=self.accelerator.ip.clock_hz,
        )
        labels = capture.labels.astype(np.int64)
        metrics = ids_metrics(labels, predictions) if with_metrics else None
        return ECUReport(
            name=self.name,
            num_frames=num_frames,
            predictions=predictions,
            labels=labels,
            latency_breakdown=breakdown,
            latency_samples=latency_samples,
            mean_power_w=measurement.mean_w,
            fifo_dropped=fifo_dropped,
            metrics=metrics,
            alerts=np.flatnonzero(predictions == 1).tolist(),
            sustained_fps_value=sustained_fps if sustained_fps is not None else self.sustained_fps(),
            num_processed=len(capture),
            max_fifo_occupancy=max_fifo_occupancy,
            kept_indices=kept_indices,
            corrupted_frames=corrupted_frames,
        )

    # -- capture-scale entry points ---------------------------------------
    def process_capture(
        self,
        records: "Sequence[CANLogRecord] | CaptureArray | ArbitrationResult",
        with_metrics: bool = True,
    ) -> ECUReport:
        """Run a whole capture through the IDS path (offline batch).

        ``records`` may be a :class:`CANLogRecord` list, a columnar
        :class:`CaptureArray`, or the columnar bus engine's
        :class:`~repro.can.fastbus.ArbitrationResult` (its capture is
        unwrapped), so ``ecu.process_capture(bus.capture(2.0))`` works
        without a conversion step — the same coercion applies to
        :meth:`open_stream` and :meth:`process_stream`.

        Functional classification is batched through the bit-exact graph
        (the driver protocol is data independent, so one measured AXI
        trace characterises every frame); latency samples add OS jitter
        per frame.  The batch path services each frame as it is copied
        in — the FIFO is drained as it is filled — so no frame is ever
        lost to overflow here and ``fifo_dropped`` is 0; use
        :meth:`process_stream` for arrival-rate-faithful accounting.
        """
        capture = CaptureArray.coerce(records)
        if len(capture) == 0:
            raise SoCError("cannot process an empty capture")
        features = self.encoder.encode_batch(capture)
        predictions = self.accelerator.run_batch(features)
        self.fifo.transfer(len(capture))
        return self._measure(
            capture,
            predictions,
            num_frames=len(capture),
            fifo_dropped=0,
            with_metrics=with_metrics,
        )

    def open_stream(
        self,
        records: "Sequence[CANLogRecord] | CaptureArray | ArbitrationResult",
        chunk_size: int = 4096,
        drain_fps: float | None = None,
        with_metrics: bool = True,
        corrupted: np.ndarray | None = None,
    ) -> "ECUStreamSession":
        """Open a resumable streaming session over one capture.

        The session exposes the chunk loop of :meth:`process_stream` as
        an explicit stepper: each :meth:`ECUStreamSession.step` encodes
        and classifies one chunk of admitted frames and returns the
        chunk's virtual-time window plus the RX-FIFO state at its end.
        The gateway uses this to interleave several channels in
        virtual-time order; ``drain_fps`` may be an arbitrated share of
        a shared accelerator (see :mod:`repro.soc.arbiter`).

        ``corrupted`` marks capture rows that are wire-corrupted
        attempts (see :mod:`repro.can.faults`): they fail CRC at the
        CAN controller and never reach the RX FIFO, so they are
        excluded from admission, predictions and metrics while still
        counting as observed interface traffic
        (:attr:`ECUReport.corrupted_frames`).
        """
        return ECUStreamSession(
            self,
            CaptureArray.coerce(records),
            chunk_size=chunk_size,
            drain_fps=drain_fps,
            with_metrics=with_metrics,
            corrupted=corrupted,
        )

    def process_stream(
        self,
        records: "Sequence[CANLogRecord] | CaptureArray | ArbitrationResult",
        chunk_size: int = 4096,
        drain_fps: float | None = None,
        with_metrics: bool = True,
        corrupted: np.ndarray | None = None,
    ) -> ECUReport:
        """Consume traffic chunk-by-chunk with real FIFO backpressure.

        Frames arrive at their capture timestamps; the ECU drains at
        ``drain_fps`` (default: the pipeline's II-gated sustained rate).
        When arrivals outpace the drain — a DoS flood — the bounded RX
        FIFO overflows and the *oldest queued* frames age out, exactly
        like the hardware buffer.  Dropped frames never reach the
        accelerator: they are excluded from ``predictions``, ``labels``
        and ``metrics``, and counted in ``fifo_dropped``.

        On drop-free traffic the result is prediction-identical to
        :meth:`process_capture` (the chunked encoder carries window
        context across chunk boundaries).  Reported latency samples
        include the simulated queueing delay, so p99 latency degrades
        visibly as the FIFO fills; ``kept_indices`` maps each serviced
        frame back to its position in the original capture.

        This is the single-channel convenience wrapper around
        :meth:`open_stream`: it runs the session to completion in one
        call.
        """
        session = self.open_stream(
            records,
            chunk_size=chunk_size,
            drain_fps=drain_fps,
            with_metrics=with_metrics,
            corrupted=corrupted,
        )
        while not session.done:
            session.step()
        return session.finish()


@dataclass(frozen=True)
class StreamChunk:
    """One stepper advance: a contiguous run of serviced frames.

    ``start``/``stop`` index into the session's *serviced* frames (use
    :attr:`ECUStreamSession.kept_indices` to map back to capture
    positions).  Times are virtual capture time, not wall time.
    """

    start: int
    stop: int
    arrival_time: float  #: interface arrival of the chunk's first frame
    completion_time: float  #: service completion of the chunk's last frame
    #: frames occupying the RX FIFO at ``completion_time`` — queued
    #: survivors plus flood casualties not yet evicted by drop-oldest
    fifo_backlog: int

    @property
    def num_serviced(self) -> int:
        return self.stop - self.start


class ECUStreamSession:
    """Resumable per-channel stepper over one capture.

    FIFO admission is resolved up front (it is a closed-form function
    of arrival timestamps, service interval and capacity — see
    :func:`simulate_fifo_admission`); what the stepper resumes is the
    expensive part, the chunked encode + classify of admitted frames.
    Each :meth:`step` advances one chunk and returns its
    :class:`StreamChunk`; :meth:`finish` assembles the
    :class:`ECUReport` once every chunk has been stepped.

    Window encoders need the preceding ``encoder.lookback`` frames to
    reproduce whole-capture encoding at chunk boundaries; the context
    rows are re-encoded and their outputs discarded, so the assembled
    predictions are bit-identical to a single whole-capture call — and
    therefore independent of how steps from different sessions are
    interleaved by a scheduler.
    """

    def __init__(
        self,
        ecu: "IDSEnabledECU",
        capture: CaptureArray,
        chunk_size: int = 4096,
        drain_fps: float | None = None,
        with_metrics: bool = True,
        corrupted: np.ndarray | None = None,
    ):
        if len(capture) == 0:
            raise SoCError("cannot process an empty capture")
        if chunk_size < 1:
            raise SoCError(f"chunk_size must be >= 1, got {chunk_size}")
        if drain_fps is not None and drain_fps <= 0:
            raise SoCError(f"drain_fps must be positive, got {drain_fps}")
        self.ecu = ecu
        self.chunk_size = int(chunk_size)
        self.with_metrics = with_metrics
        self.drain_fps = float(drain_fps) if drain_fps is not None else ecu.sustained_fps()
        self._service_s = 1.0 / self.drain_fps
        self._capture = capture

        if corrupted is not None:
            corrupted = np.asarray(corrupted, dtype=bool)
            if corrupted.shape != (len(capture),):
                raise SoCError(
                    f"corrupted mask covers {corrupted.shape[0] if corrupted.ndim == 1 else corrupted.shape} "
                    f"rows, capture has {len(capture)}"
                )
        if corrupted is not None and bool(corrupted.any()):
            # Corrupted attempts are destroyed on the wire by the error
            # frame: they never clear the CAN controller's CRC check,
            # so they never occupy an RX-FIFO slot.  Admission runs
            # over the clean rows only; positions are remembered so
            # kept_indices still maps into the *original* capture.
            clean_indices = np.flatnonzero(~corrupted)
            offered = capture[clean_indices]
        else:
            clean_indices = None
            offered = capture
        if len(offered) == 0:
            raise SoCError("every frame in the capture is corrupted; nothing to scan")
        self.corrupted_frames = len(capture) - len(offered)
        self._offered = offered

        kept_mask, self.max_occupancy, queue_waits, evictions = (
            _simulate_fifo_admission_events(
                offered.timestamps, self._service_s, ecu.fifo.capacity
            )
        )
        if bool(kept_mask.all()):
            # Drop-free (the common case): the admitted stream IS the
            # offered capture — alias it zero-copy instead of
            # mask-copying every column, and chunk slices below stay
            # views of the caller's buffers end to end.
            self._kept = offered
            kept_positions = np.arange(len(offered), dtype=np.int64)
            self._queue_waits = queue_waits
            self._eviction_times = np.zeros(0, dtype=np.float64)
        else:
            self._kept = offered[kept_mask]
            kept_positions = np.flatnonzero(kept_mask)
            self._queue_waits = queue_waits[kept_mask]
            #: when drop-oldest evicted each casualty (sorted)
            self._eviction_times = np.sort(evictions[~kept_mask])
        self.kept_indices = (
            clean_indices[kept_positions] if clean_indices is not None else kept_positions
        )
        self.fifo_dropped = len(offered) - len(self._kept)
        #: service-start times of admitted frames (non-decreasing: FIFO order)
        self._starts = self._kept.timestamps + self._queue_waits
        ecu.fifo.transfer(len(self._kept))
        ecu.fifo.record_overflow(self.fifo_dropped)

        self._lookback = getattr(ecu.encoder, "lookback", 0)
        self._predictions = np.empty(len(self._kept), dtype=np.int64)
        self._cursor = 0
        self._report: ECUReport | None = None

    @property
    def num_frames(self) -> int:
        """Frames observed at the interface (serviced + dropped + corrupted)."""
        return len(self._capture)

    @property
    def num_serviced(self) -> int:
        return len(self._kept)

    @property
    def done(self) -> bool:
        return self._cursor >= len(self._kept)

    @property
    def next_arrival(self) -> float:
        """Arrival time of the next unserviced frame (+inf when done).

        This is the virtual-time key a scheduler orders sessions by:
        always stepping the session with the earliest pending arrival
        yields a deterministic interleaving that follows capture time
        across channels.
        """
        if self.done:
            return float("inf")
        return float(self._kept.timestamps[self._cursor])

    @property
    def virtual_time(self) -> float:
        """Service-completion time of the last stepped chunk (0 initially)."""
        if self._cursor == 0:
            return 0.0
        return float(self._starts[self._cursor - 1] + self._service_s)

    def _backlog_at(self, when: float) -> int:
        """Frames occupying the FIFO at virtual time ``when``.

        Every arrival occupies a slot until it *leaves* — serviced
        frames at their service start, flood casualties at the instant
        drop-oldest evicted them — so under a flood this reads at or
        near capacity, consistent with ``max_occupancy``.
        """
        arrived = int(np.searchsorted(self._offered.timestamps, when, side="right"))
        begun = int(np.searchsorted(self._starts, when, side="right"))
        evicted = int(np.searchsorted(self._eviction_times, when, side="right"))
        return arrived - begun - evicted

    def step(self) -> StreamChunk:
        """Encode + classify the next chunk of admitted frames."""
        if self.done:
            raise SoCError("stream session is exhausted")
        start = self._cursor
        stop = min(start + self.chunk_size, len(self._kept))
        context = min(self._lookback, start)
        features = self.ecu.encoder.encode_batch(self._kept[start - context : stop])
        self._predictions[start:stop] = self.ecu.accelerator.run_batch(features[context:])
        self._cursor = stop
        completion = float(self._starts[stop - 1] + self._service_s)
        return StreamChunk(
            start=start,
            stop=stop,
            arrival_time=float(self._kept.timestamps[start]),
            completion_time=completion,
            fifo_backlog=self._backlog_at(completion),
        )

    def finish(self) -> ECUReport:
        """Assemble the report once every chunk has been stepped."""
        if not self.done:
            raise SoCError(
                f"stream session has {len(self._kept) - self._cursor} frames pending"
            )
        if self._report is None:
            self._report = self.ecu._measure(
                self._kept,
                self._predictions,
                num_frames=len(self._capture),
                fifo_dropped=self.fifo_dropped,
                with_metrics=self.with_metrics,
                max_fifo_occupancy=self.max_occupancy,
                queue_waits=self._queue_waits,
                kept_indices=self.kept_indices,
                sustained_fps=self.drain_fps,
                corrupted_frames=self.corrupted_frames,
            )
        return self._report
