"""Controller Area Network substrate.

A bit-accurate CAN 2.0A/2.0B frame codec (CRC-15, bit stuffing, exact
wire lengths), an event-driven bus simulator with priority arbitration,
periodic ECU traffic sources and the attack injectors the Car-Hacking
dataset was recorded with (DoS floods, fuzzing, spoofing, replay).

The paper's system observes frames at an ECU's CAN interface; this
package is what generates those frames with realistic timing — including
the side effects attacks have on legitimate traffic (a DoS flood of
dominant-ID frames delays everyone else through arbitration, which the
simulator reproduces).  The wire-level fault layer
(:class:`WireFaultModel`, :class:`TargetedFault`,
:class:`BusOffAttacker`) adds the physical layer misbehaving: bit
errors, error frames, retransmission and bus-off fault confinement.
"""

from repro.can.attacks import (
    BurstDoSAttacker,
    BusOffAttacker,
    DoSAttacker,
    FuzzyAttacker,
    MasqueradeAttacker,
    RampDoSAttacker,
    ReplayAttacker,
    SpoofingAttacker,
    SuspensionAttacker,
)
from repro.can.bus import BusRecord, BusSimulator
from repro.can.fastbus import (
    ArbitrationResult,
    ScheduleArray,
    build_schedule,
    simulate_arbitration,
    standard_wire_bits,
)
from repro.can.campaign import (
    ATTACK_KINDS,
    AttackPhase,
    Campaign,
    SCENARIOS,
    ScenarioRegistry,
    compile_campaign,
)
from repro.can.faults import TargetedFault, WireFaultModel, resolve_bus_faults
from repro.can.frame import CANFrame, crc15
from repro.can.log import CANLogRecord, CaptureArray, read_car_hacking_csv, write_car_hacking_csv
from repro.can.node import PeriodicSender, ScheduledFrame, TrafficSource

__all__ = [
    "ATTACK_KINDS",
    "ArbitrationResult",
    "AttackPhase",
    "BurstDoSAttacker",
    "BusOffAttacker",
    "BusRecord",
    "BusSimulator",
    "CANFrame",
    "CANLogRecord",
    "Campaign",
    "CaptureArray",
    "DoSAttacker",
    "FuzzyAttacker",
    "MasqueradeAttacker",
    "PeriodicSender",
    "RampDoSAttacker",
    "ReplayAttacker",
    "SCENARIOS",
    "ScenarioRegistry",
    "ScheduleArray",
    "ScheduledFrame",
    "SpoofingAttacker",
    "SuspensionAttacker",
    "TargetedFault",
    "TrafficSource",
    "WireFaultModel",
    "build_schedule",
    "compile_campaign",
    "crc15",
    "read_car_hacking_csv",
    "resolve_bus_faults",
    "simulate_arbitration",
    "standard_wire_bits",
    "write_car_hacking_csv",
]
